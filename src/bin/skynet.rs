//! `skynet` — analyze an alert flood from the command line.
//!
//! The operational entry point: feed a JSON-lines file of uniform-format
//! alerts (what every monitoring tool emits, §4.1) against a topology, get
//! the ranked incident report.
//!
//! ```text
//! skynet analyze --topology topo.json --alerts flood.jsonl [--horizon-mins 60]
//! skynet gen-topology [--scale small|medium|large] > topo.json
//! skynet demo          # generate, break, analyze — end to end
//! ```

use skynet::core::{PipelineConfig, SkyNet};
use skynet::model::{PingLog, RawAlert, SimDuration, SimTime};
use skynet::topology::{generate, GeneratorConfig, Topology};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  skynet analyze --topology <topo.json> --alerts <flood.jsonl> [--horizon-mins N]\n  skynet gen-topology [--scale small|medium|large]\n  skynet demo"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("gen-topology") => gen_topology(&args[1..]),
        Some("demo") => demo(),
        _ => usage(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn scale_config(scale: Option<&str>) -> GeneratorConfig {
    match scale.unwrap_or("small") {
        "small" => GeneratorConfig::small(),
        "medium" => GeneratorConfig::medium(),
        "large" => GeneratorConfig::large(),
        other => {
            eprintln!("unknown scale {other:?}; use small|medium|large");
            std::process::exit(2);
        }
    }
}

fn gen_topology(args: &[String]) {
    let topo = generate(&scale_config(flag(args, "--scale")));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    serde_json::to_writer(&mut out, &topo).expect("topology serializes");
    let _ = out.write_all(b"\n");
    eprintln!("generated {:?}", topo.summary());
}

fn analyze(args: &[String]) {
    let topo_path = flag(args, "--topology").unwrap_or_else(|| usage());
    let alerts_path = flag(args, "--alerts").unwrap_or_else(|| usage());
    let horizon_mins: u64 = flag(args, "--horizon-mins")
        .map(|v| v.parse().expect("--horizon-mins takes a number"))
        .unwrap_or(60);

    let topo_file =
        std::fs::File::open(topo_path).unwrap_or_else(|e| panic!("cannot open {topo_path}: {e}"));
    let topo: Topology =
        serde_json::from_reader(BufReader::new(topo_file)).expect("topology parses");
    let topo = Arc::new(topo);

    let alerts_file = std::fs::File::open(alerts_path)
        .unwrap_or_else(|e| panic!("cannot open {alerts_path}: {e}"));
    let mut alerts: Vec<RawAlert> = Vec::new();
    for (n, line) in BufReader::new(alerts_file).lines().enumerate() {
        let line = line.expect("readable input");
        if line.trim().is_empty() {
            continue;
        }
        let alert: RawAlert = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("{alerts_path}:{}: bad alert: {e}", n + 1));
        alerts.push(alert);
    }
    alerts.sort_by_key(|a| a.timestamp);
    eprintln!(
        "loaded {} alerts against {:?}",
        alerts.len(),
        topo.summary()
    );

    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let report = skynet.analyze(&alerts, &PingLog::new(), SimTime::from_mins(horizon_mins));
    println!("{}", report.render());
}

/// End-to-end demo: generate a network, break a router, print the report.
fn demo() {
    use skynet::failure::Injector;
    use skynet::telemetry::{TelemetryConfig, TelemetrySuite};

    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let victim = topo
        .devices()
        .iter()
        .find(|d| d.role == skynet::topology::DeviceRole::Csr)
        .expect("generator builds CSRs");
    eprintln!("demo: taking {} down", victim.location);
    let mut injector = Injector::new(Arc::clone(&topo));
    injector.device_down(victim.id, SimTime::from_mins(5), SimDuration::from_mins(8));
    let scenario = injector.finish(SimTime::from_mins(20));
    let run = TelemetrySuite::standard(&topo, TelemetryConfig::default()).run(&scenario);
    eprintln!("demo: {} raw alerts", run.alerts.len());
    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let report = skynet.analyze(&run.alerts, &run.ping, SimTime::from_mins(40));
    println!("{}", report.render());
}
