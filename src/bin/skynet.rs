//! `skynet` — analyze an alert flood from the command line.
//!
//! The operational entry point: feed a JSON-lines file of uniform-format
//! alerts (what every monitoring tool emits, §4.1) against a topology, get
//! the ranked incident report.
//!
//! ```text
//! skynet analyze --topology topo.json --alerts flood.jsonl [--horizon-mins 60]
//!                [--chaos-seed N]   # degrade the feed first, replayably
//! skynet gen-topology [--scale small|medium|large] > topo.json
//! skynet demo [--chaos-seed N] [--fault-seed N]   # generate, break, analyze
//! skynet serve --topology topo.json --wal-dir DIR --bind 127.0.0.1:7474
//!              # always-on multi-tenant ingest: TCP/JSON front door + WAL
//! skynet replay --topology topo.json --wal-dir DIR [--from-seq N] [--to-seq N]
//!              # re-ingest a WAL range byte-identically, print the reports
//! ```
//!
//! `--chaos-seed` degrades the *input feed* (tool dropout, duplicate
//! storms, corruption) through the telemetry chaos engine; `--fault-seed`
//! injects faults into the *pipeline stages themselves* and prints the
//! post-incident degradation report. Both are deterministic: the same seed
//! replays the same run byte-for-byte.

use skynet::core::{
    replay_wal, FaultAction, FaultConfig, FaultRule, InjectionSite, PipelineConfig, ServeConfig,
    SkyNet,
};
use skynet::model::{PingLog, RawAlert, SimDuration, SimTime};
use skynet::topology::{generate, GeneratorConfig, Topology};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  skynet analyze --topology <topo.json> --alerts <flood.jsonl> [--horizon-mins N] [--chaos-seed N]\n  skynet gen-topology [--scale small|medium|large]\n  skynet demo [--chaos-seed N] [--fault-seed N]\n  skynet serve --topology <topo.json> --wal-dir <dir> --bind <addr:port> [--queue-capacity N]\n  skynet replay --topology <topo.json> --wal-dir <dir> [--from-seq N] [--to-seq N] [--horizon-mins N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("gen-topology") => gen_topology(&args[1..]),
        Some("demo") => demo(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn seed_flag(args: &[String], name: &str) -> Option<u64> {
    flag(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} takes a u64 seed"))
    })
}

/// Degrades a recorded feed through the telemetry chaos engine with an
/// explicit seed, reporting what was mutated.
fn apply_chaos(alerts: Vec<RawAlert>, seed: u64) -> Vec<RawAlert> {
    use skynet::telemetry::ChaosEngine;
    let mut engine = ChaosEngine::seeded(seed);
    let degraded = engine.apply(&alerts);
    eprintln!(
        "chaos (seed {seed}): {} -> {} alerts, {:?}",
        alerts.len(),
        degraded.len(),
        engine.stats()
    );
    degraded
}

/// The demo's stage-fault mix: a periodic locate-worker panic (exercises
/// the supervisor), a low-probability guard error (exercises the
/// dead-letter queue) and a one-shot SOP skip.
fn demo_faults(seed: u64) -> FaultConfig {
    FaultConfig::seeded(seed)
        .with_rule(FaultRule::every(
            InjectionSite::LocateWorker,
            40,
            FaultAction::Panic,
        ))
        .with_rule(FaultRule::probability(
            InjectionSite::GuardOffer,
            0.02,
            FaultAction::Error,
        ))
        .with_rule(FaultRule::once(
            InjectionSite::SopSelect,
            1,
            FaultAction::Error,
        ))
}

fn scale_config(scale: Option<&str>) -> GeneratorConfig {
    match scale.unwrap_or("small") {
        "small" => GeneratorConfig::small(),
        "medium" => GeneratorConfig::medium(),
        "large" => GeneratorConfig::large(),
        other => {
            eprintln!("unknown scale {other:?}; use small|medium|large");
            std::process::exit(2);
        }
    }
}

fn gen_topology(args: &[String]) {
    let topo = generate(&scale_config(flag(args, "--scale")));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    serde_json::to_writer(&mut out, &topo).expect("topology serializes");
    let _ = out.write_all(b"\n");
    eprintln!("generated {:?}", topo.summary());
}

fn analyze(args: &[String]) {
    let topo_path = flag(args, "--topology").unwrap_or_else(|| usage());
    let alerts_path = flag(args, "--alerts").unwrap_or_else(|| usage());
    let horizon_mins: u64 = flag(args, "--horizon-mins")
        .map(|v| v.parse().expect("--horizon-mins takes a number"))
        .unwrap_or(60);

    let topo = load_topology(topo_path);

    let alerts_file = std::fs::File::open(alerts_path)
        .unwrap_or_else(|e| panic!("cannot open {alerts_path}: {e}"));
    let mut alerts: Vec<RawAlert> = Vec::new();
    for (n, line) in BufReader::new(alerts_file).lines().enumerate() {
        let line = line.expect("readable input");
        if line.trim().is_empty() {
            continue;
        }
        let alert: RawAlert = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("{alerts_path}:{}: bad alert: {e}", n + 1));
        alerts.push(alert);
    }
    alerts.sort_by_key(|a| a.timestamp);
    eprintln!(
        "loaded {} alerts against {:?}",
        alerts.len(),
        topo.summary()
    );
    if let Some(seed) = seed_flag(args, "--chaos-seed") {
        alerts = apply_chaos(alerts, seed);
    }

    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let report = skynet.analyze(&alerts, &PingLog::new(), SimTime::from_mins(horizon_mins));
    println!("{}", report.render());
}

/// Loads a topology JSON file into an `Arc<Topology>`.
fn load_topology(path: &str) -> Arc<Topology> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let topo: Topology = serde_json::from_reader(BufReader::new(file)).expect("topology parses");
    Arc::new(topo)
}

/// Runs the always-on ingest service: TCP/JSON front door, per-tenant
/// backpressure, WAL-before-ack. Restarting over the same `--wal-dir`
/// warm-restores from the snapshot plus the WAL tail.
fn serve(args: &[String]) {
    let topo = load_topology(flag(args, "--topology").unwrap_or_else(|| usage()));
    let wal_dir = flag(args, "--wal-dir").unwrap_or_else(|| usage());
    let bind = flag(args, "--bind").unwrap_or("127.0.0.1:7474");
    let mut cfg = ServeConfig::new(wal_dir).with_bind(bind);
    if let Some(capacity) = flag(args, "--queue-capacity") {
        cfg = cfg
            .with_tenant_queue_capacity(capacity.parse().expect("--queue-capacity takes a number"));
    }
    let mut pipeline_cfg = PipelineConfig::production();
    if let Some(seed) = seed_flag(args, "--fault-seed") {
        pipeline_cfg = pipeline_cfg.with_faults(demo_faults(seed));
    }
    let service = SkyNet::builder(&topo)
        .config(pipeline_cfg)
        .serve(cfg)
        .unwrap_or_else(|e| panic!("cannot start service: {e}"));
    let addr = service.local_addr().expect("serve binds a TCP address");
    eprintln!("serving on {addr} (WAL at {wal_dir}); ctrl-c to stop");
    loop {
        std::thread::park();
    }
}

/// Re-ingests a WAL range through fresh pipelines and prints each
/// tenant's report — the proof that the WAL is the feed.
fn replay(args: &[String]) {
    let topo = load_topology(flag(args, "--topology").unwrap_or_else(|| usage()));
    let wal_dir = flag(args, "--wal-dir").unwrap_or_else(|| usage());
    let from_seq: u64 = flag(args, "--from-seq")
        .map(|v| v.parse().expect("--from-seq takes a number"))
        .unwrap_or(0);
    let to_seq: Option<u64> =
        flag(args, "--to-seq").map(|v| v.parse().expect("--to-seq takes a number"));
    let horizon_mins: u64 = flag(args, "--horizon-mins")
        .map(|v| v.parse().expect("--horizon-mins takes a number"))
        .unwrap_or(60);
    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let reports = replay_wal(
        &skynet,
        std::path::Path::new(wal_dir),
        from_seq,
        to_seq,
        SimTime::from_mins(horizon_mins),
    )
    .unwrap_or_else(|e| panic!("replay failed: {e}"));
    if reports.is_empty() {
        eprintln!("no WAL records in range under {wal_dir}");
    }
    for (tenant, report) in reports {
        println!("=== tenant {tenant} ===");
        println!("{}", report.render());
    }
}

/// End-to-end demo: generate a network, break a router, print the report.
/// `--chaos-seed` degrades the feed first; `--fault-seed` injects stage
/// faults and prints the degradation report after the incident report.
fn demo(args: &[String]) {
    use skynet::failure::Injector;
    use skynet::telemetry::{TelemetryConfig, TelemetrySuite};

    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let victim = topo
        .devices()
        .iter()
        .find(|d| d.role == skynet::topology::DeviceRole::Csr)
        .expect("generator builds CSRs");
    eprintln!("demo: taking {} down", victim.location);
    let mut injector = Injector::new(Arc::clone(&topo));
    injector.device_down(victim.id, SimTime::from_mins(5), SimDuration::from_mins(8));
    let scenario = injector.finish(SimTime::from_mins(20));
    let run = TelemetrySuite::standard(&topo, TelemetryConfig::default()).run(&scenario);
    eprintln!("demo: {} raw alerts", run.alerts.len());
    let mut alerts = run.alerts;
    if let Some(seed) = seed_flag(args, "--chaos-seed") {
        alerts = apply_chaos(alerts, seed);
    }
    let fault_seed = seed_flag(args, "--fault-seed");
    let mut cfg = PipelineConfig::production();
    if let Some(seed) = fault_seed {
        cfg = cfg.with_faults(demo_faults(seed));
    }
    let skynet = SkyNet::builder(&topo).config(cfg).build();
    let report = skynet.analyze(&alerts, &run.ping, SimTime::from_mins(40));
    println!("{}", report.render());
    if fault_seed.is_some() {
        println!("{}", skynet.degradation_report(&report).render());
    }
}
