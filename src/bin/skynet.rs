//! `skynet` — analyze an alert flood from the command line.
//!
//! The operational entry point: feed a JSON-lines file of uniform-format
//! alerts (what every monitoring tool emits, §4.1) against a topology, get
//! the ranked incident report.
//!
//! ```text
//! skynet analyze --topology topo.json --alerts flood.jsonl [--horizon-mins 60]
//!                [--chaos-seed N]   # degrade the feed first, replayably
//! skynet gen-topology [--scale small|medium|large] > topo.json
//! skynet demo [--chaos-seed N] [--fault-seed N]   # generate, break, analyze
//! skynet serve --topology topo.json --wal-dir DIR --bind 127.0.0.1:7474
//!              # always-on multi-tenant ingest: TCP/JSON front door + WAL
//! skynet replay --topology topo.json --wal-dir DIR [--from-seq N] [--to-seq N]
//!              # re-ingest a WAL range byte-identically, print the reports
//! skynet flood [--events N] [--submitters K] [--batch B] [--tenants T]
//!              [--fsync always|never|N] [--assert-speedup R]
//!              # load-generate against a local service; compare group-commit
//!              # acked-events/sec to a per-event-fsync baseline
//! ```
//!
//! `--chaos-seed` degrades the *input feed* (tool dropout, duplicate
//! storms, corruption) through the telemetry chaos engine; `--fault-seed`
//! injects faults into the *pipeline stages themselves* and prints the
//! post-incident degradation report. Both are deterministic: the same seed
//! replays the same run byte-for-byte.

use skynet::core::serve::{FsyncPolicy, WalEvent, WalWriter};
use skynet::core::{
    replay_wal, FaultAction, FaultConfig, FaultRule, InjectionSite, ObsConfig, Observability,
    PipelineConfig, ServeConfig, SkyNet,
};
use skynet::model::{AlertKind, DataSource, PingLog, RawAlert, SimDuration, SimTime};
use skynet::topology::{generate, GeneratorConfig, Topology};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  skynet analyze --topology <topo.json> --alerts <flood.jsonl> [--horizon-mins N] [--chaos-seed N]\n  skynet gen-topology [--scale small|medium|large]\n  skynet demo [--chaos-seed N] [--fault-seed N]\n  skynet serve --topology <topo.json> --wal-dir <dir> --bind <addr:port> [--queue-capacity N]\n  skynet replay --topology <topo.json> --wal-dir <dir> [--from-seq N] [--to-seq N] [--horizon-mins N]\n  skynet flood [--events N] [--submitters K] [--batch B] [--tenants T] [--fsync always|never|N] [--assert-speedup R]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("gen-topology") => gen_topology(&args[1..]),
        Some("demo") => demo(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("flood") => flood(&args[1..]),
        _ => usage(),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn seed_flag(args: &[String], name: &str) -> Option<u64> {
    flag(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} takes a u64 seed"))
    })
}

/// Degrades a recorded feed through the telemetry chaos engine with an
/// explicit seed, reporting what was mutated.
fn apply_chaos(alerts: Vec<RawAlert>, seed: u64) -> Vec<RawAlert> {
    use skynet::telemetry::ChaosEngine;
    let mut engine = ChaosEngine::seeded(seed);
    let degraded = engine.apply(&alerts);
    eprintln!(
        "chaos (seed {seed}): {} -> {} alerts, {:?}",
        alerts.len(),
        degraded.len(),
        engine.stats()
    );
    degraded
}

/// The demo's stage-fault mix: a periodic locate-worker panic (exercises
/// the supervisor), a low-probability guard error (exercises the
/// dead-letter queue) and a one-shot SOP skip.
fn demo_faults(seed: u64) -> FaultConfig {
    FaultConfig::seeded(seed)
        .with_rule(FaultRule::every(
            InjectionSite::LocateWorker,
            40,
            FaultAction::Panic,
        ))
        .with_rule(FaultRule::probability(
            InjectionSite::GuardOffer,
            0.02,
            FaultAction::Error,
        ))
        .with_rule(FaultRule::once(
            InjectionSite::SopSelect,
            1,
            FaultAction::Error,
        ))
}

fn scale_config(scale: Option<&str>) -> GeneratorConfig {
    match scale.unwrap_or("small") {
        "small" => GeneratorConfig::small(),
        "medium" => GeneratorConfig::medium(),
        "large" => GeneratorConfig::large(),
        other => {
            eprintln!("unknown scale {other:?}; use small|medium|large");
            std::process::exit(2);
        }
    }
}

fn gen_topology(args: &[String]) {
    let topo = generate(&scale_config(flag(args, "--scale")));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    serde_json::to_writer(&mut out, &topo).expect("topology serializes");
    let _ = out.write_all(b"\n");
    eprintln!("generated {:?}", topo.summary());
}

fn analyze(args: &[String]) {
    let topo_path = flag(args, "--topology").unwrap_or_else(|| usage());
    let alerts_path = flag(args, "--alerts").unwrap_or_else(|| usage());
    let horizon_mins: u64 = flag(args, "--horizon-mins")
        .map(|v| v.parse().expect("--horizon-mins takes a number"))
        .unwrap_or(60);

    let topo = load_topology(topo_path);

    let alerts_file = std::fs::File::open(alerts_path)
        .unwrap_or_else(|e| panic!("cannot open {alerts_path}: {e}"));
    let mut alerts: Vec<RawAlert> = Vec::new();
    for (n, line) in BufReader::new(alerts_file).lines().enumerate() {
        let line = line.expect("readable input");
        if line.trim().is_empty() {
            continue;
        }
        let alert: RawAlert = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("{alerts_path}:{}: bad alert: {e}", n + 1));
        alerts.push(alert);
    }
    alerts.sort_by_key(|a| a.timestamp);
    eprintln!(
        "loaded {} alerts against {:?}",
        alerts.len(),
        topo.summary()
    );
    if let Some(seed) = seed_flag(args, "--chaos-seed") {
        alerts = apply_chaos(alerts, seed);
    }

    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let report = skynet.analyze(&alerts, &PingLog::new(), SimTime::from_mins(horizon_mins));
    println!("{}", report.render());
}

/// Loads a topology JSON file into an `Arc<Topology>`.
fn load_topology(path: &str) -> Arc<Topology> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let topo: Topology = serde_json::from_reader(BufReader::new(file)).expect("topology parses");
    Arc::new(topo)
}

/// Runs the always-on ingest service: TCP/JSON front door, per-tenant
/// backpressure, WAL-before-ack. Restarting over the same `--wal-dir`
/// warm-restores from the snapshot plus the WAL tail.
fn serve(args: &[String]) {
    let topo = load_topology(flag(args, "--topology").unwrap_or_else(|| usage()));
    let wal_dir = flag(args, "--wal-dir").unwrap_or_else(|| usage());
    let bind = flag(args, "--bind").unwrap_or("127.0.0.1:7474");
    let mut cfg = ServeConfig::new(wal_dir).with_bind(bind);
    if let Some(capacity) = flag(args, "--queue-capacity") {
        cfg = cfg
            .with_tenant_queue_capacity(capacity.parse().expect("--queue-capacity takes a number"));
    }
    let mut pipeline_cfg = PipelineConfig::production();
    if let Some(seed) = seed_flag(args, "--fault-seed") {
        pipeline_cfg = pipeline_cfg.with_faults(demo_faults(seed));
    }
    let service = SkyNet::builder(&topo)
        .config(pipeline_cfg)
        .serve(cfg)
        .unwrap_or_else(|e| panic!("cannot start service: {e}"));
    let addr = service.local_addr().expect("serve binds a TCP address");
    eprintln!("serving on {addr} (WAL at {wal_dir}); ctrl-c to stop");
    loop {
        std::thread::park();
    }
}

/// Re-ingests a WAL range through fresh pipelines and prints each
/// tenant's report — the proof that the WAL is the feed.
fn replay(args: &[String]) {
    let topo = load_topology(flag(args, "--topology").unwrap_or_else(|| usage()));
    let wal_dir = flag(args, "--wal-dir").unwrap_or_else(|| usage());
    let from_seq: u64 = flag(args, "--from-seq")
        .map(|v| v.parse().expect("--from-seq takes a number"))
        .unwrap_or(0);
    let to_seq: Option<u64> =
        flag(args, "--to-seq").map(|v| v.parse().expect("--to-seq takes a number"));
    let horizon_mins: u64 = flag(args, "--horizon-mins")
        .map(|v| v.parse().expect("--horizon-mins takes a number"))
        .unwrap_or(60);
    let skynet = SkyNet::builder(&topo)
        .config(PipelineConfig::production())
        .build();
    let reports = replay_wal(
        &skynet,
        std::path::Path::new(wal_dir),
        from_seq,
        to_seq,
        SimTime::from_mins(horizon_mins),
    )
    .unwrap_or_else(|e| panic!("replay failed: {e}"));
    if reports.is_empty() {
        eprintln!("no WAL records in range under {wal_dir}");
    }
    for (tenant, report) in reports {
        println!("=== tenant {tenant} ===");
        println!("{}", report.render());
    }
}

/// Parses `--fsync always|never|N` (N = fsync every N appends).
fn fsync_flag(args: &[String]) -> FsyncPolicy {
    match flag(args, "--fsync") {
        None | Some("always") => FsyncPolicy::Always,
        Some("never") => FsyncPolicy::Never,
        Some(n) => FsyncPolicy::EveryN(n.parse().expect("--fsync takes always|never|N")),
    }
}

/// A fresh scratch WAL directory for one flood lane.
fn flood_dir(lane: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("skynet-flood-{}-{lane}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small pool of realistic alerts to cycle through: a mix of kinds and
/// sources spread over every device in a generated topology.
fn flood_pool(topo: &Topology) -> Vec<RawAlert> {
    let kinds = [
        AlertKind::PacketLossIcmp,
        AlertKind::PacketLossTcp,
        AlertKind::LinkDown,
        AlertKind::LatencyJitter,
        AlertKind::DeviceInaccessible,
        AlertKind::TrafficCongestion,
        AlertKind::HighCpu,
        AlertKind::BgpPeerDown,
    ];
    let devices = topo.devices();
    (0..256u64)
        .map(|i| {
            let device = &devices[(i as usize * 7) % devices.len()];
            RawAlert::known(
                DataSource::ALL[i as usize % DataSource::ALL.len()],
                SimTime::from_secs(i),
                device.location.clone(),
                kinds[i as usize % kinds.len()],
            )
            .with_magnitude(0.1 + 0.8 * (i % 9) as f64 / 9.0)
        })
        .collect()
}

/// The pre-group-commit durability discipline: one writer behind a mutex,
/// every submitter appending (and fsyncing, under `always`) its own event
/// before moving on. Returns acked events per second.
fn flood_per_append(
    pool: &[RawAlert],
    events: usize,
    submitters: usize,
    fsync: FsyncPolicy,
) -> f64 {
    let dir = flood_dir("per-append");
    let cfg = ServeConfig::new(&dir)
        .with_segment_max_bytes(64 << 20)
        .with_fsync(fsync);
    let obs = Observability::new(&ObsConfig::default());
    let wal = std::sync::Mutex::new(WalWriter::create(&cfg, &obs).expect("writer opens"));
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..submitters {
            let wal = &wal;
            scope.spawn(move || {
                for i in (worker..events).step_by(submitters) {
                    let event = WalEvent::Alert(pool[i % pool.len()].clone());
                    wal.lock()
                        .unwrap()
                        .append("flood", &event)
                        .expect("baseline append");
                }
            });
        }
    });
    let rate = events as f64 / started.elapsed().as_secs_f64();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// The group-commit path: a full service, `submitters` concurrent feeders
/// acking through the committer (batched `--batch` events at a time over
/// `--tenants` tenants). Returns acked events per second.
fn flood_group(
    topo: &Arc<Topology>,
    pool: &[RawAlert],
    events: usize,
    submitters: usize,
    batch: usize,
    tenants: usize,
    fsync: FsyncPolicy,
) -> f64 {
    let dir = flood_dir("group");
    let service = SkyNet::builder(topo)
        .config(PipelineConfig::production())
        .serve(
            ServeConfig::new(&dir)
                .with_segment_max_bytes(64 << 20)
                .with_fsync(fsync)
                .with_tenant_queue_capacity(1 << 20),
        )
        .expect("service starts");
    let names: Vec<String> = (0..tenants).map(|t| format!("flood-{t}")).collect();
    for name in &names {
        service.hello(name).expect("tenant admits");
    }
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..submitters {
            let service = &service;
            let tenant = names[worker % names.len()].as_str();
            scope.spawn(move || {
                let mine: Vec<usize> = (worker..events).step_by(submitters).collect();
                for chunk in mine.chunks(batch) {
                    if batch == 1 {
                        let event = WalEvent::Alert(pool[chunk[0] % pool.len()].clone());
                        service.submit(tenant, event).expect("flood ack");
                    } else {
                        let alerts: Vec<RawAlert> = chunk
                            .iter()
                            .map(|&i| pool[i % pool.len()].clone())
                            .collect();
                        let sent = alerts.len();
                        let ack = service.submit_alerts(tenant, alerts).expect("flood acks");
                        assert_eq!(ack.accepted, sent, "no faults armed, nothing rejected");
                    }
                }
            });
        }
    });
    let rate = events as f64 / started.elapsed().as_secs_f64();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// Load-generates against an in-process service and prints a one-line JSON
/// comparison of group-commit acked-events/sec against the per-event-fsync
/// baseline. `--assert-speedup R` exits nonzero below R× — the CI smoke
/// that group commit actually amortizes the fsync.
fn flood(args: &[String]) {
    let events: usize = flag(args, "--events")
        .map(|v| v.parse().expect("--events takes a number"))
        .unwrap_or(4000)
        .max(1);
    let submitters: usize = flag(args, "--submitters")
        .map(|v| v.parse().expect("--submitters takes a number"))
        .unwrap_or(8)
        .max(1);
    let batch: usize = flag(args, "--batch")
        .map(|v| v.parse().expect("--batch takes a number"))
        .unwrap_or(1)
        .max(1);
    let tenants: usize = flag(args, "--tenants")
        .map(|v| v.parse().expect("--tenants takes a number"))
        .unwrap_or(1)
        .max(1);
    let fsync = fsync_flag(args);
    let assert_speedup: Option<f64> =
        flag(args, "--assert-speedup").map(|v| v.parse().expect("--assert-speedup takes a ratio"));

    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let pool = flood_pool(&topo);
    eprintln!(
        "flood: {events} events, {submitters} submitters, batch {batch}, {tenants} tenant(s), fsync {fsync:?}"
    );
    let per_append = flood_per_append(&pool, events, submitters, fsync);
    let group = flood_group(&topo, &pool, events, submitters, batch, tenants, fsync);
    let speedup = group / per_append;
    println!(
        "{}",
        serde_json::json!({
            "events": events,
            "submitters": submitters,
            "batch": batch,
            "tenants": tenants,
            "fsync": format!("{fsync:?}"),
            "per_append_events_per_sec": per_append,
            "group_commit_events_per_sec": group,
            "speedup": speedup,
        })
    );
    if let Some(min) = assert_speedup {
        if speedup < min {
            eprintln!("flood: speedup {speedup:.2}x is below the required {min:.2}x");
            std::process::exit(1);
        }
    }
}

/// End-to-end demo: generate a network, break a router, print the report.
/// `--chaos-seed` degrades the feed first; `--fault-seed` injects stage
/// faults and prints the degradation report after the incident report.
fn demo(args: &[String]) {
    use skynet::failure::Injector;
    use skynet::telemetry::{TelemetryConfig, TelemetrySuite};

    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let victim = topo
        .devices()
        .iter()
        .find(|d| d.role == skynet::topology::DeviceRole::Csr)
        .expect("generator builds CSRs");
    eprintln!("demo: taking {} down", victim.location);
    let mut injector = Injector::new(Arc::clone(&topo));
    injector.device_down(victim.id, SimTime::from_mins(5), SimDuration::from_mins(8));
    let scenario = injector.finish(SimTime::from_mins(20));
    let run = TelemetrySuite::standard(&topo, TelemetryConfig::default()).run(&scenario);
    eprintln!("demo: {} raw alerts", run.alerts.len());
    let mut alerts = run.alerts;
    if let Some(seed) = seed_flag(args, "--chaos-seed") {
        alerts = apply_chaos(alerts, seed);
    }
    let fault_seed = seed_flag(args, "--fault-seed");
    let mut cfg = PipelineConfig::production();
    if let Some(seed) = fault_seed {
        cfg = cfg.with_faults(demo_faults(seed));
    }
    let skynet = SkyNet::builder(&topo).config(cfg).build();
    let report = skynet.analyze(&alerts, &run.ping, SimTime::from_mins(40));
    println!("{}", report.render());
    if fault_seed.is_some() {
        println!("{}", skynet.degradation_report(&report).render());
    }
}
