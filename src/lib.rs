//! # SkyNet (reproduction)
//!
//! Umbrella crate for the SkyNet reproduction — *SkyNet: Analyzing Alert
//! Flooding from Severe Network Failures in Large Cloud Infrastructures*
//! (SIGCOMM 2025). Re-exports every sub-crate under one namespace so that
//! examples and downstream users need a single dependency.
//!
//! ```
//! use skynet::model::{DataSource, LocationPath};
//!
//! let loc = LocationPath::parse("Region A|City a|Logic site 2").unwrap();
//! assert_eq!(loc.depth(), 3);
//! assert_eq!(DataSource::ALL.len(), 12);
//! ```

#![forbid(unsafe_code)]

pub use skynet_model as model;

// Re-exported as modules are implemented:
pub use skynet_baseline as baseline;
pub use skynet_bench as bench;
pub use skynet_core as core;
pub use skynet_failure as failure;
pub use skynet_ftree as ftree;
pub use skynet_telemetry as telemetry;
pub use skynet_topology as topology;
pub use skynet_viz as viz;

/// The curated one-line import: pipeline builder, streaming runtime,
/// observability handles and the model types they speak.
///
/// ```
/// use skynet::prelude::*;
/// # let _ = PipelineConfig::default();
/// ```
pub mod prelude {
    pub use skynet_core::prelude::*;
    pub use skynet_topology::{generate, GeneratorConfig, Topology};
}
