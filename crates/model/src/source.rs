//! The monitoring data sources integrated by SkyNet.
//!
//! Table 2 of the paper lists twelve data sources; Fig. 3 reports each
//! tool's stand-alone failure-detection coverage (3%–84%). [`DataSource`]
//! enumerates them, and [`DataSource::paper_coverage`] carries our digitized
//! approximation of Fig. 3 (the figure has no numeric labels; values were
//! read off the bar chart and are only used to parameterize the telemetry
//! simulators and the Fig. 3 / Fig. 8a reproductions).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A network monitoring data source (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataSource {
    /// End-to-end ping mesh between pairs of servers (latency/reachability).
    Ping,
    /// Per-hop latency probes between pairs of servers.
    Traceroute,
    /// Out-of-band device monitoring: liveness, CPU, RAM, temperature.
    OutOfBand,
    /// Traffic statistics from sFlow and NetFlow collectors.
    TrafficStats,
    /// Internet telemetry: pinging Internet addresses from DC servers.
    InternetTelemetry,
    /// Errors detected and logged by network devices (free-text syslog).
    Syslog,
    /// SNMP & GRPC: interface status/counters, RX errors, CPU/RAM usage.
    Snmp,
    /// In-band network telemetry: test packets collecting per-device state.
    InbandTelemetry,
    /// Precision Time Protocol: device clocks out of synchronization.
    Ptp,
    /// Control-plane route monitoring: route loss, hijack, leaking.
    RouteMonitoring,
    /// Failure reports from automatic or manual network modifications.
    ModificationEvents,
    /// Patrol inspection: periodic manually-defined CLI commands on devices.
    PatrolInspection,
}

impl DataSource {
    /// All twelve data sources, in Table 2 order.
    pub const ALL: [DataSource; 12] = [
        DataSource::Ping,
        DataSource::Traceroute,
        DataSource::OutOfBand,
        DataSource::TrafficStats,
        DataSource::InternetTelemetry,
        DataSource::Syslog,
        DataSource::Snmp,
        DataSource::InbandTelemetry,
        DataSource::Ptp,
        DataSource::RouteMonitoring,
        DataSource::ModificationEvents,
        DataSource::PatrolInspection,
    ];

    /// Stand-alone failure coverage of this source as a fraction of all
    /// failure kinds, per our digitization of Fig. 3 (sources absent from
    /// the figure get small, plausible values).
    pub const fn paper_coverage(self) -> f64 {
        match self {
            DataSource::Snmp => 0.84,
            DataSource::Syslog => 0.72,
            DataSource::Ping => 0.58,
            DataSource::InternetTelemetry => 0.34,
            DataSource::OutOfBand => 0.26,
            DataSource::InbandTelemetry => 0.20,
            DataSource::ModificationEvents => 0.15,
            DataSource::TrafficStats => 0.30,
            DataSource::Traceroute => 0.22,
            DataSource::PatrolInspection => 0.10,
            DataSource::Ptp => 0.05,
            DataSource::RouteMonitoring => 0.03,
        }
    }

    /// Table 2's one-line description of the source.
    pub const fn description(self) -> &'static str {
        match self {
            DataSource::Ping => {
                "Periodically records latency and reachability between pairs of servers"
            }
            DataSource::Traceroute => {
                "Periodically records latency of each hop between pairs of servers"
            }
            DataSource::OutOfBand => {
                "Periodically collects device information out-of-band: liveness, CPU and RAM usage"
            }
            DataSource::TrafficStats => "Data from traffic monitoring systems sFlow and NetFlow",
            DataSource::InternetTelemetry => {
                "Monitoring system that pings Internet addresses from DC servers"
            }
            DataSource::Syslog => "Errors detected by network devices",
            DataSource::Snmp => {
                "Standard network protocols: interface status and counters, RX errors, CPU and RAM"
            }
            DataSource::InbandTelemetry => {
                "Sends test packets and collects information from devices bypassed"
            }
            DataSource::Ptp => "System time of network devices out of synchronization",
            DataSource::RouteMonitoring => {
                "Loss of default/aggregate route, route hijack and route leaking"
            }
            DataSource::ModificationEvents => {
                "Failure of network modifications triggered automatically or manually"
            }
            DataSource::PatrolInspection => {
                "Runs manually defined commands on network devices and collects results periodically"
            }
        }
    }

    /// Short stable name used in reports and serialized formats.
    pub const fn name(self) -> &'static str {
        match self {
            DataSource::Ping => "ping",
            DataSource::Traceroute => "traceroute",
            DataSource::OutOfBand => "out-of-band",
            DataSource::TrafficStats => "traffic-stats",
            DataSource::InternetTelemetry => "internet-telemetry",
            DataSource::Syslog => "syslog",
            DataSource::Snmp => "snmp",
            DataSource::InbandTelemetry => "inband-telemetry",
            DataSource::Ptp => "ptp",
            DataSource::RouteMonitoring => "route-monitoring",
            DataSource::ModificationEvents => "modification-events",
            DataSource::PatrolInspection => "patrol-inspection",
        }
    }

    /// Sources ordered by ascending paper coverage — the removal order used
    /// by the Fig. 8a experiment ("systematically removed data sources,
    /// beginning with those having low coverage").
    pub fn by_ascending_coverage() -> Vec<DataSource> {
        let mut v = Self::ALL.to_vec();
        v.sort_by(|a, b| {
            a.paper_coverage()
                .partial_cmp(&b.paper_coverage())
                .expect("coverage values are finite")
        });
        v
    }
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An entry of Table 1: a published monitoring tool and its data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishedTool {
    /// Tool name as cited in the paper.
    pub name: &'static str,
    /// Whether the paper marks it as used in production.
    pub in_production: bool,
    /// The single data source the tool relies on.
    pub data_source: &'static str,
}

/// Table 1 of the paper: existing tools, production status, data source.
pub const TABLE1_TOOLS: [PublishedTool; 11] = [
    PublishedTool {
        name: "RD-Probe",
        in_production: true,
        data_source: "Ping",
    },
    PublishedTool {
        name: "Pingmesh",
        in_production: true,
        data_source: "Ping",
    },
    PublishedTool {
        name: "NetNORAD",
        in_production: true,
        data_source: "Ping",
    },
    PublishedTool {
        name: "deTector",
        in_production: false,
        data_source: "Ping",
    },
    PublishedTool {
        name: "Dynamic mining",
        in_production: true,
        data_source: "Syslog",
    },
    PublishedTool {
        name: "007",
        in_production: true,
        data_source: "traceroute",
    },
    PublishedTool {
        name: "Roy et al.",
        in_production: true,
        data_source: "INT",
    },
    PublishedTool {
        name: "Netbouncer",
        in_production: true,
        data_source: "INT",
    },
    PublishedTool {
        name: "PTPMesh",
        in_production: false,
        data_source: "PTP",
    },
    PublishedTool {
        name: "Shin et al.",
        in_production: false,
        data_source: "SNMP",
    },
    PublishedTool {
        name: "Redfish-Nagios",
        in_production: true,
        data_source: "Out-of-band",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_sources() {
        assert_eq!(DataSource::ALL.len(), 12);
        // Names must be unique and lowercase.
        let mut names: Vec<_> = DataSource::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(names.iter().all(|n| *n == n.to_lowercase()));
    }

    #[test]
    fn coverage_matches_paper_range() {
        // Fig. 3: "failure detection coverage ... ranges from 3% to 84%".
        let min = DataSource::ALL
            .iter()
            .map(|s| s.paper_coverage())
            .fold(f64::INFINITY, f64::min);
        let max = DataSource::ALL
            .iter()
            .map(|s| s.paper_coverage())
            .fold(0.0, f64::max);
        assert!((min - 0.03).abs() < 1e-9);
        assert!((max - 0.84).abs() < 1e-9);
        // No single tool detects everything.
        assert!(max < 1.0);
    }

    #[test]
    fn ascending_coverage_order() {
        let order = DataSource::by_ascending_coverage();
        assert_eq!(order.len(), 12);
        assert_eq!(order[0], DataSource::RouteMonitoring);
        assert_eq!(order[11], DataSource::Snmp);
        for w in order.windows(2) {
            assert!(w[0].paper_coverage() <= w[1].paper_coverage());
        }
    }

    #[test]
    fn table1_has_eleven_entries() {
        assert_eq!(TABLE1_TOOLS.len(), 11);
        assert!(TABLE1_TOOLS.iter().filter(|t| t.in_production).count() == 8);
    }

    #[test]
    fn serde_round_trip() {
        for s in DataSource::ALL {
            let json = serde_json::to_string(&s).unwrap();
            let back: DataSource = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}
