//! Interned location identifiers.
//!
//! The locator walks the Region → City → Logic site → Site → Cluster →
//! Device hierarchy for *every* alert of a flood (§4.2, Algorithms 1–3).
//! Keying that walk by [`LocationPath`] costs an `Arc` clone plus a full
//! string-vector hash per lookup. A [`LocationInterner`] is built once from
//! the topology instead: every distinct path prefix gets a dense `u32`
//! [`LocId`] carrying its depth, parent and full ancestor chain, so
//! containment, ancestor-at-level and lowest-common-ancestor queries are
//! `O(1)` array probes with no hashing and no allocation.
//!
//! `LocId` is an in-memory handle only. It is deliberately **not**
//! serializable: alerts, incidents and topology files keep speaking
//! [`LocationPath`] strings at the serde boundary, and every pipeline stage
//! resolves paths to ids exactly once at ingest.

use crate::location::{LocationLevel, LocationPath};
use std::collections::HashMap;
use std::fmt;

/// Maximum depth of the hierarchy (a device path has six segments).
const MAX_DEPTH: usize = 6;

/// A dense handle for one interned location (a distinct [`LocationPath`]
/// prefix). `Copy`, 4 bytes, and valid only for the interner that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(u32);

impl LocId {
    /// The raw index into the interner's node arena.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense arena index.
    pub fn from_index(i: usize) -> Self {
        LocId(u32::try_from(i).expect("LocId index overflow"))
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// One interned node: a location plus its precomputed hierarchy context.
#[derive(Debug, Clone)]
struct LocNode {
    /// The materialized path (for display and boundary crossings).
    path: LocationPath,
    /// Parent node, `None` for depth-1 (region) nodes.
    parent: Option<LocId>,
    /// Path depth, `1..=6`.
    depth: u8,
    /// `ancestors[d - 1]` is this node's ancestor at depth `d` for every
    /// `d <= depth` (so `ancestors[depth - 1]` is the node itself). Slots
    /// past `depth` repeat the node's own id and are never consulted.
    ancestors: [LocId; MAX_DEPTH],
    /// Direct children, in interning order.
    children: Vec<LocId>,
}

/// Bidirectional map between [`LocationPath`] prefixes and dense [`LocId`]s,
/// with `O(1)` hierarchy queries.
///
/// Built once from the topology's device paths via [`from_paths`]; stages
/// that can observe off-topology locations (the locator accepts alerts for
/// probes the topology never modeled) grow it dynamically with [`intern`].
/// Ids are stable once issued: interning never moves or reuses a node.
///
/// [`from_paths`]: LocationInterner::from_paths
/// [`intern`]: LocationInterner::intern
#[derive(Debug, Clone, Default)]
pub struct LocationInterner {
    nodes: Vec<LocNode>,
    index: HashMap<LocationPath, LocId>,
}

impl LocationInterner {
    /// An empty interner (grows on demand via [`intern`]).
    ///
    /// [`intern`]: LocationInterner::intern
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an interner holding every prefix of every given path.
    ///
    /// Seed ids are assigned in [`LocationPath`] order (segment-wise
    /// lexicographic), which is a depth-first pre-order of the hierarchy:
    /// for the seed set, `LocId` order equals path order and a parent's id
    /// is always smaller than its children's. Paths interned *later* get
    /// appended ids, so code that needs a deterministic location order must
    /// compare via [`cmp`], not raw ids.
    ///
    /// [`cmp`]: LocationInterner::cmp
    pub fn from_paths<I>(paths: I) -> Self
    where
        I: IntoIterator<Item = LocationPath>,
    {
        let mut prefixes: Vec<LocationPath> = paths
            .into_iter()
            .flat_map(|p| p.prefixes().collect::<Vec<_>>())
            .collect();
        prefixes.sort();
        prefixes.dedup();
        let mut interner = Self::new();
        for p in prefixes {
            // Parents sort before children, so the parent is always present.
            interner.intern(&p);
        }
        interner
    }

    /// Number of interned locations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The id for a path, if it was interned. The root path never resolves:
    /// the root of the network is not a location.
    pub fn resolve(&self, path: &LocationPath) -> Option<LocId> {
        self.index.get(path).copied()
    }

    /// The id for a path, interning it (and any missing ancestors) first.
    ///
    /// # Panics
    /// Panics on the root path, which has no location level.
    pub fn intern(&mut self, path: &LocationPath) -> LocId {
        assert!(!path.is_root(), "cannot intern the root path");
        if let Some(id) = self.resolve(path) {
            return id;
        }
        let parent_path = path.parent();
        let parent = if parent_path.is_root() {
            None
        } else {
            Some(self.intern(&parent_path))
        };
        let id = LocId::from_index(self.nodes.len());
        let depth = path.depth();
        let mut ancestors = [id; MAX_DEPTH];
        if let Some(pid) = parent {
            let pa = self.nodes[pid.index()].ancestors;
            ancestors[..depth - 1].copy_from_slice(&pa[..depth - 1]);
            self.nodes[pid.index()].children.push(id);
        }
        self.nodes.push(LocNode {
            path: path.clone(),
            parent,
            depth: depth as u8,
            ancestors,
            children: Vec::new(),
        });
        self.index.insert(path.clone(), id);
        id
    }

    /// The materialized path for an id.
    pub fn path(&self, id: LocId) -> &LocationPath {
        &self.nodes[id.index()].path
    }

    /// Path depth, `1..=6`.
    pub fn depth(&self, id: LocId) -> usize {
        self.nodes[id.index()].depth as usize
    }

    /// The hierarchy level of an id (always defined: the root is never
    /// interned).
    pub fn level(&self, id: LocId) -> LocationLevel {
        LocationLevel::from_depth(self.depth(id)).expect("interned depth is 1..=6")
    }

    /// Parent id, `None` for region-level nodes.
    pub fn parent(&self, id: LocId) -> Option<LocId> {
        self.nodes[id.index()].parent
    }

    /// Direct children of a node, in interning order.
    pub fn children(&self, id: LocId) -> &[LocId] {
        &self.nodes[id.index()].children
    }

    /// The ancestor of `id` at exactly `depth` (`Some(id)` itself when
    /// `depth == depth(id)`), or `None` when `id` is shallower than `depth`
    /// or `depth` is not a valid level depth.
    pub fn ancestor_at_depth(&self, id: LocId, depth: usize) -> Option<LocId> {
        let node = &self.nodes[id.index()];
        if depth == 0 || depth > node.depth as usize {
            return None;
        }
        Some(node.ancestors[depth - 1])
    }

    /// The ancestor of `id` at `level`, or `None` when `id` is broader than
    /// `level`.
    pub fn ancestor_at(&self, id: LocId, level: LocationLevel) -> Option<LocId> {
        self.ancestor_at_depth(id, level.depth())
    }

    /// `id` truncated at `level` — the ancestor at `level`, or `id` itself
    /// when already broader. Mirrors [`LocationPath::truncate_at`].
    pub fn truncate_at(&self, id: LocId, level: LocationLevel) -> LocId {
        self.ancestor_at_depth(id, level.depth().min(self.depth(id)))
            .expect("truncation depth is within the node's depth")
    }

    /// True if `a` is `b` or an ancestor of `b` — the containment test of
    /// the locator's Algorithm 1, as two array probes.
    pub fn contains(&self, a: LocId, b: LocId) -> bool {
        self.ancestor_at_depth(b, self.depth(a)) == Some(a)
    }

    /// True if `a` is a *strict* ancestor of `b`.
    pub fn is_strict_ancestor(&self, a: LocId, b: LocId) -> bool {
        self.depth(a) < self.depth(b) && self.contains(a, b)
    }

    /// The deepest common ancestor of two ids, or `None` when they share no
    /// region (their only common ancestor is the network root).
    pub fn common_ancestor(&self, a: LocId, b: LocId) -> Option<LocId> {
        let na = &self.nodes[a.index()];
        let nb = &self.nodes[b.index()];
        let max = (na.depth as usize).min(nb.depth as usize);
        let mut deepest = None;
        for d in 0..max {
            if na.ancestors[d] == nb.ancestors[d] {
                deepest = Some(na.ancestors[d]);
            } else {
                break;
            }
        }
        deepest
    }

    /// Ancestors of `id` from the region down to `id` itself.
    pub fn ancestors(&self, id: LocId) -> impl Iterator<Item = LocId> + '_ {
        let node = &self.nodes[id.index()];
        node.ancestors[..node.depth as usize].iter().copied()
    }

    /// The region-level (depth-1) ancestor of `id`. Always defined: every
    /// interned node's ancestor chain starts at a region.
    pub fn region_of(&self, id: LocId) -> LocId {
        self.nodes[id.index()].ancestors[0]
    }

    /// All region-level (depth-1) ids, in id (interning) order. For a
    /// seed interner this is also path order, so the enumeration is a
    /// deterministic region ordering shared by every consumer.
    pub fn regions(&self) -> impl Iterator<Item = LocId> + '_ {
        self.ids().filter(|&id| self.nodes[id.index()].depth == 1)
    }

    /// Deterministic location order: compares the materialized paths
    /// segment-wise (the [`LocationPath`] `Ord`), independent of interning
    /// order. Use this wherever iteration order must not depend on when a
    /// location was first seen.
    pub fn cmp(&self, a: LocId, b: LocId) -> std::cmp::Ordering {
        self.path(a).cmp(self.path(b))
    }

    /// All interned ids, in id (interning) order.
    pub fn ids(&self) -> impl Iterator<Item = LocId> {
        (0..self.nodes.len()).map(LocId::from_index)
    }

    /// The full ancestor array of `id` (region first, `id` last), as a
    /// slice. O(1); the backbone of delta-maintained per-ancestor counts.
    pub fn ancestor_slice(&self, id: LocId) -> &[LocId] {
        let node = &self.nodes[id.index()];
        &node.ancestors[..node.depth as usize]
    }

    /// Strict ancestors of `id`, region first (excludes `id` itself).
    pub fn strict_ancestors(&self, id: LocId) -> impl Iterator<Item = LocId> + '_ {
        let node = &self.nodes[id.index()];
        node.ancestors[..node.depth.saturating_sub(1) as usize]
            .iter()
            .copied()
    }

    /// Ids in the subtree rooted at `id` (including `id`), in interning
    /// order. O(subtree) via the child lists — small trees only; hot paths
    /// should read delta-maintained subtree counts instead.
    pub fn subtree(&self, id: LocId) -> Vec<LocId> {
        let mut out = vec![id];
        let mut i = 0;
        while i < out.len() {
            out.extend_from_slice(self.children(out[i]));
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    fn device_interner() -> LocationInterner {
        LocationInterner::from_paths([
            p("R|C|L|S|K1|D1"),
            p("R|C|L|S|K1|D2"),
            p("R|C|L|S|K2|D3"),
            p("R|C|L|S2|K3|D4"),
            p("R2|C2|L2|S3|K4|D5"),
        ])
    }

    #[test]
    fn from_paths_interns_every_prefix() {
        let i = device_interner();
        // 2 regions, 2 cities, 2 logic sites, 3 sites, 4 clusters, 5 devices.
        assert_eq!(i.len(), 18);
        for path in [
            p("R"),
            p("R|C"),
            p("R|C|L"),
            p("R|C|L|S"),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K1|D1"),
        ] {
            let id = i.resolve(&path).expect("prefix interned");
            assert_eq!(i.path(id), &path);
            assert_eq!(i.depth(id), path.depth());
        }
        assert_eq!(i.resolve(&p("R|C|L|S|K9")), None);
        assert_eq!(i.resolve(&LocationPath::root()), None);
    }

    #[test]
    fn seed_ids_follow_path_order() {
        let i = device_interner();
        let mut paths: Vec<LocationPath> = i.ids().map(|id| i.path(id).clone()).collect();
        let sorted = {
            let mut s = paths.clone();
            s.sort();
            s
        };
        assert_eq!(paths, sorted);
        paths.sort();
        // And cmp() agrees with path order regardless.
        let mut ids: Vec<LocId> = i.ids().collect();
        ids.sort_by(|&a, &b| i.cmp(a, b));
        let by_cmp: Vec<LocationPath> = ids.iter().map(|&id| i.path(id).clone()).collect();
        assert_eq!(by_cmp, paths);
    }

    #[test]
    fn ancestor_queries_at_every_level() {
        let i = device_interner();
        let dev = i.resolve(&p("R|C|L|S|K1|D1")).unwrap();
        let expected = [
            (LocationLevel::Region, "R"),
            (LocationLevel::City, "R|C"),
            (LocationLevel::LogicSite, "R|C|L"),
            (LocationLevel::Site, "R|C|L|S"),
            (LocationLevel::Cluster, "R|C|L|S|K1"),
            (LocationLevel::Device, "R|C|L|S|K1|D1"),
        ];
        for (level, path) in expected {
            let anc = i.ancestor_at(dev, level).expect("ancestor at level");
            assert_eq!(i.path(anc), &p(path));
            assert_eq!(i.level(anc), level);
            assert_eq!(i.truncate_at(dev, level), anc);
            assert!(i.contains(anc, dev));
        }
        // A cluster has no device-level ancestor; truncate_at saturates.
        let cluster = i.resolve(&p("R|C|L|S|K1")).unwrap();
        assert_eq!(i.ancestor_at(cluster, LocationLevel::Device), None);
        assert_eq!(i.truncate_at(cluster, LocationLevel::Device), cluster);
    }

    #[test]
    fn common_ancestor_at_every_level() {
        let i = device_interner();
        let d1 = i.resolve(&p("R|C|L|S|K1|D1")).unwrap();
        let cases = [
            ("R|C|L|S|K1|D1", Some("R|C|L|S|K1|D1")), // self
            ("R|C|L|S|K1|D2", Some("R|C|L|S|K1")),    // cluster LCA
            ("R|C|L|S|K2|D3", Some("R|C|L|S")),       // site LCA
            ("R|C|L|S2|K3|D4", Some("R|C|L")),        // logic-site LCA
            ("R|C|L|S2", Some("R|C|L")),              // against a shallower node
            ("R2|C2|L2|S3|K4|D5", None),              // different region: root
        ];
        for (other, want) in cases {
            let o = i.resolve(&p(other)).unwrap();
            let got = i.common_ancestor(d1, o);
            assert_eq!(got.map(|id| i.path(id).clone()), want.map(p));
            assert_eq!(got, i.common_ancestor(o, d1), "LCA commutes");
        }
        // City- and region-level LCAs via shallower probes.
        let c = i.resolve(&p("R|C")).unwrap();
        let r = i.resolve(&p("R")).unwrap();
        assert_eq!(i.common_ancestor(c, d1), Some(c));
        assert_eq!(i.common_ancestor(r, d1), Some(r));
        // Mirrors LocationPath::common_ancestor on every interned pair.
        for a in i.ids() {
            for b in i.ids() {
                let by_path = i.path(a).common_ancestor(i.path(b));
                let by_id = i.common_ancestor(a, b);
                match by_id {
                    Some(id) => assert_eq!(i.path(id), &by_path),
                    None => assert!(by_path.is_root()),
                }
            }
        }
    }

    #[test]
    fn containment_mirrors_paths() {
        let i = device_interner();
        for a in i.ids() {
            for b in i.ids() {
                assert_eq!(i.contains(a, b), i.path(a).contains(i.path(b)));
                assert_eq!(
                    i.is_strict_ancestor(a, b),
                    i.path(a).is_strict_ancestor_of(i.path(b))
                );
            }
        }
    }

    #[test]
    fn parent_children_round_trip() {
        let i = device_interner();
        for id in i.ids() {
            match i.parent(id) {
                Some(parent) => {
                    assert_eq!(i.path(parent), &i.path(id).parent());
                    assert!(i.children(parent).contains(&id));
                }
                None => assert_eq!(i.depth(id), 1),
            }
            for &child in i.children(id) {
                assert_eq!(i.parent(child), Some(id));
            }
        }
    }

    #[test]
    fn ancestors_enumerate_prefix_chain() {
        let i = device_interner();
        let dev = i.resolve(&p("R|C|L|S|K1|D1")).unwrap();
        let chain: Vec<LocationPath> = i.ancestors(dev).map(|a| i.path(a).clone()).collect();
        let want: Vec<LocationPath> = p("R|C|L|S|K1|D1").prefixes().collect();
        assert_eq!(chain, want);
    }

    #[test]
    fn dynamic_intern_appends_and_links() {
        let mut i = device_interner();
        let before = i.len();
        let probe = p("R|C|L|S|K1|probe-7");
        assert_eq!(i.resolve(&probe), None);
        let id = i.intern(&probe);
        assert_eq!(id.index(), before, "appended at the end");
        assert_eq!(i.resolve(&probe), Some(id));
        assert_eq!(i.intern(&probe), id, "idempotent");
        let cluster = i.resolve(&p("R|C|L|S|K1")).unwrap();
        assert_eq!(i.parent(id), Some(cluster));
        assert!(i.contains(cluster, id));
        assert_eq!(i.common_ancestor(id, cluster), Some(cluster));
        // A fully novel subtree interns every missing ancestor.
        let far = p("R9|C9|L9");
        let far_id = i.intern(&far);
        assert_eq!(i.ancestors(far_id).count(), 3);
        assert!(i.resolve(&p("R9")).is_some());
        assert!(i.resolve(&p("R9|C9")).is_some());
    }

    #[test]
    fn region_queries_are_total() {
        let i = device_interner();
        let regions: Vec<LocationPath> = i.regions().map(|r| i.path(r).clone()).collect();
        assert_eq!(regions, vec![p("R"), p("R2")]);
        for id in i.ids() {
            let region = i.region_of(id);
            assert_eq!(i.depth(region), 1);
            assert!(i.contains(region, id));
            assert_eq!(Some(region), i.ancestor_at_depth(id, 1));
        }
        // Region of a region is itself.
        let r = i.resolve(&p("R")).unwrap();
        assert_eq!(i.region_of(r), r);
    }

    #[test]
    #[should_panic(expected = "cannot intern the root path")]
    fn interning_root_panics() {
        let mut i = LocationInterner::new();
        let _ = i.intern(&LocationPath::root());
    }

    #[test]
    fn cmp_is_path_order_even_after_dynamic_interning() {
        let mut i = LocationInterner::from_paths([p("R|C|L|S|Cluster-10|D1")]);
        // "Cluster-1" sorts before "Cluster-10" segment-wise, but is
        // interned later so gets a larger id.
        let late = i.intern(&p("R|C|L|S|Cluster-1"));
        let early = i.resolve(&p("R|C|L|S|Cluster-10")).unwrap();
        assert!(late > early, "id order follows interning order");
        assert_eq!(i.cmp(late, early), std::cmp::Ordering::Less);
    }

    #[test]
    fn ancestor_slice_matches_ancestors_iterator() {
        let i = device_interner();
        for id in i.ids() {
            let from_iter: Vec<_> = i.ancestors(id).collect();
            assert_eq!(i.ancestor_slice(id), &from_iter[..]);
            assert_eq!(i.ancestor_slice(id).last(), Some(&id));
            let strict: Vec<_> = i.strict_ancestors(id).collect();
            assert_eq!(&from_iter[..from_iter.len() - 1], &strict[..]);
            for a in strict {
                assert!(i.is_strict_ancestor(a, id));
            }
        }
    }

    #[test]
    fn subtree_enumerates_exactly_the_contained_ids() {
        let i = device_interner();
        for root in i.ids() {
            let mut got = i.subtree(root);
            got.sort_unstable();
            let mut expect: Vec<_> = i.ids().filter(|&id| i.contains(root, id)).collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }
}
