//! Strongly-typed identifiers.
//!
//! Devices, links, circuit sets, customers and incidents are all referred to
//! by dense `u32` indices into the topology (or the incident store). Newtype
//! wrappers keep the index spaces from being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect(concat!(stringify!($name), " index overflow")))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A network device (router/switch) in the topology.
    DeviceId,
    "dev"
);
id_type!(
    /// A logical link between two devices. One link aggregates the circuits
    /// of one circuit set.
    LinkId,
    "link"
);
id_type!(
    /// A redundancy group of physical circuits backing one logical link
    /// (§4.3: "all links connecting network devices consist of multiple
    /// circuits, each is called a circuit set").
    CircuitSetId,
    "cset"
);
id_type!(
    /// A customer whose traffic rides some circuit sets (used by the
    /// evaluator's importance factor, Table 3).
    CustomerId,
    "cust"
);
id_type!(
    /// An incident produced by the locator (a set of alerts attributed to
    /// one root cause).
    IncidentId,
    "incident"
);
id_type!(
    /// An injected failure (simulation ground truth). Alerts carry an
    /// optional `FailureId` provenance tag so experiments can score false
    /// positives/negatives against the injector's record; SkyNet's
    /// algorithms never read it.
    FailureId,
    "failure"
);

/// Per-alert trace identifier for stage tracing ("where did alert X go?").
///
/// `TraceId::NONE` (the `0` value and serde default) marks an alert that has
/// not entered the pipeline yet; the ingestion guard assigns dense ids in
/// intake order. Ids are unique within one guard incarnation — a batch
/// `analyze` call, or one streaming-worker life between supervisor restarts
/// (the trace ring is cleared on restart). The id is a `Copy` `u64` so
/// threading it through every stage costs no allocation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "not traced" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// True for the unassigned sentinel.
    pub const fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// True once a real id was assigned.
    pub const fn is_some(&self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let d = DeviceId::from_index(42);
        assert_eq!(d.index(), 42);
        assert_eq!(d, DeviceId(42));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(DeviceId(3).to_string(), "dev3");
        assert_eq!(LinkId(9).to_string(), "link9");
        assert_eq!(CircuitSetId(1).to_string(), "cset1");
        assert_eq!(CustomerId(0).to_string(), "cust0");
        assert_eq!(IncidentId(7).to_string(), "incident7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(DeviceId(1) < DeviceId(2));
    }

    #[test]
    #[should_panic(expected = "index overflow")]
    fn overflow_panics() {
        let _ = DeviceId::from_index(usize::MAX);
    }

    #[test]
    fn trace_id_sentinel_and_display() {
        assert!(TraceId::NONE.is_none());
        assert!(!TraceId::NONE.is_some());
        assert!(TraceId(7).is_some());
        assert_eq!(TraceId::default(), TraceId::NONE);
        assert_eq!(TraceId(7).to_string(), "trace7");
    }
}
