//! The cloud location hierarchy (Fig. 5b).
//!
//! The entire network — WAN plus data centers — is organized hierarchically:
//! Region → City → Logic site → Site → Cluster → Device. Every alert carries
//! a [`LocationPath`]: the chain of names from the region down to whatever
//! level the emitting tool can attribute (§4.1: a syslog alert is attributed
//! to a device; a ping packet-loss alert between two logic sites is
//! attributed to each endpoint's site-level location).
//!
//! Paths are immutable and cheap to clone (`Arc`-backed); the locator clones
//! them into its main tree for every alert of a flood.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::sync::Arc;

/// One level of the hierarchy, ordered from broadest to narrowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LocationLevel {
    /// Geographic region (e.g. "Region A"). Depth 1.
    Region,
    /// City within a region. Depth 2.
    City,
    /// Logic site: a set of co-operating sites in one city. Depth 3.
    LogicSite,
    /// Physical site (data-center building). Depth 4.
    Site,
    /// Cluster of devices within a site. Depth 5.
    Cluster,
    /// Individual network device. Depth 6.
    Device,
}

impl LocationLevel {
    /// All levels, broadest first.
    pub const ALL: [LocationLevel; 6] = [
        LocationLevel::Region,
        LocationLevel::City,
        LocationLevel::LogicSite,
        LocationLevel::Site,
        LocationLevel::Cluster,
        LocationLevel::Device,
    ];

    /// Path depth corresponding to this level (Region = 1 … Device = 6).
    pub const fn depth(self) -> usize {
        match self {
            LocationLevel::Region => 1,
            LocationLevel::City => 2,
            LocationLevel::LogicSite => 3,
            LocationLevel::Site => 4,
            LocationLevel::Cluster => 5,
            LocationLevel::Device => 6,
        }
    }

    /// The level for a given path depth, if valid.
    pub const fn from_depth(depth: usize) -> Option<LocationLevel> {
        match depth {
            1 => Some(LocationLevel::Region),
            2 => Some(LocationLevel::City),
            3 => Some(LocationLevel::LogicSite),
            4 => Some(LocationLevel::Site),
            5 => Some(LocationLevel::Cluster),
            6 => Some(LocationLevel::Device),
            _ => None,
        }
    }
}

impl fmt::Display for LocationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocationLevel::Region => "region",
            LocationLevel::City => "city",
            LocationLevel::LogicSite => "logic-site",
            LocationLevel::Site => "site",
            LocationLevel::Cluster => "cluster",
            LocationLevel::Device => "device",
        };
        f.write_str(s)
    }
}

/// A path in the location hierarchy, e.g.
/// `Region A|City a|Logic site 2|Site I|Cluster ii`.
///
/// The empty path is the root of the whole network. Segment names must not
/// contain the `|` separator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LocationPath {
    segments: Arc<[Box<str>]>,
}

impl PartialOrd for LocationPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LocationPath {
    /// Lexicographic over segments: a parent sorts before its children and
    /// sibling subtrees stay contiguous.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.segments.cmp(&other.segments)
    }
}

impl LocationPath {
    /// The root of the network (empty path).
    pub fn root() -> Self {
        LocationPath {
            segments: Arc::from(Vec::new()),
        }
    }

    /// Builds a path from segment names, broadest first.
    ///
    /// # Panics
    /// Panics if any segment contains the `|` separator or is empty, or if
    /// there are more than six segments.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Box<str>>,
    {
        let segments: Vec<Box<str>> = segments.into_iter().map(Into::into).collect();
        assert!(
            segments.len() <= LocationLevel::Device.depth(),
            "location path deeper than the device level: {segments:?}"
        );
        for s in &segments {
            assert!(
                !s.is_empty() && !s.contains('|'),
                "invalid location segment {s:?}"
            );
        }
        LocationPath {
            segments: Arc::from(segments),
        }
    }

    /// Parses a `|`-separated path string. An empty string is the root.
    pub fn parse(s: &str) -> Result<Self, LocationParseError> {
        if s.is_empty() {
            return Ok(Self::root());
        }
        let segments: Vec<Box<str>> = s.split('|').map(|seg| seg.trim()).map(Box::from).collect();
        if segments.len() > LocationLevel::Device.depth() {
            return Err(LocationParseError::TooDeep(segments.len()));
        }
        if segments.iter().any(|seg| seg.is_empty()) {
            return Err(LocationParseError::EmptySegment);
        }
        Ok(LocationPath {
            segments: Arc::from(segments),
        })
    }

    /// Number of segments (0 for the root, 6 for a device).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// True for the root of the network.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// The hierarchy level this path addresses, or `None` for the root.
    pub fn level(&self) -> Option<LocationLevel> {
        LocationLevel::from_depth(self.depth())
    }

    /// Segment names, broadest first.
    pub fn segments(&self) -> &[Box<str>] {
        &self.segments
    }

    /// The final (narrowest) segment name, or `None` for the root.
    pub fn leaf(&self) -> Option<&str> {
        self.segments.last().map(|s| s.as_ref())
    }

    /// The parent path (root's parent is root).
    pub fn parent(&self) -> LocationPath {
        if self.segments.is_empty() {
            return self.clone();
        }
        LocationPath {
            segments: Arc::from(&self.segments[..self.segments.len() - 1]),
        }
    }

    /// The prefix of this path truncated at `level` (or the full path if it
    /// is already broader than `level`).
    pub fn truncate_at(&self, level: LocationLevel) -> LocationPath {
        let d = level.depth().min(self.segments.len());
        LocationPath {
            segments: Arc::from(&self.segments[..d]),
        }
    }

    /// Extends this path with one more segment.
    ///
    /// # Panics
    /// Panics on invalid segments or if already at device depth.
    pub fn child(&self, segment: impl Into<Box<str>>) -> LocationPath {
        let segment = segment.into();
        assert!(
            !segment.is_empty() && !segment.contains('|'),
            "invalid location segment {segment:?}"
        );
        assert!(
            self.depth() < LocationLevel::Device.depth(),
            "cannot extend a device-level path"
        );
        let mut v: Vec<Box<str>> = self.segments.to_vec();
        v.push(segment);
        LocationPath {
            segments: Arc::from(v),
        }
    }

    /// True if `self` is `other` or an ancestor of `other` (prefix test).
    ///
    /// This is the containment test used by the locator's Algorithm 1
    /// (`d.location ∈ i.subtree`).
    pub fn contains(&self, other: &LocationPath) -> bool {
        other.segments.len() >= self.segments.len()
            && self
                .segments
                .iter()
                .zip(other.segments.iter())
                .all(|(a, b)| a == b)
    }

    /// True if `self` is a *strict* ancestor of `other`.
    pub fn is_strict_ancestor_of(&self, other: &LocationPath) -> bool {
        self.segments.len() < other.segments.len() && self.contains(other)
    }

    /// Iterates over every ancestor prefix from the root (exclusive) down to
    /// this path (inclusive): for `a|b|c` yields `a`, `a|b`, `a|b|c`.
    pub fn prefixes(&self) -> impl Iterator<Item = LocationPath> + '_ {
        (1..=self.segments.len()).map(move |d| LocationPath {
            segments: Arc::from(&self.segments[..d]),
        })
    }

    /// The deepest common ancestor of two paths (possibly the root).
    pub fn common_ancestor(&self, other: &LocationPath) -> LocationPath {
        let d = self
            .segments
            .iter()
            .zip(other.segments.iter())
            .take_while(|(a, b)| a == b)
            .count();
        LocationPath {
            segments: Arc::from(&self.segments[..d]),
        }
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                f.write_str("|")?;
            }
            f.write_str(s)?;
        }
        Ok(())
    }
}

impl fmt::Debug for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocationPath({self})")
    }
}

impl Serialize for LocationPath {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for LocationPath {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        LocationPath::parse(&s).map_err(D::Error::custom)
    }
}

/// Errors from [`LocationPath::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationParseError {
    /// More segments than the six hierarchy levels.
    TooDeep(usize),
    /// A segment between separators was empty.
    EmptySegment,
}

impl fmt::Display for LocationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationParseError::TooDeep(n) => {
                write!(f, "location path has {n} segments, maximum is 6")
            }
            LocationParseError::EmptySegment => write!(f, "location path has an empty segment"),
        }
    }
}

impl std::error::Error for LocationParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    #[test]
    fn depth_and_level() {
        assert_eq!(LocationPath::root().depth(), 0);
        assert_eq!(LocationPath::root().level(), None);
        let site = p("Region A|City a|Logic site 2|Site I");
        assert_eq!(site.depth(), 4);
        assert_eq!(site.level(), Some(LocationLevel::Site));
        let dev = p("Region A|City a|Logic site 2|Site I|Cluster ii|Device i");
        assert_eq!(dev.level(), Some(LocationLevel::Device));
    }

    #[test]
    fn parse_rejects_bad_paths() {
        assert_eq!(
            LocationPath::parse("a|b|c|d|e|f|g"),
            Err(LocationParseError::TooDeep(7))
        );
        assert_eq!(
            LocationPath::parse("a||c"),
            Err(LocationParseError::EmptySegment)
        );
        assert!(LocationPath::parse("").unwrap().is_root());
    }

    #[test]
    fn display_round_trips() {
        let s = "Region A|City a|Logic site 2|Site I|Cluster ii";
        assert_eq!(p(s).to_string(), s);
    }

    #[test]
    fn parse_trims_segment_whitespace() {
        assert_eq!(p("Region A | City a").to_string(), "Region A|City a");
    }

    #[test]
    fn containment() {
        let site = p("R|C|L|S");
        let cluster = p("R|C|L|S|K");
        let other = p("R|C|L|S2");
        assert!(site.contains(&cluster));
        assert!(site.contains(&site));
        assert!(!site.contains(&other));
        assert!(site.is_strict_ancestor_of(&cluster));
        assert!(!site.is_strict_ancestor_of(&site));
        assert!(LocationPath::root().contains(&site));
    }

    #[test]
    fn parent_and_child() {
        let c = p("R|C");
        assert_eq!(c.parent(), p("R"));
        assert_eq!(p("R").parent(), LocationPath::root());
        assert_eq!(LocationPath::root().parent(), LocationPath::root());
        assert_eq!(c.child("L"), p("R|C|L"));
    }

    #[test]
    fn truncate_at_level() {
        let dev = p("R|C|L|S|K|D");
        assert_eq!(dev.truncate_at(LocationLevel::LogicSite), p("R|C|L"));
        assert_eq!(dev.truncate_at(LocationLevel::Device), dev);
        assert_eq!(p("R|C").truncate_at(LocationLevel::Site), p("R|C"));
    }

    #[test]
    fn prefixes_enumerate_ancestor_chain() {
        let v: Vec<_> = p("R|C|L").prefixes().collect();
        assert_eq!(v, vec![p("R"), p("R|C"), p("R|C|L")]);
        assert_eq!(LocationPath::root().prefixes().count(), 0);
    }

    #[test]
    fn common_ancestor() {
        assert_eq!(p("R|C|L|S").common_ancestor(&p("R|C|X")), p("R|C"));
        assert_eq!(p("R|C").common_ancestor(&p("Q")), LocationPath::root());
        let a = p("R|C");
        assert_eq!(a.common_ancestor(&a), a);
    }

    #[test]
    fn serde_is_string_form() {
        let path = p("R|C|L");
        let json = serde_json::to_string(&path).unwrap();
        assert_eq!(json, "\"R|C|L\"");
        let back: LocationPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, path);
    }

    #[test]
    #[should_panic(expected = "invalid location segment")]
    fn new_rejects_separator_in_segment() {
        let _ = LocationPath::new(["a|b"]);
    }

    #[test]
    fn level_depth_round_trip() {
        for level in LocationLevel::ALL {
            assert_eq!(LocationLevel::from_depth(level.depth()), Some(level));
        }
        assert_eq!(LocationLevel::from_depth(0), None);
        assert_eq!(LocationLevel::from_depth(7), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn segment_strategy() -> impl Strategy<Value = String> {
        "[A-Za-z][A-Za-z0-9 _-]{0,8}"
            .prop_map(|s| s.trim().to_string())
            .prop_filter("non-empty after trim", |s| !s.is_empty())
    }

    fn path_strategy() -> impl Strategy<Value = LocationPath> {
        prop::collection::vec(segment_strategy(), 0..=6).prop_map(LocationPath::new)
    }

    proptest! {
        /// Display → parse is the identity.
        #[test]
        fn display_parse_round_trip(path in path_strategy()) {
            let parsed = LocationPath::parse(&path.to_string()).unwrap();
            prop_assert_eq!(parsed, path);
        }

        /// Containment is a partial order: reflexive, antisymmetric (on
        /// equal depth), transitive.
        #[test]
        fn containment_laws(a in path_strategy(), b in path_strategy(), c in path_strategy()) {
            prop_assert!(a.contains(&a));
            if a.contains(&b) && b.contains(&a) {
                prop_assert_eq!(&a, &b);
            }
            if a.contains(&b) && b.contains(&c) {
                prop_assert!(a.contains(&c));
            }
        }

        /// The common ancestor is the deepest path containing both.
        #[test]
        fn common_ancestor_is_greatest_lower_bound(a in path_strategy(), b in path_strategy()) {
            let ca = a.common_ancestor(&b);
            prop_assert!(ca.contains(&a));
            prop_assert!(ca.contains(&b));
            // One level deeper on either side no longer contains both.
            if ca.depth() < a.depth() {
                let deeper = a.truncate_at(
                    LocationLevel::from_depth(ca.depth() + 1).unwrap_or(LocationLevel::Device),
                );
                if deeper.depth() == ca.depth() + 1 {
                    prop_assert!(!(deeper.contains(&a) && deeper.contains(&b)));
                }
            }
            // Commutative.
            prop_assert_eq!(ca, b.common_ancestor(&a));
        }

        /// Parent reduces depth by exactly one (root is a fixed point), and
        /// every prefix contains the path.
        #[test]
        fn parent_and_prefix_laws(path in path_strategy()) {
            let parent = path.parent();
            if path.is_root() {
                prop_assert!(parent.is_root());
            } else {
                prop_assert_eq!(parent.depth(), path.depth() - 1);
                prop_assert!(parent.contains(&path));
            }
            for prefix in path.prefixes() {
                prop_assert!(prefix.contains(&path));
            }
            prop_assert_eq!(path.prefixes().count(), path.depth());
        }

        /// Ordering groups subtrees: a parent sorts before its children.
        #[test]
        fn parent_sorts_before_children(path in path_strategy()) {
            if !path.is_root() {
                prop_assert!(path.parent() < path);
            }
        }

        /// Serde round-trips through JSON.
        #[test]
        fn serde_round_trip(path in path_strategy()) {
            let json = serde_json::to_string(&path).unwrap();
            let back: LocationPath = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, path);
        }
    }
}
