//! The uniform alert input format (§4.1) and the preprocessor's output.
//!
//! [`RawAlert`] is what every monitoring tool emits — the extensibility
//! boundary of the system. It is serde-serializable so a new tool only needs
//! to produce JSON lines in this shape to be integrated. [`StructuredAlert`]
//! is what the preprocessor hands to the locator: classified, consolidated,
//! carrying a time *range* and a duplicate count rather than one timestamp
//! per observation.

use crate::ids::{FailureId, TraceId};
use crate::kind::{AlertClass, AlertKind, AlertType};
use crate::location::LocationPath;
use crate::source::DataSource;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload of a raw alert.
///
/// Structured tools (ping, SNMP, out-of-band, …) know their alert kind at
/// emission time. Syslog emits free text; the preprocessor classifies it
/// into a kind with FT-tree templates (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertBody {
    /// A manually-typed alert from a structured tool.
    Known(AlertKind),
    /// A raw syslog line, to be classified by template matching.
    SyslogText(String),
}

/// A raw alert as emitted by a monitoring tool: when, where and what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawAlert {
    /// The tool that produced the alert.
    pub source: DataSource,
    /// Emission time (may lag the observed event by the tool's delay; SNMP
    /// on CPU-limited devices lags up to ~2 minutes, §4.2).
    pub timestamp: SimTime,
    /// Where the alert is attributed in the location hierarchy.
    pub location: LocationPath,
    /// For link- or path-scoped alerts, the other endpoint. The
    /// preprocessor splits such alerts into two, one per endpoint (§4.1).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub peer: Option<LocationPath>,
    /// What happened.
    pub body: AlertBody,
    /// Tool-specific magnitude: packet-loss ratio in `[0, 1]`, latency in
    /// ms, traffic delta ratio, … Zero when the tool reports none.
    pub magnitude: f64,
    /// Simulation-only provenance: which injected failure caused this alert
    /// (`None` for background noise). Never read by SkyNet's algorithms —
    /// only by the experiment harness to score accuracy against ground
    /// truth.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cause: Option<FailureId>,
    /// Stage-tracing id, assigned by the ingestion guard at intake
    /// ([`TraceId::NONE`] before then). Tools never set this; it is omitted
    /// from the wire format while unassigned.
    #[serde(default, skip_serializing_if = "TraceId::is_none")]
    pub trace: TraceId,
}

/// A structural defect in a raw alert, detectable without any topology or
/// stream context. This is the model-level validation hook the pipeline's
/// ingestion guard builds on: a tool emitting garbage (NaN magnitudes,
/// truncated or binary-corrupted syslog lines) is caught at the uniform
/// input format boundary instead of poisoning the locator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertDefect {
    /// `magnitude` is NaN or infinite.
    NonFiniteMagnitude,
    /// A syslog body that is empty (or whitespace only) — nothing to
    /// classify.
    EmptySyslog,
    /// A syslog body containing control characters or U+FFFD replacement
    /// characters: the signature of truncated or binary-corrupted log
    /// transport.
    CorruptSyslogBytes,
}

impl fmt::Display for AlertDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlertDefect::NonFiniteMagnitude => "non-finite magnitude",
            AlertDefect::EmptySyslog => "empty syslog body",
            AlertDefect::CorruptSyslogBytes => "corrupt bytes in syslog body",
        };
        f.write_str(s)
    }
}

impl RawAlert {
    /// A structured alert of a known kind.
    pub fn known(
        source: DataSource,
        timestamp: SimTime,
        location: LocationPath,
        kind: AlertKind,
    ) -> Self {
        RawAlert {
            source,
            timestamp,
            location,
            peer: None,
            body: AlertBody::Known(kind),
            magnitude: 0.0,
            cause: None,
            trace: TraceId::NONE,
        }
    }

    /// A raw syslog line.
    pub fn syslog(timestamp: SimTime, location: LocationPath, text: impl Into<String>) -> Self {
        RawAlert {
            source: DataSource::Syslog,
            timestamp,
            location,
            peer: None,
            body: AlertBody::SyslogText(text.into()),
            magnitude: 0.0,
            cause: None,
            trace: TraceId::NONE,
        }
    }

    /// Sets the magnitude (builder style).
    pub fn with_magnitude(mut self, magnitude: f64) -> Self {
        self.magnitude = magnitude;
        self
    }

    /// Sets the peer endpoint (builder style).
    pub fn with_peer(mut self, peer: LocationPath) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Sets ground-truth provenance (builder style).
    pub fn with_cause(mut self, cause: FailureId) -> Self {
        self.cause = Some(cause);
        self
    }

    /// Sets the stage-tracing id (builder style; normally assigned by the
    /// ingestion guard).
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = trace;
        self
    }

    /// The kind, if already known without classification.
    pub fn known_kind(&self) -> Option<AlertKind> {
        match &self.body {
            AlertBody::Known(k) => Some(*k),
            AlertBody::SyslogText(_) => None,
        }
    }

    /// Checks the alert for structural defects (the first found, if any).
    ///
    /// A `None` result means the alert is well-formed at the model level;
    /// it may still be rejected by stream-level checks (watermark,
    /// topology membership, duplicate suppression).
    pub fn structural_defect(&self) -> Option<AlertDefect> {
        if !self.magnitude.is_finite() {
            return Some(AlertDefect::NonFiniteMagnitude);
        }
        if let AlertBody::SyslogText(text) = &self.body {
            if text.trim().is_empty() {
                return Some(AlertDefect::EmptySyslog);
            }
            if text
                .chars()
                .any(|c| (c.is_control() && c != '\t') || c == '\u{fffd}')
            {
                return Some(AlertDefect::CorruptSyslogBytes);
            }
        }
        None
    }
}

/// A classified, consolidated alert — the preprocessor's output and the
/// locator's input. Matches the "Structured Alerts" of Fig. 6: a type, a
/// time range and a location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuredAlert {
    /// Fully-qualified type (source + kind).
    pub ty: AlertType,
    /// First observation in the consolidated group.
    pub first_seen: SimTime,
    /// Most recent observation (updated when duplicates are consolidated).
    pub last_seen: SimTime,
    /// Attributed location.
    pub location: LocationPath,
    /// How many raw alerts were consolidated into this one.
    pub count: u32,
    /// Maximum magnitude over the consolidated group.
    pub magnitude: f64,
    /// Ground-truth provenance of the first causal raw alert, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cause: Option<FailureId>,
    /// Stage-tracing id inherited from the earliest raw alert consolidated
    /// into this group ([`TraceId::NONE`] when tracing is off).
    #[serde(default, skip_serializing_if = "TraceId::is_none")]
    pub trace: TraceId,
}

impl StructuredAlert {
    /// Builds a structured alert from a single classified raw alert.
    pub fn from_raw(raw: &RawAlert, kind: AlertKind) -> Self {
        StructuredAlert {
            ty: AlertType::new(raw.source, kind),
            first_seen: raw.timestamp,
            last_seen: raw.timestamp,
            location: raw.location.clone(),
            count: 1,
            magnitude: raw.magnitude,
            cause: raw.cause,
            trace: raw.trace,
        }
    }

    /// The alert class of the underlying kind.
    pub fn class(&self) -> AlertClass {
        self.ty.class()
    }

    /// The "duration" attribute shown to operators (§4.1).
    pub fn duration(&self) -> SimDuration {
        self.last_seen.since(self.first_seen)
    }

    /// Folds another observation of the same type/location into this alert:
    /// extends the time range, bumps the count, keeps the max magnitude and
    /// the earliest known cause.
    pub fn absorb(&mut self, other: &StructuredAlert) {
        debug_assert_eq!(self.ty, other.ty);
        self.first_seen = self.first_seen.min(other.first_seen);
        self.last_seen = self.last_seen.max(other.last_seen);
        self.count += other.count;
        if other.magnitude > self.magnitude {
            self.magnitude = other.magnitude;
        }
        if self.cause.is_none() {
            self.cause = other.cause;
        }
        if self.trace.is_none() {
            self.trace = other.trace;
        }
    }
}

impl fmt::Display for StructuredAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} [{} - {}] x{}",
            self.ty, self.location, self.first_seen, self.last_seen, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    #[test]
    fn raw_alert_builders() {
        let a = RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(10),
            loc("R|C|L|S"),
            AlertKind::PacketLossIcmp,
        )
        .with_magnitude(0.15)
        .with_cause(FailureId(3));
        assert_eq!(a.known_kind(), Some(AlertKind::PacketLossIcmp));
        assert_eq!(a.magnitude, 0.15);
        assert_eq!(a.cause, Some(FailureId(3)));

        let s = RawAlert::syslog(SimTime::ZERO, loc("R|C|L|S|K|D"), "TenGigE0/1/0/25 down");
        assert_eq!(s.known_kind(), None);
        assert_eq!(s.source, DataSource::Syslog);
    }

    #[test]
    fn structured_from_raw() {
        let raw = RawAlert::known(
            DataSource::Snmp,
            SimTime::from_secs(5),
            loc("R|C|L"),
            AlertKind::TrafficCongestion,
        )
        .with_magnitude(0.9);
        let s = StructuredAlert::from_raw(&raw, AlertKind::TrafficCongestion);
        assert_eq!(s.class(), AlertClass::RootCause);
        assert_eq!(s.count, 1);
        assert_eq!(s.duration(), SimDuration::ZERO);
        assert_eq!(s.magnitude, 0.9);
    }

    #[test]
    fn absorb_merges_range_count_magnitude_and_cause() {
        let raw1 = RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(10),
            loc("R|C"),
            AlertKind::PacketLossIcmp,
        )
        .with_magnitude(0.05);
        let raw2 = RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(4),
            loc("R|C"),
            AlertKind::PacketLossIcmp,
        )
        .with_magnitude(0.20)
        .with_cause(FailureId(1));

        let mut a = StructuredAlert::from_raw(&raw1, AlertKind::PacketLossIcmp);
        let b = StructuredAlert::from_raw(&raw2, AlertKind::PacketLossIcmp);
        a.absorb(&b);
        assert_eq!(a.first_seen, SimTime::from_secs(4));
        assert_eq!(a.last_seen, SimTime::from_secs(10));
        assert_eq!(a.count, 2);
        assert_eq!(a.magnitude, 0.20);
        assert_eq!(a.cause, Some(FailureId(1)));
        assert_eq!(a.duration(), SimDuration::from_secs(6));
    }

    #[test]
    fn structural_defects_are_detected() {
        let ok = RawAlert::known(
            DataSource::Ping,
            SimTime::ZERO,
            loc("R|C"),
            AlertKind::PacketLossIcmp,
        );
        assert_eq!(ok.structural_defect(), None);
        assert_eq!(
            ok.clone().with_magnitude(f64::NAN).structural_defect(),
            Some(AlertDefect::NonFiniteMagnitude)
        );
        assert_eq!(
            ok.with_magnitude(f64::INFINITY).structural_defect(),
            Some(AlertDefect::NonFiniteMagnitude)
        );
        assert_eq!(
            RawAlert::syslog(SimTime::ZERO, loc("R|C"), "   ").structural_defect(),
            Some(AlertDefect::EmptySyslog)
        );
        assert_eq!(
            RawAlert::syslog(SimTime::ZERO, loc("R|C"), "BGP\u{0} down").structural_defect(),
            Some(AlertDefect::CorruptSyslogBytes)
        );
        assert_eq!(
            RawAlert::syslog(SimTime::ZERO, loc("R|C"), "truncated \u{fffd}").structural_defect(),
            Some(AlertDefect::CorruptSyslogBytes)
        );
        // Tabs are common in real syslog payloads and stay legal.
        assert_eq!(
            RawAlert::syslog(SimTime::ZERO, loc("R|C"), "iface\tdown").structural_defect(),
            None
        );
    }

    #[test]
    fn raw_alert_json_round_trip() {
        let a = RawAlert::known(
            DataSource::OutOfBand,
            SimTime::from_millis(123),
            loc("R|C|L|S|K|Device i"),
            AlertKind::DeviceInaccessible,
        );
        let json = serde_json::to_string(&a).unwrap();
        let back: RawAlert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // Optional fields are omitted from the wire format.
        assert!(!json.contains("peer"));
        assert!(!json.contains("cause"));
    }

    #[test]
    fn syslog_json_round_trip() {
        let a = RawAlert::syslog(SimTime::from_secs(1), loc("R|C|L|S|K|D"), "BGP peer down")
            .with_peer(loc("R|C|L|S|K|E"));
        let json = serde_json::to_string(&a).unwrap();
        let back: RawAlert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
