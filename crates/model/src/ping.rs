//! Sparse log of lossy ping samples — the raw material of the evaluator's
//! reachability matrix (Fig. 7).

use crate::location::LocationPath;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One lossy end-to-end measurement between two clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingSample {
    /// Probe time.
    pub t: SimTime,
    /// Source cluster path.
    pub src: LocationPath,
    /// Destination cluster path.
    pub dst: LocationPath,
    /// Measured loss ratio in `(0, 1]` (zero-loss samples are not logged).
    pub loss: f64,
}

/// Append-only log of lossy samples, time-ordered by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingLog {
    samples: Vec<PingSample>,
    /// Watermark: true iff `samples` is known to be nondecreasing in `t`.
    /// Incremental matrix maintenance relies on this to locate windows by
    /// binary search; a deserialized log makes no ordering claim.
    #[serde(skip)]
    sorted: bool,
    /// Bumped whenever existing sample *positions* may have shifted (a
    /// re-sorting `merge`). In-order appends keep the epoch: positional
    /// bookkeeping over a prefix stays valid while the epoch is unchanged.
    #[serde(skip)]
    epoch: u64,
}

impl Default for PingLog {
    fn default() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
            epoch: 0,
        }
    }
}

// Equality is over the recorded samples only: the `sorted` watermark is a
// derived cache, and a deserialized copy (watermark conservatively false)
// must still compare equal to its source.
impl PartialEq for PingLog {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl PingLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lossy sample; zero-loss samples are ignored to keep the
    /// log sparse (a healthy mesh probes millions of pairs per hour).
    pub fn record(&mut self, t: SimTime, src: LocationPath, dst: LocationPath, loss: f64) {
        if loss > 0.0 {
            if self.sorted {
                if let Some(last) = self.samples.last() {
                    if t < last.t {
                        self.sorted = false;
                    }
                }
            }
            self.samples.push(PingSample { t, src, dst, loss });
        }
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[PingSample] {
        &self.samples
    }

    /// True iff the samples are known to be nondecreasing in `t`. False is
    /// always safe: consumers fall back to a full scan.
    pub fn is_time_ordered(&self) -> bool {
        self.sorted
    }

    /// Monotone counter of position-shifting mutations. While two reads
    /// return the same epoch, the log was only appended to — indexes into
    /// `samples` observed at the first read still name the same samples.
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Samples within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &PingSample> {
        self.samples.iter().filter(move |s| from <= s.t && s.t < to)
    }

    /// Merges another log (used when running tools in isolation).
    pub fn merge(&mut self, other: PingLog) {
        self.samples.extend(other.samples);
        self.samples.sort_by_key(|s| s.t);
        self.sorted = true;
        // The stable sort may have moved existing samples (even between
        // two equal boundary timestamps), so positional observers must
        // start over.
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    #[test]
    fn zero_loss_is_not_recorded() {
        let mut log = PingLog::new();
        log.record(SimTime::ZERO, p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.0);
        assert!(log.samples().is_empty());
        log.record(SimTime::ZERO, p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.2);
        assert_eq!(log.samples().len(), 1);
    }

    #[test]
    fn window_filters_by_time() {
        let mut log = PingLog::new();
        for s in [10u64, 20, 30] {
            log.record(SimTime::from_secs(s), p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.5);
        }
        let hits: Vec<_> = log
            .window(SimTime::from_secs(15), SimTime::from_secs(30))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].t, SimTime::from_secs(20));
    }

    #[test]
    fn sorted_watermark_tracks_out_of_order_appends() {
        let mut log = PingLog::new();
        assert!(log.is_time_ordered());
        log.record(
            SimTime::from_secs(10),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        log.record(
            SimTime::from_secs(10),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        log.record(
            SimTime::from_secs(20),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        assert!(log.is_time_ordered());
        log.record(SimTime::from_secs(5), p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.5);
        assert!(!log.is_time_ordered());
        // merge() re-sorts, restoring the watermark.
        log.merge(PingLog::new());
        assert!(log.is_time_ordered());
    }

    #[test]
    fn epoch_tracks_position_shifting_mutations_only() {
        let mut log = PingLog::new();
        assert_eq!(log.mutation_epoch(), 0);
        // In-order appends never shift existing positions.
        log.record(
            SimTime::from_secs(10),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        log.record(
            SimTime::from_secs(20),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        assert_eq!(log.mutation_epoch(), 0);
        // A merge re-sorts, so positional bookkeeping must restart — even
        // when the merged-in log is empty.
        log.merge(PingLog::new());
        assert_eq!(log.mutation_epoch(), 1);
        let mut other = PingLog::new();
        other.record(
            SimTime::from_secs(15),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        log.merge(other);
        assert_eq!(log.mutation_epoch(), 2);
        assert_eq!(log.samples().len(), 3);
    }

    #[test]
    fn watermark_is_not_part_of_identity() {
        let mut a = PingLog::new();
        a.record(
            SimTime::from_secs(10),
            p("R|C|L|S|K1"),
            p("R|C|L|S|K2"),
            0.5,
        );
        let json = serde_json::to_string(&a).unwrap();
        let b: PingLog = serde_json::from_str(&json).unwrap();
        // Deserialization is conservative about ordering, but equality only
        // looks at the samples.
        assert!(!b.is_time_ordered());
        assert_eq!(a, b);
    }
}
