//! Sparse log of lossy ping samples — the raw material of the evaluator's
//! reachability matrix (Fig. 7).

use crate::location::LocationPath;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One lossy end-to-end measurement between two clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingSample {
    /// Probe time.
    pub t: SimTime,
    /// Source cluster path.
    pub src: LocationPath,
    /// Destination cluster path.
    pub dst: LocationPath,
    /// Measured loss ratio in `(0, 1]` (zero-loss samples are not logged).
    pub loss: f64,
}

/// Append-only log of lossy samples, time-ordered by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PingLog {
    samples: Vec<PingSample>,
}

impl PingLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lossy sample; zero-loss samples are ignored to keep the
    /// log sparse (a healthy mesh probes millions of pairs per hour).
    pub fn record(&mut self, t: SimTime, src: LocationPath, dst: LocationPath, loss: f64) {
        if loss > 0.0 {
            self.samples.push(PingSample { t, src, dst, loss });
        }
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[PingSample] {
        &self.samples
    }

    /// Samples within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &PingSample> {
        self.samples.iter().filter(move |s| from <= s.t && s.t < to)
    }

    /// Merges another log (used when running tools in isolation).
    pub fn merge(&mut self, other: PingLog) {
        self.samples.extend(other.samples);
        self.samples.sort_by_key(|s| s.t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    #[test]
    fn zero_loss_is_not_recorded() {
        let mut log = PingLog::new();
        log.record(SimTime::ZERO, p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.0);
        assert!(log.samples().is_empty());
        log.record(SimTime::ZERO, p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.2);
        assert_eq!(log.samples().len(), 1);
    }

    #[test]
    fn window_filters_by_time() {
        let mut log = PingLog::new();
        for s in [10u64, 20, 30] {
            log.record(SimTime::from_secs(s), p("R|C|L|S|K1"), p("R|C|L|S|K2"), 0.5);
        }
        let hits: Vec<_> = log
            .window(SimTime::from_secs(15), SimTime::from_secs(30))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].t, SimTime::from_secs(20));
    }
}
