//! Deterministic simulated time.
//!
//! Every timestamp in the reproduction is a [`SimTime`]: milliseconds since
//! the start of a scenario. The pipeline never reads a wall clock, so an
//! experiment is a pure function of its inputs and RNG seed. This mirrors the
//! paper's stream-processing design (§6.2) while keeping every test and
//! benchmark reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// Scenario start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Builds a time from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Milliseconds since scenario start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since scenario start (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later (late-arriving alerts are common, §4.2).
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two times.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Milliseconds in this span.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in this span (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the span by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000;
        let ms = self.0 % 1_000;
        let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 60_000 {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else {
            write!(f, "{:.1}min", self.0 as f64 / 60_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_mins(5).as_secs(), 300);
    }

    #[test]
    fn since_saturates_for_out_of_order_timestamps() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(40);
        assert_eq!(late.since(early), SimDuration::from_secs(30));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(2);
        assert_eq!(t2 - SimTime::from_secs(1), SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_661_042).to_string(), "01:01:01.042");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.5s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5min");
    }

    #[test]
    fn max_of_picks_later() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(a.max_of(b), b);
        assert_eq!(b.max_of(a), b);
    }

    #[test]
    fn serde_transparent() {
        let t = SimTime::from_millis(1234);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "1234");
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
