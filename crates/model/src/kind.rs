//! Alert types and their three-level classification (§4.2).
//!
//! SkyNet categorizes every alert into one of three classes:
//!
//! - **Failure alerts** — network behaviour is definitively abnormal: packet
//!   loss, bit flips, high transmission latency. Nearly all real failures
//!   are accompanied by these (Fig. 5d), so they carry the most weight in
//!   incident detection.
//! - **Abnormal alerts** — irregular behaviour that does not by itself imply
//!   a failure: jitter, sudden latency increase, abrupt traffic decrease.
//! - **Root-cause alerts** — failures of network *entities*: device or NIC
//!   failures, link outages, CRC errors, risky routing paths. These point
//!   operators at the repair action.
//!
//! [`AlertKind`] is the catalog of well-known types. For structured tools
//! (ping, SNMP, …) the kind is assigned manually by the emitting simulator;
//! for syslog the preprocessor derives it from FT-tree templates (§4.1).

use crate::source::DataSource;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three-level alert classification of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertClass {
    /// Network behaviour definitively abnormal (packet loss, bit flip,
    /// high latency). The most authoritative signal for incident detection.
    Failure,
    /// Irregular but not necessarily broken (jitter, traffic swings).
    Abnormal,
    /// A network entity failed (device, link, NIC, route); points at the
    /// mitigation action.
    RootCause,
}

impl fmt::Display for AlertClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlertClass::Failure => "failure",
            AlertClass::Abnormal => "abnormal",
            AlertClass::RootCause => "root-cause",
        };
        f.write_str(s)
    }
}

/// A well-known alert type.
///
/// The same kind may arrive from different sources (e.g. [`AlertKind::PortDown`]
/// from both syslog and SNMP); the *type identity* used for the locator's
/// type-distinct counting is the `(DataSource, AlertKind)` pair, matching the
/// per-source grouping of the incident reports in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlertKind {
    // ---- Failure class ---------------------------------------------------
    /// End-to-end ICMP packet loss between server pairs (ping mesh).
    PacketLossIcmp,
    /// Packet loss localized to a source server ("End to end Source").
    PacketLossSource,
    /// TCP-probe packet loss ("End to end TCP").
    PacketLossTcp,
    /// Payload bit flip detected on a path.
    PacketBitFlip,
    /// Packet transmission latency above the failure threshold.
    HighLatency,
    /// Packet loss measured by sFlow counters.
    SflowPacketLoss,
    /// INT test-flow input/output rate mismatch (in-band packet loss).
    IntPacketLoss,
    /// Internet address unreachable from DC servers.
    InternetUnreachable,

    // ---- Abnormal class --------------------------------------------------
    /// Device inaccessible over the out-of-band channel.
    DeviceInaccessible,
    /// Traffic enters a device but never leaves (blackhole symptom log).
    TrafficBlackhole,
    /// Link repeatedly going up and down.
    LinkFlapping,
    /// Port repeatedly going up and down.
    PortFlapping,
    /// BGP peer session lost.
    BgpPeerDown,
    /// Latency jitter above the abnormal threshold.
    LatencyJitter,
    /// Abrupt decrease of traffic through an interface.
    TrafficDrop,
    /// Abrupt increase of traffic through an interface.
    TrafficSurge,
    /// Device clock out of PTP synchronization.
    PtpDesync,
    /// CPU utilization above threshold.
    HighCpu,
    /// Memory utilization above threshold.
    HighMemory,
    /// A syslog message that matched no FT-tree template. Treated as
    /// abnormal: present in the report, never decisive.
    Unclassified,

    // ---- Root-cause class ------------------------------------------------
    /// BGP session jitter on a link (repeated flaps of the routing session).
    BgpLinkJitter,
    /// Device hardware error logged (ASIC, linecard, fan, power).
    HardwareError,
    /// Device process out of memory.
    OutOfMemory,
    /// Device software error (crash, assertion, protocol bug).
    SoftwareError,
    /// Physical port down.
    PortDown,
    /// Logical link down (all circuits of the set lost).
    LinkDown,
    /// Interface congestion: sustained utilization at capacity with drops.
    TrafficCongestion,
    /// Whole device down / power lost.
    DeviceDown,
    /// NIC failure on a connected server or device.
    NicFailure,
    /// CRC errors on a circuit (corrupting optics/cable).
    CrcError,
    /// Route hijack observed in the control plane.
    RouteHijack,
    /// Route leak observed in the control plane.
    RouteLeak,
    /// Loss of a default or aggregate route.
    DefaultRouteLoss,
    /// A network modification (maintenance/config push) reported failure.
    ModificationFailure,
    /// Patrol inspection command output flagged anomalous.
    PatrolAnomaly,
}

impl AlertKind {
    /// Every catalogued kind.
    pub const ALL: [AlertKind; 35] = [
        AlertKind::PacketLossIcmp,
        AlertKind::PacketLossSource,
        AlertKind::PacketLossTcp,
        AlertKind::PacketBitFlip,
        AlertKind::HighLatency,
        AlertKind::SflowPacketLoss,
        AlertKind::IntPacketLoss,
        AlertKind::InternetUnreachable,
        AlertKind::DeviceInaccessible,
        AlertKind::TrafficBlackhole,
        AlertKind::LinkFlapping,
        AlertKind::PortFlapping,
        AlertKind::BgpPeerDown,
        AlertKind::LatencyJitter,
        AlertKind::TrafficDrop,
        AlertKind::TrafficSurge,
        AlertKind::PtpDesync,
        AlertKind::HighCpu,
        AlertKind::HighMemory,
        AlertKind::Unclassified,
        AlertKind::BgpLinkJitter,
        AlertKind::HardwareError,
        AlertKind::OutOfMemory,
        AlertKind::SoftwareError,
        AlertKind::PortDown,
        AlertKind::LinkDown,
        AlertKind::TrafficCongestion,
        AlertKind::DeviceDown,
        AlertKind::NicFailure,
        AlertKind::CrcError,
        AlertKind::RouteHijack,
        AlertKind::RouteLeak,
        AlertKind::DefaultRouteLoss,
        AlertKind::ModificationFailure,
        AlertKind::PatrolAnomaly,
    ];

    /// The class this kind belongs to.
    pub const fn class(self) -> AlertClass {
        use AlertKind::*;
        match self {
            PacketLossIcmp | PacketLossSource | PacketLossTcp | PacketBitFlip | HighLatency
            | SflowPacketLoss | IntPacketLoss | InternetUnreachable => AlertClass::Failure,

            DeviceInaccessible | TrafficBlackhole | LinkFlapping | PortFlapping | BgpPeerDown
            | LatencyJitter | TrafficDrop | TrafficSurge | PtpDesync | HighCpu | HighMemory
            | Unclassified => AlertClass::Abnormal,

            BgpLinkJitter | HardwareError | OutOfMemory | SoftwareError | PortDown | LinkDown
            | TrafficCongestion | DeviceDown | NicFailure | CrcError | RouteHijack | RouteLeak
            | DefaultRouteLoss | ModificationFailure | PatrolAnomaly => AlertClass::RootCause,
        }
    }

    /// Human-readable name as shown in the incident reports of Fig. 6.
    pub const fn name(self) -> &'static str {
        use AlertKind::*;
        match self {
            PacketLossIcmp => "end-to-end ICMP loss",
            PacketLossSource => "end-to-end source loss",
            PacketLossTcp => "end-to-end TCP loss",
            PacketBitFlip => "packet bit flip",
            HighLatency => "high latency",
            SflowPacketLoss => "sFlow packet loss",
            IntPacketLoss => "INT packet loss",
            InternetUnreachable => "internet unreachable",
            DeviceInaccessible => "inaccessible",
            TrafficBlackhole => "traffic blackhole",
            LinkFlapping => "link flapping",
            PortFlapping => "port flapping",
            BgpPeerDown => "BGP peer down",
            LatencyJitter => "latency jitter",
            TrafficDrop => "traffic drop",
            TrafficSurge => "traffic surge",
            PtpDesync => "PTP desync",
            HighCpu => "high CPU",
            HighMemory => "high memory",
            Unclassified => "unclassified",
            BgpLinkJitter => "BGP link jitter",
            HardwareError => "hardware error",
            OutOfMemory => "out of memory",
            SoftwareError => "software error",
            PortDown => "port down",
            LinkDown => "link down",
            TrafficCongestion => "traffic congestion",
            DeviceDown => "device down",
            NicFailure => "NIC failure",
            CrcError => "CRC error",
            RouteHijack => "route hijack",
            RouteLeak => "route leak",
            DefaultRouteLoss => "default route loss",
            ModificationFailure => "modification failure",
            PatrolAnomaly => "patrol anomaly",
        }
    }

    /// All kinds belonging to a class.
    pub fn of_class(class: AlertClass) -> impl Iterator<Item = AlertKind> {
        Self::ALL.into_iter().filter(move |k| k.class() == class)
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-qualified alert type: source plus kind. This is the identity
/// under which the locator counts "alerts of the same type once" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AlertType {
    /// The monitoring tool that produced the alert.
    pub source: DataSource,
    /// The normalized alert kind.
    pub kind: AlertKind,
}

impl AlertType {
    /// Convenience constructor.
    pub const fn new(source: DataSource, kind: AlertKind) -> Self {
        AlertType { source, kind }
    }

    /// The class of the underlying kind.
    pub const fn class(self) -> AlertClass {
        self.kind.class()
    }
}

impl fmt::Display for AlertType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}][{}]", self.source, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_unique() {
        let mut names: Vec<_> = AlertKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate kind names");
        assert_eq!(AlertKind::ALL.len(), 35);
    }

    #[test]
    fn class_partition() {
        let f = AlertKind::of_class(AlertClass::Failure).count();
        let a = AlertKind::of_class(AlertClass::Abnormal).count();
        let r = AlertKind::of_class(AlertClass::RootCause).count();
        assert_eq!(f + a + r, AlertKind::ALL.len());
        assert_eq!(f, 8);
        assert_eq!(a, 12);
        assert_eq!(r, 15);
    }

    #[test]
    fn figure6_examples_have_expected_classes() {
        // Incident 1 of Fig. 6.
        assert_eq!(AlertKind::PacketLossIcmp.class(), AlertClass::Failure);
        assert_eq!(AlertKind::DeviceInaccessible.class(), AlertClass::Abnormal);
        assert_eq!(AlertKind::TrafficBlackhole.class(), AlertClass::Abnormal);
        assert_eq!(AlertKind::BgpPeerDown.class(), AlertClass::Abnormal);
        assert_eq!(AlertKind::BgpLinkJitter.class(), AlertClass::RootCause);
        assert_eq!(AlertKind::HardwareError.class(), AlertClass::RootCause);
        assert_eq!(AlertKind::TrafficCongestion.class(), AlertClass::RootCause);
        // Incident 2 of Fig. 6.
        assert_eq!(AlertKind::PortDown.class(), AlertClass::RootCause);
        assert_eq!(AlertKind::SoftwareError.class(), AlertClass::RootCause);
    }

    #[test]
    fn alert_type_display_matches_figure6_format() {
        let t = AlertType::new(DataSource::Ping, AlertKind::PacketLossIcmp);
        assert_eq!(t.to_string(), "[ping][end-to-end ICMP loss]");
    }

    #[test]
    fn same_kind_different_source_is_a_different_type() {
        let syslog = AlertType::new(DataSource::Syslog, AlertKind::PortDown);
        let snmp = AlertType::new(DataSource::Snmp, AlertKind::PortDown);
        assert_ne!(syslog, snmp);
        assert_eq!(syslog.class(), snmp.class());
    }

    #[test]
    fn serde_round_trip() {
        for k in AlertKind::ALL {
            let json = serde_json::to_string(&k).unwrap();
            let back: AlertKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k);
        }
    }
}
