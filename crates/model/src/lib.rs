//! # skynet-model
//!
//! Core data model shared by every crate of the SkyNet reproduction.
//!
//! The paper's central extensibility claim (§4.1) is that all monitoring
//! tools are integrated through a *uniform input format*: every alert is
//! reduced to a `(timestamp, location, type)` triple before any analysis.
//! This crate defines that boundary:
//!
//! - [`time`] — deterministic simulated time ([`SimTime`], [`SimDuration`]).
//! - [`location`] — the cloud location hierarchy of Fig. 5b
//!   (Region → City → Logic site → Site → Cluster → Device) as
//!   [`LocationPath`] values.
//! - [`source`] — the twelve monitoring data sources of Table 2
//!   ([`DataSource`]) with their paper-reported failure coverage (Fig. 3).
//! - [`alert`] — [`RawAlert`] (what tools emit, serde/JSON-lines friendly)
//!   and [`StructuredAlert`] (what the preprocessor produces).
//! - [`kind`] — the catalog of well-known alert types ([`AlertKind`]) and
//!   their three-level classification ([`AlertClass`]: failure / abnormal /
//!   root-cause, §4.2).
//! - [`ids`] — strongly-typed identifiers for devices, links, circuit sets,
//!   customers and incidents.
//! - [`intern`] — dense [`LocId`] handles for interned locations
//!   ([`LocationInterner`]): paths are parsed once at the boundary and the
//!   pipeline's hot paths speak `Copy` ids with `O(1)` hierarchy queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod ids;
pub mod intern;
pub mod kind;
pub mod location;
pub mod ping;
pub mod source;
pub mod time;

pub use alert::{AlertBody, AlertDefect, RawAlert, StructuredAlert};
pub use ids::{CircuitSetId, CustomerId, DeviceId, FailureId, IncidentId, LinkId, TraceId};
pub use intern::{LocId, LocationInterner};
pub use kind::{AlertClass, AlertKind, AlertType};
pub use location::{LocationLevel, LocationPath};
pub use ping::{PingLog, PingSample};
pub use source::DataSource;
pub use time::{SimDuration, SimTime};
