//! Tokenization and variable-word scrubbing.
//!
//! The paper removes "variable words, such as addresses, interfaces, and
//! numbers … using predefined regular expressions". We implement the same
//! detector set as explicit character-class matchers (no regex engine):
//! numbers, hex strings, IPv4/IPv6 addresses, MAC addresses, interface
//! names (`TenGigE0/1/0/25`, `Eth1/3`), timestamps and mixed
//! identifier-digit blobs.

/// Splits a raw syslog line into word tokens. Separators are whitespace and
/// the punctuation syslog renderers wrap fields with; `/`, `:`, `.` and `-`
/// are *kept inside* tokens so interface names, addresses and timestamps
/// stay whole for the variable detectors.
pub fn tokenize(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| {
        c.is_whitespace() || matches!(c, ',' | ';' | '(' | ')' | '[' | ']' | '{' | '}' | '"' | '=')
    })
    .map(|w| w.trim_matches(|c: char| matches!(c, '.' | ':' | '!' | '?' | '\'' | '<' | '>')))
    .filter(|w| !w.is_empty())
}

/// True when every character is an ASCII digit (optionally signed).
fn is_number(word: &str) -> bool {
    let w = word.strip_prefix(['+', '-']).unwrap_or(word);
    !w.is_empty() && w.bytes().all(|b| b.is_ascii_digit())
}

/// True for decimal/dotted numerics: `3.14`, `10.0.0.1`, `99%`.
fn is_numeric_blob(word: &str) -> bool {
    let w = word.strip_suffix(['%', 's']).unwrap_or(word);
    let mut saw_digit = false;
    for b in w.bytes() {
        match b {
            b'0'..=b'9' => saw_digit = true,
            b'.' | b':' | b'/' | b'-' | b'+' => {}
            _ => return false,
        }
    }
    saw_digit
}

/// True for `0x`-prefixed or long bare hex strings.
fn is_hex(word: &str) -> bool {
    let w = word.strip_prefix("0x").or_else(|| word.strip_prefix("0X"));
    match w {
        Some(rest) => !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_hexdigit()),
        // Bare hex only counts when long enough to be unambiguous and
        // containing at least one digit ("deadbeef" stays a word).
        None => {
            word.len() >= 8
                && word.bytes().all(|b| b.is_ascii_hexdigit())
                && word.bytes().any(|b| b.is_ascii_digit())
        }
    }
}

/// True for MAC-address-shaped words: six hex pairs with `:`/`-`.
/// Deliberately allocation-free — this runs for every token of every line
/// on the classify hot path.
fn is_mac(word: &str) -> bool {
    let sep = if word.contains(':') { ':' } else { '-' };
    let mut parts = 0usize;
    for p in word.split(sep) {
        parts += 1;
        if parts > 6 || p.len() != 2 || !p.bytes().all(|b| b.is_ascii_hexdigit()) {
            return false;
        }
    }
    parts == 6
}

/// True for interface-name-shaped words: an alphabetic prefix followed by
/// digits with `/`-separated indices (`TenGigE0/1/0/25`, `Eth1/3`,
/// `HundredGigE0/0/0/1.100`).
fn is_interface(word: &str) -> bool {
    let alpha_len = word.bytes().take_while(|b| b.is_ascii_alphabetic()).count();
    if alpha_len == 0 || alpha_len == word.len() {
        return false;
    }
    let rest = &word[alpha_len..];
    rest.contains('/')
        && rest
            .bytes()
            .all(|b| b.is_ascii_digit() || matches!(b, b'/' | b'.' | b':'))
}

/// True for identifier-plus-digits blobs that vary per device or session
/// (`session-14988`, `VLAN204`): an alphabetic stem with a numeric tail of
/// two or more digits.
fn is_id_blob(word: &str) -> bool {
    let alpha_len = word
        .bytes()
        .take_while(|b| b.is_ascii_alphabetic() || *b == b'-' || *b == b'_')
        .count();
    if alpha_len == 0 {
        return false;
    }
    let tail = &word[alpha_len..];
    tail.len() >= 2 && tail.bytes().all(|b| b.is_ascii_digit())
}

/// True when the word is a *variable* that must be scrubbed before
/// template mining.
pub fn is_variable(word: &str) -> bool {
    is_number(word)
        || is_numeric_blob(word)
        || is_hex(word)
        || is_mac(word)
        || is_interface(word)
        || is_id_blob(word)
}

/// Tokenizes a line and keeps only the constant (template) words,
/// lowercased for case-insensitive matching.
pub fn constant_words(line: &str) -> Vec<String> {
    tokenize(line)
        .filter(|w| !is_variable(w))
        .map(str::to_ascii_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_strips_punctuation() {
        let toks: Vec<&str> =
            tokenize("LINK-3-UPDOWN: Interface TenGigE0/1/0/25, changed state").collect();
        assert_eq!(
            toks,
            vec![
                "LINK-3-UPDOWN",
                "Interface",
                "TenGigE0/1/0/25",
                "changed",
                "state"
            ]
        );
    }

    #[test]
    fn numbers_and_numerics_are_variables() {
        for w in [
            "42",
            "-7",
            "+13",
            "3.14",
            "99%",
            "10.0.0.1",
            "2024-07-02",
            "11:45:14.464",
        ] {
            assert!(is_variable(w), "{w} should be a variable");
        }
    }

    #[test]
    fn hex_and_mac_are_variables() {
        for w in [
            "0xDEAD",
            "0x1f",
            "a1b2c3d4e5",
            "00:1a:2b:3c:4d:5e",
            "00-1A-2B-3C-4D-5E",
        ] {
            assert!(is_variable(w), "{w} should be a variable");
        }
        // Pure words that happen to be hex letters stay.
        assert!(!is_variable("deadbeef".to_uppercase().as_str()));
        assert!(!is_variable("cafe"));
    }

    #[test]
    fn interfaces_and_id_blobs_are_variables() {
        for w in [
            "TenGigE0/1/0/25",
            "Eth1/3",
            "HundredGigE0/0/0/1.100",
            "VLAN204",
            "session-14988",
        ] {
            assert!(is_variable(w), "{w} should be a variable");
        }
    }

    #[test]
    fn plain_words_are_constants() {
        for w in [
            "Interface",
            "down",
            "BGP",
            "peer",
            "state",
            "error",
            "OSPF6",
        ] {
            // OSPF6 has a 1-digit tail: kept (protocol names end in one digit).
            assert!(!is_variable(w), "{w} should be constant");
        }
    }

    #[test]
    fn constant_words_lowercase_and_scrub() {
        let words = constant_words("[R4] Packet loss to H3 rate 15.49% on TenGigE0/1/0/25");
        assert_eq!(
            words,
            vec!["r4", "packet", "loss", "to", "h3", "rate", "on"]
        );
        // "R4"/"H3" have 1-digit tails — kept as constants (device names of
        // the paper's figures); "15.49%" and the interface are scrubbed.
    }

    #[test]
    fn empty_and_all_variable_lines() {
        assert!(constant_words("").is_empty());
        assert!(constant_words("42 0xFF 10.0.0.1").is_empty());
    }
}
