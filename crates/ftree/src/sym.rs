//! Symbol interning for the FT-tree match hot path.
//!
//! `FtTree::match_message` normalizes every probe line into a fresh
//! `Vec<String>` and walks `HashMap<String, usize>` children — fine for
//! mining, ruinous at flood rate. This module interns the tree's constant
//! vocabulary into dense `u32` symbols at build time (the same move PR 2
//! made for locations with `LocId`): matching then works on symbols held in
//! caller-owned scratch buffers, so the steady-state match path performs no
//! heap allocation and unknown words short-circuit at one table lookup.
//!
//! The crucial invariant: symbols are assigned in the tree's canonical word
//! order — descending corpus frequency, ties broken alphabetically — so
//! sorting symbols *numerically* reproduces exactly the ordering
//! `order_words` computes over `String`s. That is what lets the symbol
//! matcher stay byte-identical to the String-keyed oracle.

use std::collections::HashMap;

/// Dense handle of one constant word in a mined tree's vocabulary.
///
/// Ids are assigned in (corpus frequency descending, word ascending)
/// order, so `Sym`'s derived `Ord` reproduces the comparison
/// `order_words` performs over the underlying `String`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// The interned vocabulary of a mined tree: every constant word of the
/// training corpus (including words later pruned from the tree — they
/// still occupy slots in the depth-truncation window), in canonical order.
#[derive(Debug, Clone, Default)]
pub struct WordTable {
    words: Vec<String>,
    index: HashMap<String, Sym>,
}

impl WordTable {
    /// Builds the table from the corpus frequency map, assigning ids in
    /// (frequency descending, word ascending) order.
    pub(crate) fn from_freq(freq: &HashMap<String, u32>) -> Self {
        let mut words: Vec<String> = freq.keys().cloned().collect();
        words.sort_by(|a, b| {
            let fa = freq.get(a.as_str()).copied().unwrap_or(0);
            let fb = freq.get(b.as_str()).copied().unwrap_or(0);
            fb.cmp(&fa).then_with(|| a.cmp(b))
        });
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), Sym(i as u32)))
            .collect();
        WordTable { words, index }
    }

    /// Number of interned words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Looks up a lowercased constant word. `None` means the tree has never
    /// seen the word — the match path skips it without touching the tree.
    pub fn sym(&self, word: &str) -> Option<Sym> {
        self.index.get(word).copied()
    }

    /// The word behind a symbol.
    pub fn word(&self, sym: Sym) -> &str {
        &self.words[sym.0 as usize]
    }
}

/// Reusable buffers for [`FtTree::match_message_with`]: one lowercase
/// token buffer plus the line's known-symbol sequence. Once the buffers
/// have grown to the longest line seen, matching allocates nothing.
///
/// [`FtTree::match_message_with`]: crate::FtTree::match_message_with
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    pub(crate) lower: String,
    pub(crate) syms: Vec<Sym>,
}

impl MatchScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// The symbol-compiled tree: every node's children flattened into one
/// arena of `(Sym, child)` edges, sorted per node for binary-search
/// lookup. Rebuilt from the persistent fields on deserialization.
#[derive(Debug, Clone, Default)]
pub(crate) struct Compiled {
    pub(crate) table: WordTable,
    /// Prefix offsets into `edges`, one per node plus a final sentinel.
    pub(crate) edge_start: Vec<u32>,
    /// Per-node `(symbol, child index)` edges, sorted by symbol.
    pub(crate) edges: Vec<(Sym, u32)>,
}

impl Compiled {
    /// The child of `node` along `sym`, if that edge exists.
    #[inline]
    pub(crate) fn child(&self, node: u32, sym: Sym) -> Option<u32> {
        let lo = self.edge_start[node as usize] as usize;
        let hi = self.edge_start[node as usize + 1] as usize;
        let slice = &self.edges[lo..hi];
        slice
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|k| slice[k].1)
    }
}
