//! # skynet-ftree
//!
//! A reimplementation of **FT-tree** syslog template mining (Zhang et al.,
//! *Syslog processing for switch failure diagnosis and prediction in
//! datacenter networks*, IWQoS 2017) — the technique SkyNet's preprocessor
//! uses to turn free-text syslog into alert types (§4.1):
//!
//! 1. Gather command-line outputs from all devices and split them into
//!    words ([`scrub::tokenize`]).
//! 2. Remove *variable* words — addresses, interface names, numbers — with
//!    a fixed set of detectors ([`scrub::is_variable`]; the paper uses
//!    predefined regular expressions, we use equivalent hand-rolled
//!    character-class matchers).
//! 3. Order each message's remaining words by descending corpus frequency
//!    and insert the sequence into a prefix tree; prune subtrees whose
//!    support falls below a threshold. Root-to-node paths of the pruned
//!    tree are the templates ([`FtTree`]).
//! 4. Classify a new message by walking the tree with its frequency-ordered
//!    constant words; the deepest matched template is its type
//!    ([`FtTree::match_message`]).
//!
//! Production callers classify through [`FtTree::match_message_with`], the
//! symbol-interned hot path: the tree's constant vocabulary is interned
//! into dense [`Sym`] ids at build time ([`WordTable`]), children live in a
//! flat symbol-sorted edge arena, and tokenization reuses a caller-owned
//! [`MatchScratch`], so matching an already-warmed line performs no heap
//! allocation. [`FtTree::match_message`] keeps the String-keyed walk as
//! the differential oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scrub;
pub mod sym;
pub mod tree;

pub use sym::{MatchScratch, Sym, WordTable};
pub use tree::{FtTree, FtTreeBuilder, Template, TemplateId};
