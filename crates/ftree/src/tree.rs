//! The frequency-ordered template tree.

use crate::scrub::constant_words;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a mined template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TemplateId(pub u32);

/// A mined syslog template: the constant words of a message family, in
/// global-frequency order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Identifier (dense).
    pub id: TemplateId,
    /// Constant words from root to this template's node.
    pub words: Vec<String>,
    /// How many corpus messages passed through this node.
    pub support: u32,
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] x{}",
            self.id.0,
            self.words.join(" "),
            self.support
        )
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    children: HashMap<String, usize>,
    support: u32,
    template: Option<TemplateId>,
}

impl Node {
    fn new() -> Self {
        Node {
            children: HashMap::new(),
            support: 0,
            template: None,
        }
    }
}

/// Accumulates a syslog corpus and mines an [`FtTree`].
#[derive(Debug, Clone)]
pub struct FtTreeBuilder {
    min_support: u32,
    max_depth: usize,
    corpus: Vec<Vec<String>>,
}

impl Default for FtTreeBuilder {
    fn default() -> Self {
        FtTreeBuilder::new(2, 8)
    }
}

impl FtTreeBuilder {
    /// `min_support`: messages required for a tree path to survive pruning.
    /// `max_depth`: maximum template length in words (over-specific tails
    /// are cut; the FT-tree paper prunes by per-level frequency, a depth
    /// cap is the standard simplification).
    pub fn new(min_support: u32, max_depth: usize) -> Self {
        assert!(min_support >= 1);
        assert!(max_depth >= 1);
        FtTreeBuilder {
            min_support,
            max_depth,
            corpus: Vec::new(),
        }
    }

    /// Adds one raw syslog line to the corpus.
    pub fn add_line(&mut self, line: &str) {
        let words = constant_words(line);
        if !words.is_empty() {
            self.corpus.push(words);
        }
    }

    /// Number of usable corpus lines so far.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when no usable line was added.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Mines the tree: counts global word frequencies, inserts each
    /// message's frequency-ordered constant words, prunes rare paths and
    /// assigns template ids.
    pub fn build(self) -> FtTree {
        let FtTreeBuilder {
            min_support,
            max_depth,
            corpus,
        } = self;

        let mut freq: HashMap<String, u32> = HashMap::new();
        for words in &corpus {
            for w in words {
                *freq.entry(w.clone()).or_insert(0) += 1;
            }
        }

        let mut nodes = vec![Node::new()]; // 0 = root
        for words in &corpus {
            let ordered = order_words(words, &freq, max_depth);
            let mut cur = 0usize;
            nodes[cur].support += 1;
            for w in ordered {
                let next = match nodes[cur].children.get(&w) {
                    Some(&i) => i,
                    None => {
                        let i = nodes.len();
                        nodes.push(Node::new());
                        nodes[cur].children.insert(w, i);
                        i
                    }
                };
                nodes[next].support += 1;
                cur = next;
            }
        }

        // Prune: drop children below min_support (whole subtrees go with
        // them — support is monotone down the tree).
        for i in 0..nodes.len() {
            let pruned: Vec<String> = nodes[i]
                .children
                .iter()
                .filter(|&(_, &c)| nodes[c].support < min_support)
                .map(|(w, _)| w.clone())
                .collect();
            for w in pruned {
                nodes[i].children.remove(&w);
            }
        }

        // Assign template ids to every surviving non-root node, in a
        // deterministic order (BFS with sorted child words).
        let mut templates = Vec::new();
        let mut queue: Vec<(usize, Vec<String>)> = vec![(0, Vec::new())];
        while let Some((n, path)) = queue.pop() {
            let mut kids: Vec<(&String, &usize)> = nodes[n].children.iter().collect();
            kids.sort_by(|a, b| b.0.cmp(a.0)); // reverse: stack pops in order
            let kid_indices: Vec<(String, usize)> =
                kids.into_iter().map(|(w, &i)| (w.clone(), i)).collect();
            for (w, i) in kid_indices {
                let mut p = path.clone();
                p.push(w);
                let id = TemplateId(templates.len() as u32);
                nodes[i].template = Some(id);
                templates.push(Template {
                    id,
                    words: p.clone(),
                    support: nodes[i].support,
                });
                queue.push((i, p));
            }
        }

        FtTree {
            nodes,
            freq,
            templates,
            max_depth,
        }
    }
}

/// Orders a message's constant words by descending corpus frequency (ties
/// broken alphabetically), removes duplicates and truncates to `max_depth`.
fn order_words(words: &[String], freq: &HashMap<String, u32>, max_depth: usize) -> Vec<String> {
    let mut uniq: Vec<&String> = Vec::new();
    for w in words {
        if !uniq.contains(&w) {
            uniq.push(w);
        }
    }
    uniq.sort_by(|a, b| {
        let fa = freq.get(*a).copied().unwrap_or(0);
        let fb = freq.get(*b).copied().unwrap_or(0);
        fb.cmp(&fa).then_with(|| a.cmp(b))
    });
    uniq.into_iter().take(max_depth).cloned().collect()
}

/// A mined, immutable FT-tree usable for classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtTree {
    nodes: Vec<Node>,
    freq: HashMap<String, u32>,
    templates: Vec<Template>,
    max_depth: usize,
}

impl FtTree {
    /// All mined templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Looks up a template.
    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.0 as usize]
    }

    /// Classifies a raw syslog line: walks the tree with the line's
    /// frequency-ordered constant words (skipping words the tree never
    /// kept) and returns the deepest template reached.
    pub fn match_message(&self, line: &str) -> Option<TemplateId> {
        let words = constant_words(line);
        let ordered = order_words(&words, &self.freq, self.max_depth);
        let mut cur = 0usize;
        let mut best = None;
        for w in &ordered {
            match self.nodes[cur].children.get(w) {
                Some(&next) => {
                    cur = next;
                    if let Some(id) = self.nodes[cur].template {
                        best = Some(id);
                    }
                }
                // Unknown or pruned word: skip it, keep walking with the
                // remaining words from the current node.
                None => continue,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_tree() -> FtTree {
        let mut b = FtTreeBuilder::new(2, 8);
        // Two strong families plus a singleton that must be pruned.
        for i in 0..20 {
            b.add_line(&format!("Interface TenGigE0/1/0/{i} changed state to down"));
        }
        for i in 0..15 {
            b.add_line(&format!("BGP peer 10.0.0.{i} session went down"));
        }
        b.add_line("totally unique cosmic ray message");
        b.build()
    }

    #[test]
    fn families_become_templates_and_singletons_are_pruned() {
        let t = corpus_tree();
        assert!(!t.templates().is_empty());
        let all_words: Vec<String> = t
            .templates()
            .iter()
            .flat_map(|tp| tp.words.clone())
            .collect();
        assert!(all_words.contains(&"interface".to_string()));
        assert!(all_words.contains(&"bgp".to_string()));
        assert!(
            !all_words.contains(&"cosmic".to_string()),
            "singleton must be pruned"
        );
    }

    #[test]
    fn corpus_messages_match_their_family() {
        let t = corpus_tree();
        let a = t
            .match_message("Interface TenGigE0/9/9/99 changed state to down")
            .expect("interface family must match");
        let b = t
            .match_message("BGP peer 192.168.1.1 session went down")
            .expect("bgp family must match");
        assert_ne!(a, b, "different families get different templates");
        // Same family, different variables → same template.
        let a2 = t
            .match_message("Interface Eth7/7 changed state to down")
            .unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn unknown_message_matches_nothing_or_shallowly() {
        let t = corpus_tree();
        assert_eq!(t.match_message("quantum flux capacitor overflow"), None);
    }

    #[test]
    fn shared_words_produce_hierarchical_templates() {
        let t = corpus_tree();
        // "down" appears in both families (35 lines) — frequency ordering
        // puts it near the root, so both family templates descend from it.
        let down_template = t
            .templates()
            .iter()
            .find(|tp| tp.words == vec!["down".to_string()]);
        assert!(
            down_template.is_some(),
            "most frequent shared word becomes the shallowest template; got {:?}",
            t.templates()
        );
        assert_eq!(down_template.unwrap().support, 35);
    }

    #[test]
    fn build_is_deterministic() {
        let ta = corpus_tree();
        let tb = corpus_tree();
        assert_eq!(ta.templates(), tb.templates());
    }

    #[test]
    fn max_depth_caps_template_length() {
        let mut b = FtTreeBuilder::new(1, 3);
        for _ in 0..3 {
            b.add_line("alpha beta gamma delta epsilon zeta");
        }
        let t = b.build();
        assert!(t.templates().iter().all(|tp| tp.words.len() <= 3));
    }

    #[test]
    fn empty_corpus_builds_empty_tree() {
        let t = FtTreeBuilder::default().build();
        assert!(t.templates().is_empty());
        assert_eq!(t.match_message("anything at all"), None);
    }

    #[test]
    fn duplicate_words_in_one_message_count_once_per_path() {
        let mut b = FtTreeBuilder::new(1, 8);
        for _ in 0..2 {
            b.add_line("flap flap flap port state flap");
        }
        let t = b.build();
        for tp in t.templates() {
            let mut w = tp.words.clone();
            w.sort();
            let before = w.len();
            w.dedup();
            assert_eq!(w.len(), before, "template has duplicate words: {tp}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn word_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "interface",
            "bgp",
            "peer",
            "down",
            "up",
            "state",
            "error",
            "link",
            "port",
            "flap",
            "session",
            "memory",
            "crc",
        ])
        .prop_map(str::to_string)
    }

    fn line_strategy() -> impl Strategy<Value = String> {
        (
            prop::collection::vec(word_strategy(), 1..6),
            prop::collection::vec(0u32..1000, 0..3),
        )
            .prop_map(|(words, nums)| {
                let mut parts = words;
                for n in nums {
                    parts.push(n.to_string());
                }
                parts.join(" ")
            })
    }

    proptest! {
        /// Every line of a min_support=1 corpus must classify to some
        /// template, and re-matching is deterministic.
        #[test]
        fn corpus_lines_always_match_with_support_one(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for l in &lines {
                let m1 = t.match_message(l);
                prop_assert!(m1.is_some(), "corpus line failed to match: {l}");
                prop_assert_eq!(m1, t.match_message(l));
            }
        }

        /// Template supports never exceed the corpus size and are monotone
        /// along prefix containment.
        #[test]
        fn supports_are_bounded_and_monotone(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let n = lines.len() as u32;
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for tp in t.templates() {
                prop_assert!(tp.support <= n);
                for other in t.templates() {
                    // If `other` extends `tp` by one word, its support is ≤.
                    if other.words.len() == tp.words.len() + 1
                        && other.words[..tp.words.len()] == tp.words[..]
                    {
                        prop_assert!(other.support <= tp.support);
                    }
                }
            }
        }

        /// Variable scrubbing: templates never contain pure numbers.
        #[test]
        fn templates_contain_no_numbers(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for tp in t.templates() {
                for w in &tp.words {
                    prop_assert!(!w.bytes().all(|c| c.is_ascii_digit()));
                }
            }
        }
    }
}
