//! The frequency-ordered template tree.

use crate::scrub::{constant_words, is_variable, tokenize};
use crate::sym::{Compiled, MatchScratch, Sym};
use crate::WordTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a mined template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TemplateId(pub u32);

/// A mined syslog template: the constant words of a message family, in
/// global-frequency order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Identifier (dense).
    pub id: TemplateId,
    /// Constant words from root to this template's node.
    pub words: Vec<String>,
    /// How many corpus messages passed through this node.
    pub support: u32,
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] x{}",
            self.id.0,
            self.words.join(" "),
            self.support
        )
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    children: HashMap<String, usize>,
    support: u32,
    template: Option<TemplateId>,
}

impl Node {
    fn new() -> Self {
        Node {
            children: HashMap::new(),
            support: 0,
            template: None,
        }
    }
}

/// Accumulates a syslog corpus and mines an [`FtTree`].
#[derive(Debug, Clone)]
pub struct FtTreeBuilder {
    min_support: u32,
    max_depth: usize,
    corpus: Vec<Vec<String>>,
}

impl Default for FtTreeBuilder {
    fn default() -> Self {
        FtTreeBuilder::new(2, 8)
    }
}

impl FtTreeBuilder {
    /// `min_support`: messages required for a tree path to survive pruning.
    /// `max_depth`: maximum template length in words (over-specific tails
    /// are cut; the FT-tree paper prunes by per-level frequency, a depth
    /// cap is the standard simplification).
    pub fn new(min_support: u32, max_depth: usize) -> Self {
        assert!(min_support >= 1);
        assert!(max_depth >= 1);
        FtTreeBuilder {
            min_support,
            max_depth,
            corpus: Vec::new(),
        }
    }

    /// Adds one raw syslog line to the corpus.
    pub fn add_line(&mut self, line: &str) {
        let words = constant_words(line);
        if !words.is_empty() {
            self.corpus.push(words);
        }
    }

    /// Number of usable corpus lines so far.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when no usable line was added.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Mines the tree: counts global word frequencies, inserts each
    /// message's frequency-ordered constant words, prunes rare paths and
    /// assigns template ids.
    pub fn build(self) -> FtTree {
        let FtTreeBuilder {
            min_support,
            max_depth,
            corpus,
        } = self;

        let mut freq: HashMap<String, u32> = HashMap::new();
        for words in &corpus {
            for w in words {
                *freq.entry(w.clone()).or_insert(0) += 1;
            }
        }

        let mut nodes = vec![Node::new()]; // 0 = root
        for words in &corpus {
            let ordered = order_words(words, &freq, max_depth);
            let mut cur = 0usize;
            nodes[cur].support += 1;
            for w in ordered {
                let next = match nodes[cur].children.get(&w) {
                    Some(&i) => i,
                    None => {
                        let i = nodes.len();
                        nodes.push(Node::new());
                        nodes[cur].children.insert(w, i);
                        i
                    }
                };
                nodes[next].support += 1;
                cur = next;
            }
        }

        // Prune: drop children below min_support (whole subtrees go with
        // them — support is monotone down the tree).
        for i in 0..nodes.len() {
            let pruned: Vec<String> = nodes[i]
                .children
                .iter()
                .filter(|&(_, &c)| nodes[c].support < min_support)
                .map(|(w, _)| w.clone())
                .collect();
            for w in pruned {
                nodes[i].children.remove(&w);
            }
        }

        // Assign template ids to every surviving non-root node, in a
        // deterministic order (BFS with sorted child words).
        let mut templates = Vec::new();
        let mut queue: Vec<(usize, Vec<String>)> = vec![(0, Vec::new())];
        while let Some((n, path)) = queue.pop() {
            let mut kids: Vec<(&String, &usize)> = nodes[n].children.iter().collect();
            kids.sort_by(|a, b| b.0.cmp(a.0)); // reverse: stack pops in order
            let kid_indices: Vec<(String, usize)> =
                kids.into_iter().map(|(w, &i)| (w.clone(), i)).collect();
            for (w, i) in kid_indices {
                let mut p = path.clone();
                p.push(w);
                let id = TemplateId(templates.len() as u32);
                nodes[i].template = Some(id);
                templates.push(Template {
                    id,
                    words: p.clone(),
                    support: nodes[i].support,
                });
                queue.push((i, p));
            }
        }

        let compiled = compile(&nodes, &freq);
        FtTree {
            nodes,
            freq,
            templates,
            max_depth,
            compiled,
        }
    }
}

/// Compiles the String-keyed tree into the symbol arena the hot match path
/// walks: interns the corpus vocabulary and flattens every node's children
/// into per-node symbol-sorted edge runs.
fn compile(nodes: &[Node], freq: &HashMap<String, u32>) -> Compiled {
    let table = WordTable::from_freq(freq);
    let mut edge_start: Vec<u32> = Vec::with_capacity(nodes.len() + 1);
    let mut edges: Vec<(Sym, u32)> = Vec::new();
    let mut buf: Vec<(Sym, u32)> = Vec::new();
    edge_start.push(0);
    for node in nodes {
        buf.clear();
        for (word, &child) in &node.children {
            // Every child edge word came from the corpus, so it is always
            // in the frequency map and therefore in the table.
            if let Some(sym) = table.sym(word) {
                buf.push((sym, child as u32));
            }
        }
        buf.sort_unstable_by_key(|&(s, _)| s);
        edges.extend_from_slice(&buf);
        edge_start.push(edges.len() as u32);
    }
    Compiled {
        table,
        edge_start,
        edges,
    }
}

/// Orders a message's constant words by descending corpus frequency (ties
/// broken alphabetically), removes duplicates and truncates to `max_depth`.
fn order_words(words: &[String], freq: &HashMap<String, u32>, max_depth: usize) -> Vec<String> {
    let mut uniq: Vec<&String> = Vec::new();
    for w in words {
        if !uniq.contains(&w) {
            uniq.push(w);
        }
    }
    uniq.sort_by(|a, b| {
        let fa = freq.get(*a).copied().unwrap_or(0);
        let fb = freq.get(*b).copied().unwrap_or(0);
        fb.cmp(&fa).then_with(|| a.cmp(b))
    });
    uniq.into_iter().take(max_depth).cloned().collect()
}

/// A mined, immutable FT-tree usable for classification.
///
/// Two match paths share the same semantics: [`FtTree::match_message`] is
/// the String-keyed reference walk (retained as the differential oracle,
/// the same pattern as `PathLocator`), and [`FtTree::match_message_with`]
/// is the symbol-interned hot path that reuses caller-owned scratch
/// buffers instead of allocating per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "TreeData")]
pub struct FtTree {
    nodes: Vec<Node>,
    freq: HashMap<String, u32>,
    templates: Vec<Template>,
    max_depth: usize,
    /// Derived symbol arena; excluded from the serialized form and
    /// recompiled from the persistent fields on deserialization.
    #[serde(skip)]
    compiled: Compiled,
}

/// Serde mirror of [`FtTree`]'s persistent fields: deserialization lands
/// here, then [`From`] recompiles the symbol arena. The serialized layout
/// is unchanged from the pre-interning representation.
#[derive(Deserialize)]
struct TreeData {
    nodes: Vec<Node>,
    freq: HashMap<String, u32>,
    templates: Vec<Template>,
    max_depth: usize,
}

impl From<TreeData> for FtTree {
    fn from(data: TreeData) -> FtTree {
        let compiled = compile(&data.nodes, &data.freq);
        FtTree {
            nodes: data.nodes,
            freq: data.freq,
            templates: data.templates,
            max_depth: data.max_depth,
            compiled,
        }
    }
}

impl FtTree {
    /// All mined templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Looks up a template.
    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.0 as usize]
    }

    /// The interned vocabulary backing [`FtTree::match_message_with`].
    pub fn word_table(&self) -> &WordTable {
        &self.compiled.table
    }

    /// Classifies a raw syslog line: walks the tree with the line's
    /// frequency-ordered constant words (skipping words the tree never
    /// kept) and returns the deepest template reached.
    ///
    /// This is the String-keyed reference implementation — it allocates a
    /// `Vec<String>` per line and is kept as the differential oracle for
    /// [`FtTree::match_message_with`], which production paths use.
    pub fn match_message(&self, line: &str) -> Option<TemplateId> {
        let words = constant_words(line);
        let ordered = order_words(&words, &self.freq, self.max_depth);
        let mut cur = 0usize;
        let mut best = None;
        for w in &ordered {
            match self.nodes[cur].children.get(w) {
                Some(&next) => {
                    cur = next;
                    if let Some(id) = self.nodes[cur].template {
                        best = Some(id);
                    }
                }
                // Unknown or pruned word: skip it, keep walking with the
                // remaining words from the current node.
                None => continue,
            }
        }
        best
    }

    /// [`FtTree::match_message`] on interned symbols and caller-owned
    /// scratch buffers: the hot-path variant that performs no heap
    /// allocation once the scratch has warmed up to the longest line.
    ///
    /// Equivalence to the String oracle: symbols are assigned in the same
    /// (frequency descending, word ascending) order `order_words` sorts
    /// by, so sorting the line's symbols numerically reproduces the
    /// oracle's word order. Words outside the vocabulary have frequency 0,
    /// strictly below every interned word's frequency (≥ 1), so the oracle
    /// sorts them after all known words, where they are walk no-ops;
    /// dropping them at the table lookup before sorting and truncating to
    /// `max_depth` therefore yields the identical walk.
    pub fn match_message_with(&self, line: &str, scratch: &mut MatchScratch) -> Option<TemplateId> {
        scratch.syms.clear();
        for token in tokenize(line) {
            if is_variable(token) {
                continue;
            }
            scratch.lower.clear();
            scratch
                .lower
                .extend(token.chars().map(|c| c.to_ascii_lowercase()));
            let Some(sym) = self.compiled.table.sym(&scratch.lower) else {
                continue;
            };
            if !scratch.syms.contains(&sym) {
                scratch.syms.push(sym);
            }
        }
        scratch.syms.sort_unstable();
        scratch.syms.truncate(self.max_depth);
        let mut cur = 0u32;
        let mut best = None;
        for &sym in &scratch.syms {
            if let Some(next) = self.compiled.child(cur, sym) {
                cur = next;
                if let Some(id) = self.nodes[cur as usize].template {
                    best = Some(id);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_tree() -> FtTree {
        let mut b = FtTreeBuilder::new(2, 8);
        // Two strong families plus a singleton that must be pruned.
        for i in 0..20 {
            b.add_line(&format!("Interface TenGigE0/1/0/{i} changed state to down"));
        }
        for i in 0..15 {
            b.add_line(&format!("BGP peer 10.0.0.{i} session went down"));
        }
        b.add_line("totally unique cosmic ray message");
        b.build()
    }

    #[test]
    fn families_become_templates_and_singletons_are_pruned() {
        let t = corpus_tree();
        assert!(!t.templates().is_empty());
        let all_words: Vec<String> = t
            .templates()
            .iter()
            .flat_map(|tp| tp.words.clone())
            .collect();
        assert!(all_words.contains(&"interface".to_string()));
        assert!(all_words.contains(&"bgp".to_string()));
        assert!(
            !all_words.contains(&"cosmic".to_string()),
            "singleton must be pruned"
        );
    }

    #[test]
    fn corpus_messages_match_their_family() {
        let t = corpus_tree();
        let a = t
            .match_message("Interface TenGigE0/9/9/99 changed state to down")
            .expect("interface family must match");
        let b = t
            .match_message("BGP peer 192.168.1.1 session went down")
            .expect("bgp family must match");
        assert_ne!(a, b, "different families get different templates");
        // Same family, different variables → same template.
        let a2 = t
            .match_message("Interface Eth7/7 changed state to down")
            .unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn unknown_message_matches_nothing_or_shallowly() {
        let t = corpus_tree();
        assert_eq!(t.match_message("quantum flux capacitor overflow"), None);
    }

    #[test]
    fn shared_words_produce_hierarchical_templates() {
        let t = corpus_tree();
        // "down" appears in both families (35 lines) — frequency ordering
        // puts it near the root, so both family templates descend from it.
        let down_template = t
            .templates()
            .iter()
            .find(|tp| tp.words == vec!["down".to_string()]);
        assert!(
            down_template.is_some(),
            "most frequent shared word becomes the shallowest template; got {:?}",
            t.templates()
        );
        assert_eq!(down_template.unwrap().support, 35);
    }

    #[test]
    fn build_is_deterministic() {
        let ta = corpus_tree();
        let tb = corpus_tree();
        assert_eq!(ta.templates(), tb.templates());
    }

    #[test]
    fn max_depth_caps_template_length() {
        let mut b = FtTreeBuilder::new(1, 3);
        for _ in 0..3 {
            b.add_line("alpha beta gamma delta epsilon zeta");
        }
        let t = b.build();
        assert!(t.templates().iter().all(|tp| tp.words.len() <= 3));
    }

    #[test]
    fn empty_corpus_builds_empty_tree() {
        let t = FtTreeBuilder::default().build();
        assert!(t.templates().is_empty());
        assert_eq!(t.match_message("anything at all"), None);
    }

    #[test]
    fn symbol_matcher_agrees_on_the_corpus_families() {
        let t = corpus_tree();
        let mut scratch = MatchScratch::new();
        for line in [
            "Interface TenGigE0/9/9/99 changed state to down",
            "BGP peer 192.168.1.1 session went down",
            "Interface Eth7/7 changed state to down",
            "quantum flux capacitor overflow",
            "totally unique cosmic ray message",
            "",
        ] {
            assert_eq!(
                t.match_message(line),
                t.match_message_with(line, &mut scratch),
                "oracle/symbol divergence on {line:?}"
            );
        }
    }

    #[test]
    fn word_table_orders_by_frequency_then_name() {
        let t = corpus_tree();
        let table = t.word_table();
        assert!(!table.is_empty());
        // "down" is the most frequent constant word (35 lines), so it gets
        // the smallest symbol.
        assert_eq!(table.sym("down"), Some(crate::Sym(0)));
        assert_eq!(table.word(crate::Sym(0)), "down");
        // Pruned singleton words stay in the vocabulary: they still occupy
        // slots in the oracle's depth-truncation window.
        assert!(table.sym("cosmic").is_some());
        assert_eq!(table.sym("neverseen"), None);
    }

    #[test]
    fn serde_round_trip_recompiles_the_symbol_arena() {
        let t = corpus_tree();
        let json = serde_json::to_string(&t).expect("serialize");
        let back: FtTree = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t.templates(), back.templates());
        assert_eq!(t.word_table().len(), back.word_table().len());
        let mut scratch = MatchScratch::new();
        for line in [
            "Interface TenGigE0/9/9/99 changed state to down",
            "BGP peer 192.168.1.1 session went down",
        ] {
            assert_eq!(
                t.match_message(line),
                back.match_message_with(line, &mut scratch)
            );
        }
    }

    #[test]
    fn duplicate_words_in_one_message_count_once_per_path() {
        let mut b = FtTreeBuilder::new(1, 8);
        for _ in 0..2 {
            b.add_line("flap flap flap port state flap");
        }
        let t = b.build();
        for tp in t.templates() {
            let mut w = tp.words.clone();
            w.sort();
            let before = w.len();
            w.dedup();
            assert_eq!(w.len(), before, "template has duplicate words: {tp}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn word_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "interface",
            "bgp",
            "peer",
            "down",
            "up",
            "state",
            "error",
            "link",
            "port",
            "flap",
            "session",
            "memory",
            "crc",
        ])
        .prop_map(str::to_string)
    }

    fn line_strategy() -> impl Strategy<Value = String> {
        (
            prop::collection::vec(word_strategy(), 1..6),
            prop::collection::vec(0u32..1000, 0..3),
        )
            .prop_map(|(words, nums)| {
                let mut parts = words;
                for n in nums {
                    parts.push(n.to_string());
                }
                parts.join(" ")
            })
    }

    proptest! {
        /// Every line of a min_support=1 corpus must classify to some
        /// template, and re-matching is deterministic.
        #[test]
        fn corpus_lines_always_match_with_support_one(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for l in &lines {
                let m1 = t.match_message(l);
                prop_assert!(m1.is_some(), "corpus line failed to match: {l}");
                prop_assert_eq!(m1, t.match_message(l));
            }
        }

        /// Template supports never exceed the corpus size and are monotone
        /// along prefix containment.
        #[test]
        fn supports_are_bounded_and_monotone(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let n = lines.len() as u32;
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for tp in t.templates() {
                prop_assert!(tp.support <= n);
                for other in t.templates() {
                    // If `other` extends `tp` by one word, its support is ≤.
                    if other.words.len() == tp.words.len() + 1
                        && other.words[..tp.words.len()] == tp.words[..]
                    {
                        prop_assert!(other.support <= tp.support);
                    }
                }
            }
        }

        /// Differential: the symbol-interned matcher must agree with the
        /// String-keyed oracle on every corpus line and every probe line —
        /// including probes full of words the tree has never seen — across
        /// support/depth settings.
        #[test]
        fn symbol_matcher_equals_string_oracle(
            corpus in prop::collection::vec(line_strategy(), 1..50),
            probes in prop::collection::vec(line_strategy(), 0..50),
            min_support in 1u32..4,
            max_depth in 1usize..10,
        ) {
            let mut b = FtTreeBuilder::new(min_support, max_depth);
            for l in &corpus {
                b.add_line(l);
            }
            let t = b.build();
            let mut scratch = MatchScratch::new();
            for l in corpus.iter().chain(probes.iter()) {
                prop_assert_eq!(
                    t.match_message(l),
                    t.match_message_with(l, &mut scratch),
                    "oracle/symbol divergence on {:?}",
                    l
                );
            }
        }

        /// Variable scrubbing: templates never contain pure numbers.
        #[test]
        fn templates_contain_no_numbers(
            lines in prop::collection::vec(line_strategy(), 1..40)
        ) {
            let mut b = FtTreeBuilder::new(1, 8);
            for l in &lines {
                b.add_line(l);
            }
            let t = b.build();
            for tp in t.templates() {
                for w in &tp.words {
                    prop_assert!(!w.bytes().all(|c| c.is_ascii_digit()));
                }
            }
        }
    }
}
