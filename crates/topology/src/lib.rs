//! # skynet-topology
//!
//! Synthetic hierarchical cloud network — the substrate the paper's
//! production network provides. The network follows Fig. 5b: Region → City →
//! Logic site → Site → Cluster → Device, with aggregation device groups at
//! every level (leaf switches in clusters, CSRs per site, BSRs per logic
//! site, ISRs per city, DCBRs at the region border — the roles visible in
//! the paper's Fig. 11 visualization).
//!
//! Devices are connected by logical links, each backed by a *circuit set*
//! (§4.3): a redundancy group of physical circuits. Customer flows are
//! routed hierarchically (up to the common ancestor, down to the target,
//! ECMP-hashed across aggregation groups) and attached to every circuit set
//! on their path — exactly the inputs the evaluator's severity equations
//! consume (Table 3).
//!
//! - [`device`] / [`link`] — devices with roles, links with circuit sets.
//! - [`customer`] — customers, importance factors, SLA flows.
//! - [`net`] — the immutable [`Topology`] plus its [`TopologyBuilder`].
//! - [`route`] — hierarchical ECMP routing between clusters and to the
//!   Internet entry.
//! - [`generator`] — seeded synthetic topology generation at configurable
//!   scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod customer;
pub mod device;
pub mod generator;
pub mod link;
pub mod net;
pub mod route;

pub use customer::{Customer, Flow, FlowDestination};
pub use device::{Device, DeviceRole};
pub use generator::{generate, GeneratorConfig};
pub use link::{CircuitSet, Link, LinkEndpoint};
pub use net::{Topology, TopologyBuilder};
