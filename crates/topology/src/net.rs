//! The immutable [`Topology`] and its builder.

use crate::customer::{Customer, Flow};
use crate::device::{Device, DeviceRole};
use crate::link::{CircuitSet, Link, LinkEndpoint};
use serde::{Deserialize, Serialize};
use skynet_model::{
    CircuitSetId, CustomerId, DeviceId, LinkId, LocId, LocationInterner, LocationLevel,
    LocationPath,
};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable network topology: devices, links (with circuit sets),
/// customers and routed flows, plus the indexes the analysis needs.
///
/// Build one with [`TopologyBuilder`] or [`crate::generator::generate`].
/// Serialization keeps only the essential data (devices, links, customers,
/// flows) and rebuilds every index on deserialization, so the JSON form is
/// stable and human-inspectable.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "TopologyData", into = "TopologyData")]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    customers: Vec<Customer>,
    flows: Vec<Flow>,
    /// Per-device outgoing link lists (index = device index).
    links_by_device: Vec<Vec<LinkId>>,
    /// Every location prefix of the network, interned once at build time.
    /// Shared (`Arc`) with every pipeline stage so all of them agree on one
    /// [`LocId`] space.
    interner: Arc<LocationInterner>,
    /// Interned location per device (index = device index).
    device_locs: Vec<LocId>,
    /// Aggregation groups: the devices serving each location's uplink,
    /// keyed by the served location's id (cluster → its leaves, site → its
    /// CSRs, …).
    agg_groups: HashMap<LocId, Vec<DeviceId>>,
    /// All cluster-level paths that host leaf devices (workload clusters).
    clusters: Vec<LocationPath>,
    /// Link lookup by unordered device pair.
    link_by_pair: HashMap<(DeviceId, DeviceId), LinkId>,
    /// Internet entry links per region id.
    entries_by_region: HashMap<LocId, Vec<LinkId>>,
    /// Flow indexes attached to each circuit set (computed by routing every
    /// flow at build time).
    flows_by_circuit_set: HashMap<CircuitSetId, Vec<usize>>,
}

impl Topology {
    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All customers.
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// All flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Looks up a device.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks up a customer.
    pub fn customer(&self, id: CustomerId) -> &Customer {
        &self.customers[id.index()]
    }

    /// Links touching a device.
    pub fn links_of(&self, id: DeviceId) -> &[LinkId] {
        &self.links_by_device[id.index()]
    }

    /// The link between two devices, if one exists.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> Option<LinkId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_by_pair.get(&key).copied()
    }

    /// The location interner covering every prefix of every device path.
    /// Pipeline stages clone this `Arc` and resolve incoming paths to
    /// [`LocId`]s exactly once at their boundary.
    pub fn interner(&self) -> &Arc<LocationInterner> {
        &self.interner
    }

    /// The interned location of a device.
    pub fn device_loc(&self, id: DeviceId) -> LocId {
        self.device_locs[id.index()]
    }

    /// The aggregation group serving `location` (cluster → leaves, site →
    /// CSRs, logic site → BSRs, city → ISRs, region → DCBRs). Empty slice if
    /// the location is unknown.
    pub fn agg_group(&self, location: &LocationPath) -> &[DeviceId] {
        self.interner
            .resolve(location)
            .map(|id| self.agg_group_at(id))
            .unwrap_or(&[])
    }

    /// Id-keyed variant of [`agg_group`](Topology::agg_group).
    pub fn agg_group_at(&self, location: LocId) -> &[DeviceId] {
        self.agg_groups
            .get(&location)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All workload cluster paths (sorted, deterministic order).
    pub fn clusters(&self) -> &[LocationPath] {
        &self.clusters
    }

    /// Internet entry links of a region.
    pub fn internet_entries(&self, region: &LocationPath) -> &[LinkId] {
        self.interner
            .resolve(region)
            .and_then(|id| self.entries_by_region.get(&id))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All regions with Internet entry links.
    pub fn regions_with_entries(&self) -> impl Iterator<Item = &LocationPath> {
        self.entries_by_region
            .keys()
            .map(|&id| self.interner.path(id))
    }

    /// Flow indexes riding a circuit set.
    pub fn flows_on_circuit_set(&self, cs: CircuitSetId) -> &[usize] {
        self.flows_by_circuit_set
            .get(&cs)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Devices whose full location path lies under `location`.
    pub fn devices_under<'a>(
        &'a self,
        location: &'a LocationPath,
    ) -> impl Iterator<Item = &'a Device> + 'a {
        let scope = self.interner.resolve(location);
        let all = location.is_root();
        self.devices
            .iter()
            .enumerate()
            .filter(move |(i, _)| {
                all || scope.is_some_and(|id| self.interner.contains(id, self.device_locs[*i]))
            })
            .map(|(_, d)| d)
    }

    /// Devices whose interned location lies under `location` — the id-keyed
    /// containment scan (two array probes per device, no string work).
    pub fn devices_under_at(&self, location: LocId) -> impl Iterator<Item = &Device> + '_ {
        self.devices
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.interner.contains(location, self.device_locs[*i]))
            .map(|(_, d)| d)
    }

    /// True if some link directly connects a device under `a` to a device
    /// under `b` (used by the locator's connectivity-aware grouping: alerts
    /// propagate through topology links, §4.2). Locations that nest are
    /// trivially connected.
    pub fn locations_connected(&self, a: &LocationPath, b: &LocationPath) -> bool {
        if a.contains(b) || b.contains(a) {
            return true;
        }
        // A non-root path the interner has never seen contains no devices
        // (every prefix of every device path is interned), so no link can
        // bridge it. The root case is caught by the nesting test above.
        let (Some(ia), Some(ib)) = (self.interner.resolve(a), self.interner.resolve(b)) else {
            return false;
        };
        self.links.iter().any(|l| {
            let (Some(da), Some(db)) = (l.a.device(), l.b.device()) else {
                return false;
            };
            let la = self.device_locs[da.index()];
            let lb = self.device_locs[db.index()];
            (self.interner.contains(ia, la) && self.interner.contains(ib, lb))
                || (self.interner.contains(ia, lb) && self.interner.contains(ib, la))
        })
    }

    /// Summary counts for reports.
    pub fn summary(&self) -> TopologySummary {
        TopologySummary {
            devices: self.devices.len(),
            links: self.links.len(),
            clusters: self.clusters.len(),
            customers: self.customers.len(),
            flows: self.flows.len(),
        }
    }
}

/// Size summary of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySummary {
    /// Total devices.
    pub devices: usize,
    /// Total links.
    pub links: usize,
    /// Workload clusters.
    pub clusters: usize,
    /// Customers.
    pub customers: usize,
    /// Flows.
    pub flows: usize,
}

/// The serialized form of a topology: essential data only.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TopologyData {
    devices: Vec<Device>,
    links: Vec<Link>,
    customers: Vec<Customer>,
    flows: Vec<Flow>,
}

impl From<Topology> for TopologyData {
    fn from(t: Topology) -> Self {
        TopologyData {
            devices: t.devices,
            links: t.links,
            customers: t.customers,
            flows: t.flows,
        }
    }
}

impl From<TopologyData> for Topology {
    fn from(d: TopologyData) -> Self {
        let mut b = TopologyBuilder::new();
        b.devices = d.devices;
        b.links = d.links;
        b.customers = d.customers;
        b.flows = d.flows;
        b.build()
    }
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    devices: Vec<Device>,
    links: Vec<Link>,
    customers: Vec<Customer>,
    flows: Vec<Flow>,
}

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device.
    ///
    /// # Panics
    /// Panics if `location` is not device-depth (6 segments).
    pub fn add_device(&mut self, role: DeviceRole, location: LocationPath) -> DeviceId {
        assert_eq!(
            location.level(),
            Some(LocationLevel::Device),
            "device location must be 6 segments deep, got {location}"
        );
        let id = DeviceId::from_index(self.devices.len());
        self.devices.push(Device { id, role, location });
        id
    }

    /// Adds a link between two devices, backed by a fresh circuit set.
    pub fn add_link(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        circuits: u32,
        circuit_capacity_gbps: f64,
    ) -> LinkId {
        self.push_link(
            LinkEndpoint::Device(a),
            LinkEndpoint::Device(b),
            circuits,
            circuit_capacity_gbps,
        )
    }

    /// Adds an Internet entry link on a device (normally a DCBR).
    pub fn add_internet_entry(
        &mut self,
        device: DeviceId,
        circuits: u32,
        circuit_capacity_gbps: f64,
    ) -> LinkId {
        self.push_link(
            LinkEndpoint::Device(device),
            LinkEndpoint::Internet,
            circuits,
            circuit_capacity_gbps,
        )
    }

    fn push_link(
        &mut self,
        a: LinkEndpoint,
        b: LinkEndpoint,
        circuits: u32,
        circuit_capacity_gbps: f64,
    ) -> LinkId {
        assert!(circuits > 0, "a circuit set needs at least one circuit");
        let id = LinkId::from_index(self.links.len());
        let circuit_set = CircuitSet {
            // One circuit set per link: same dense index space.
            id: CircuitSetId(id.0),
            circuits,
            circuit_capacity_gbps,
        };
        self.links.push(Link {
            id,
            a,
            b,
            circuit_set,
        });
        id
    }

    /// Adds a customer.
    pub fn add_customer(
        &mut self,
        name: impl Into<String>,
        importance: f64,
        has_sla: bool,
    ) -> CustomerId {
        let id = CustomerId::from_index(self.customers.len());
        self.customers.push(Customer {
            id,
            name: name.into(),
            importance,
            has_sla,
        });
        id
    }

    /// Adds a flow (routed and attached to circuit sets at `build`).
    pub fn add_flow(&mut self, flow: Flow) {
        assert!(
            flow.customer.index() < self.customers.len(),
            "flow references unknown {}",
            flow.customer
        );
        self.flows.push(flow);
    }

    /// Finalizes the topology: computes indexes, aggregation groups and flow
    /// → circuit-set attachments.
    ///
    /// # Panics
    /// Panics on duplicate device locations or duplicate device-pair links.
    pub fn build(self) -> Topology {
        let TopologyBuilder {
            devices,
            links,
            customers,
            flows,
        } = self;

        // Intern every prefix of every device path up front; all other
        // indexes are keyed by the resulting ids.
        let mut seen_paths = HashMap::new();
        for device in &devices {
            if let Some(prev) = seen_paths.insert(device.location.clone(), device.id) {
                panic!(
                    "duplicate device location {} ({prev} and {})",
                    device.location, device.id
                );
            }
        }
        let interner = LocationInterner::from_paths(devices.iter().map(|d| d.location.clone()));
        let device_locs: Vec<LocId> = devices
            .iter()
            .map(|d| {
                interner
                    .resolve(&d.location)
                    .expect("device path interned at build")
            })
            .collect();

        let mut links_by_device: Vec<Vec<LinkId>> = vec![Vec::new(); devices.len()];
        let mut link_by_pair = HashMap::new();
        let mut entries_by_region: HashMap<LocId, Vec<LinkId>> = HashMap::new();
        for link in &links {
            for ep in [link.a, link.b] {
                if let Some(d) = ep.device() {
                    links_by_device[d.index()].push(link.id);
                }
            }
            if let (Some(da), Some(db)) = (link.a.device(), link.b.device()) {
                let key = if da <= db { (da, db) } else { (db, da) };
                let prev = link_by_pair.insert(key, link.id);
                assert!(prev.is_none(), "duplicate link between {da} and {db}");
            }
            if link.is_internet_entry() {
                if let Some(d) = link.a.device().or_else(|| link.b.device()) {
                    let region =
                        interner.truncate_at(device_locs[d.index()], LocationLevel::Region);
                    entries_by_region.entry(region).or_default().push(link.id);
                }
            }
        }

        let mut agg_groups: HashMap<LocId, Vec<DeviceId>> = HashMap::new();
        let mut clusters: Vec<LocationPath> = Vec::new();
        for device in &devices {
            // Route reflectors are control-plane only: they belong to their
            // logic site but never forward traffic, so they are excluded
            // from the ECMP aggregation groups.
            if device.role != DeviceRole::Reflector {
                let served = interner
                    .truncate_at(device_locs[device.id.index()], device.role.serves_level());
                agg_groups.entry(served).or_default().push(device.id);
            }
            if device.role == DeviceRole::Leaf {
                let cluster = device.location.truncate_at(LocationLevel::Cluster);
                if !clusters.contains(&cluster) {
                    clusters.push(cluster);
                }
            }
        }
        clusters.sort_by_key(ToString::to_string);

        let mut topo = Topology {
            devices,
            links,
            customers,
            flows: Vec::new(),
            links_by_device,
            interner: Arc::new(interner),
            device_locs,
            agg_groups,
            clusters,
            link_by_pair,
            entries_by_region,
            flows_by_circuit_set: HashMap::new(),
        };

        // Route every flow and attach it to the circuit sets on its path.
        let mut flows_by_circuit_set: HashMap<CircuitSetId, Vec<usize>> = HashMap::new();
        for (idx, flow) in flows.iter().enumerate() {
            if let Some(route) = crate::route::route_flow(&topo, flow) {
                for link_id in route.links {
                    let cs = topo.link(link_id).circuit_set.id;
                    flows_by_circuit_set.entry(cs).or_default().push(idx);
                }
            }
        }
        topo.flows = flows;
        topo.flows_by_circuit_set = flows_by_circuit_set;
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customer::FlowDestination;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    /// A two-cluster, one-site toy network: 2 leaves per cluster, 2 CSRs.
    fn toy() -> Topology {
        let mut b = TopologyBuilder::new();
        let mut leaves = Vec::new();
        for k in ["K1", "K2"] {
            for n in 0..2 {
                leaves.push(b.add_device(DeviceRole::Leaf, p(&format!("R|C|L|S|{k}|leaf-{n}"))));
            }
        }
        let csr0 = b.add_device(DeviceRole::Csr, p("R|C|L|S|agg|CSR-0"));
        let csr1 = b.add_device(DeviceRole::Csr, p("R|C|L|S|agg|CSR-1"));
        for &leaf in &leaves {
            b.add_link(leaf, csr0, 4, 100.0);
            b.add_link(leaf, csr1, 4, 100.0);
        }
        let cust = b.add_customer("acme", 2.0, true);
        b.add_flow(Flow {
            customer: cust,
            src: p("R|C|L|S|K1"),
            dst: FlowDestination::Cluster(p("R|C|L|S|K2")),
            rate_gbps: 10.0,
            sla_limit_gbps: 5.0,
            ecmp_hash: 42,
        });
        b.build()
    }

    #[test]
    fn indexes_are_consistent() {
        let t = toy();
        assert_eq!(t.summary().devices, 6);
        assert_eq!(t.summary().links, 8);
        assert_eq!(t.clusters().len(), 2);
        assert_eq!(t.agg_group(&p("R|C|L|S")).len(), 2); // CSRs
        assert_eq!(t.agg_group(&p("R|C|L|S|K1")).len(), 2); // leaves
                                                            // Every link appears in both endpoints' lists.
        for link in t.links() {
            for ep in [link.a, link.b] {
                if let Some(d) = ep.device() {
                    assert!(t.links_of(d).contains(&link.id));
                }
            }
        }
    }

    #[test]
    fn interner_covers_every_device_prefix() {
        let t = toy();
        let interner = t.interner();
        for device in t.devices() {
            let id = t.device_loc(device.id);
            assert_eq!(interner.path(id), &device.location);
            for prefix in device.location.prefixes() {
                assert!(interner.resolve(&prefix).is_some(), "missing {prefix}");
            }
        }
        // Id-keyed accessors agree with the path-keyed ones.
        let site = interner.resolve(&p("R|C|L|S")).unwrap();
        assert_eq!(t.agg_group_at(site), t.agg_group(&p("R|C|L|S")));
        let k1 = interner.resolve(&p("R|C|L|S|K1")).unwrap();
        let by_id: Vec<DeviceId> = t.devices_under_at(k1).map(|d| d.id).collect();
        let by_path: Vec<DeviceId> = t.devices_under(&p("R|C|L|S|K1")).map(|d| d.id).collect();
        assert_eq!(by_id, by_path);
        // Unknown paths resolve to nothing and scan to nothing.
        assert!(interner.resolve(&p("R|C|L|S|K9")).is_none());
        assert_eq!(t.devices_under(&p("R|C|L|S|K9")).count(), 0);
        assert_eq!(t.devices_under(&LocationPath::root()).count(), 6);
    }

    #[test]
    fn link_between_is_symmetric() {
        let t = toy();
        let leaf = t.agg_group(&p("R|C|L|S|K1"))[0];
        let csr = t.agg_group(&p("R|C|L|S"))[0];
        assert_eq!(t.link_between(leaf, csr), t.link_between(csr, leaf));
        assert!(t.link_between(leaf, csr).is_some());
        let other_leaf = t.agg_group(&p("R|C|L|S|K2"))[0];
        assert!(t.link_between(leaf, other_leaf).is_none());
    }

    #[test]
    fn flows_are_attached_to_route_circuit_sets() {
        let t = toy();
        let attached: usize = t
            .links()
            .iter()
            .map(|l| t.flows_on_circuit_set(l.circuit_set.id).len())
            .sum();
        // Inter-cluster route in one site: leaf → CSR → leaf = 2 links.
        assert_eq!(attached, 2);
    }

    #[test]
    fn locations_connected_via_links_and_nesting() {
        let t = toy();
        // Clusters connect through the CSR-containing site only via nesting,
        // but cluster↔site-agg devices are directly linked.
        assert!(t.locations_connected(&p("R|C|L|S|K1"), &p("R|C|L|S")));
        // Two clusters are not directly linked to each other.
        assert!(!t.locations_connected(&p("R|C|L|S|K1"), &p("R|C|L|S|K2")));
        // Nesting is trivially connected.
        assert!(t.locations_connected(&p("R"), &p("R|C|L|S|K1")));
    }

    #[test]
    #[should_panic(expected = "duplicate device location")]
    fn duplicate_device_location_panics() {
        let mut b = TopologyBuilder::new();
        b.add_device(DeviceRole::Leaf, p("R|C|L|S|K|d"));
        b.add_device(DeviceRole::Leaf, p("R|C|L|S|K|d"));
        b.build();
    }

    #[test]
    #[should_panic(expected = "device location must be 6 segments")]
    fn shallow_device_location_panics() {
        let mut b = TopologyBuilder::new();
        b.add_device(DeviceRole::Leaf, p("R|C|L"));
    }

    #[test]
    fn internet_entries_indexed_by_region() {
        let mut b = TopologyBuilder::new();
        let d = b.add_device(DeviceRole::Dcbr, p("R|agg|agg|agg|agg|DCBR-0"));
        b.add_internet_entry(d, 16, 100.0);
        let t = b.build();
        assert_eq!(t.internet_entries(&p("R")).len(), 1);
        assert_eq!(t.internet_entries(&p("Q")).len(), 0);
        assert!(t.link(t.internet_entries(&p("R"))[0]).is_internet_entry());
    }
}
