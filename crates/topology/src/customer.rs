//! Customers and their traffic flows.
//!
//! The evaluator prioritizes incidents by the importance of affected
//! customers, "determined using traffic data collected via NetFlow" (§4.3).
//! We model customers with an importance factor `g` (Table 3) and SLA flows
//! routed from a source cluster either to another cluster or out to the
//! Internet. The topology attaches each flow to every circuit set on its
//! path, so the evaluator can look up, per circuit set, which customers ride
//! it and at what rate.

use serde::{Deserialize, Serialize};
use skynet_model::{CustomerId, LocationPath};

/// A customer of the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Customer {
    /// Dense identifier.
    pub id: CustomerId,
    /// Display name.
    pub name: String,
    /// Importance factor `g` (Table 3): premium customers have larger `g`.
    pub importance: f64,
    /// Whether this customer bought an SLA with hard stability expectations.
    pub has_sla: bool,
}

/// Where a flow terminates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDestination {
    /// Another cluster inside the network.
    Cluster(LocationPath),
    /// The Internet via the source region's entry links.
    Internet,
}

/// One customer traffic flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// The paying customer.
    pub customer: CustomerId,
    /// Source cluster (cluster-level location path).
    pub src: LocationPath,
    /// Destination.
    pub dst: FlowDestination,
    /// Steady-state rate in Gbps.
    pub rate_gbps: f64,
    /// SLA rate limit in Gbps: the flow is "beyond limit" when its share of
    /// a circuit set's remaining capacity forces it under this rate (feeds
    /// `l_i` of Table 3).
    pub sla_limit_gbps: f64,
    /// Stable hash used for ECMP member selection along the route.
    pub ecmp_hash: u64,
}

impl Flow {
    /// True when the flow's SLA is violated at the given achievable rate.
    pub fn sla_violated_at(&self, achievable_gbps: f64) -> bool {
        achievable_gbps < self.sla_limit_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sla_violation_threshold() {
        let f = Flow {
            customer: CustomerId(0),
            src: LocationPath::parse("R|C|L|S|K").unwrap(),
            dst: FlowDestination::Internet,
            rate_gbps: 10.0,
            sla_limit_gbps: 5.0,
            ecmp_hash: 7,
        };
        assert!(f.sla_violated_at(4.9));
        assert!(!f.sla_violated_at(5.0));
    }
}
