//! Seeded synthetic topology generation.
//!
//! Builds a hierarchical cloud network in the shape of Fig. 5b at a
//! configurable scale, with full bipartite links between consecutive
//! aggregation groups (so every ECMP choice in [`crate::route`] has a
//! link), inter-region DCBR meshes, Internet entry links, a route reflector
//! per logic site, and a customer/flow population.
//!
//! Generation is deterministic from [`GeneratorConfig::seed`].

use crate::customer::{Flow, FlowDestination};
use crate::device::DeviceRole;
use crate::net::{Topology, TopologyBuilder};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use skynet_model::{DeviceId, LocationPath};

/// Scale and shape knobs for the synthetic network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of regions.
    pub regions: usize,
    /// Cities per region.
    pub cities_per_region: usize,
    /// Logic sites per city.
    pub logic_sites_per_city: usize,
    /// Sites per logic site.
    pub sites_per_logic_site: usize,
    /// Workload clusters per site.
    pub clusters_per_site: usize,
    /// Leaf devices per cluster.
    pub leaves_per_cluster: usize,
    /// CSRs per site / BSRs per logic site / ISRs per city / DCBRs per
    /// region (one knob keeps the config small; production groups are
    /// similar sizes).
    pub agg_group_size: usize,
    /// Circuits per intra-DC circuit set.
    pub circuits_per_link: u32,
    /// Circuits per region Internet-entry circuit set (the §2.2 incident
    /// cut half of these).
    pub circuits_per_entry: u32,
    /// Capacity of each circuit in Gbps.
    pub circuit_capacity_gbps: f64,
    /// Capacity of each Internet-entry circuit in Gbps. Entries are
    /// deliberately tighter than the intra-DC fabric so that losing half
    /// of them congests the survivors (the §2.2 dynamic).
    pub entry_circuit_capacity_gbps: f64,
    /// Internet entry links per region.
    pub entries_per_region: usize,
    /// Customers to create.
    pub customers: usize,
    /// Flows to create.
    pub flows: usize,
    /// Fraction of flows destined to the Internet (vs. another cluster).
    pub internet_flow_fraction: f64,
    /// Fraction of customers that are premium (high importance, SLA).
    pub premium_customer_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A small network for unit tests and examples: ~100 devices.
    pub fn small() -> Self {
        GeneratorConfig {
            regions: 2,
            cities_per_region: 1,
            logic_sites_per_city: 1,
            sites_per_logic_site: 2,
            clusters_per_site: 3,
            leaves_per_cluster: 3,
            agg_group_size: 2,
            circuits_per_link: 4,
            circuits_per_entry: 8,
            circuit_capacity_gbps: 100.0,
            entry_circuit_capacity_gbps: 16.0,
            entries_per_region: 2,
            customers: 12,
            flows: 60,
            internet_flow_fraction: 0.4,
            premium_customer_fraction: 0.25,
            seed: 7,
        }
    }

    /// A medium network for integration tests and most experiments:
    /// ~1,000 devices.
    pub fn medium() -> Self {
        GeneratorConfig {
            regions: 3,
            cities_per_region: 2,
            logic_sites_per_city: 2,
            sites_per_logic_site: 2,
            clusters_per_site: 6,
            leaves_per_cluster: 5,
            agg_group_size: 4,
            circuits_per_link: 4,
            circuits_per_entry: 16,
            circuit_capacity_gbps: 100.0,
            entry_circuit_capacity_gbps: 20.0,
            entries_per_region: 4,
            customers: 60,
            flows: 600,
            internet_flow_fraction: 0.4,
            premium_customer_fraction: 0.2,
            seed: 7,
        }
    }

    /// A large network for the flood benchmarks: ~10,000 devices (the
    /// paper's network is O(10^5); one order below keeps benches laptop-
    /// sized while preserving the flood dynamics).
    pub fn large() -> Self {
        GeneratorConfig {
            regions: 4,
            cities_per_region: 3,
            logic_sites_per_city: 2,
            sites_per_logic_site: 3,
            clusters_per_site: 10,
            leaves_per_cluster: 12,
            agg_group_size: 4,
            circuits_per_link: 4,
            circuits_per_entry: 16,
            circuit_capacity_gbps: 100.0,
            entry_circuit_capacity_gbps: 100.0,
            entries_per_region: 4,
            customers: 300,
            flows: 4000,
            internet_flow_fraction: 0.4,
            premium_customer_fraction: 0.2,
            seed: 7,
        }
    }

    /// A network scaled to approximately `target_devices` total devices.
    ///
    /// Holds the Fig. 5b aggregation shape of [`GeneratorConfig::large`]
    /// fixed and grows the workload edge (clusters per site, leaves per
    /// cluster), which is where real fleets put their device count. The
    /// paper's production network is O(10^5) devices; `sized(100_000)`
    /// reproduces that order on the same shape the benches use.
    pub fn sized(target_devices: usize) -> Self {
        let mut cfg = GeneratorConfig::large();
        let sites = cfg.regions
            * cfg.cities_per_region
            * cfg.logic_sites_per_city
            * cfg.sites_per_logic_site;
        // The aggregation overhead is fixed by the shape; every remaining
        // device is a leaf.
        let overhead = {
            let mut probe = cfg.clone();
            probe.clusters_per_site = 0;
            probe.leaves_per_cluster = 0;
            probe.expected_devices()
        };
        let leaves = target_devices.saturating_sub(overhead).max(sites);
        let per_site = leaves.div_ceil(sites);
        // Keep clusters around a dozen leaves each, as in `large()`.
        cfg.clusters_per_site = per_site.div_ceil(12).max(1);
        // Rounded (not ceiled) so the two splits do not compound upward.
        cfg.leaves_per_cluster =
            ((per_site + cfg.clusters_per_site / 2) / cfg.clusters_per_site).max(1);
        cfg.customers = (target_devices / 30).clamp(60, 2_000);
        cfg.flows = (target_devices / 2).clamp(600, 25_000);
        cfg
    }

    /// Expected total device count for this config.
    pub fn expected_devices(&self) -> usize {
        let sites = self.regions
            * self.cities_per_region
            * self.logic_sites_per_city
            * self.sites_per_logic_site;
        let clusters = sites * self.clusters_per_site;
        let leaves = clusters * self.leaves_per_cluster;
        let csrs = sites * self.agg_group_size;
        let logic_sites = self.regions * self.cities_per_region * self.logic_sites_per_city;
        let bsrs = logic_sites * self.agg_group_size;
        let reflectors = logic_sites; // one per logic site
        let isrs = self.regions * self.cities_per_region * self.agg_group_size;
        let dcbrs = self.regions * self.agg_group_size;
        leaves + csrs + bsrs + reflectors + isrs + dcbrs
    }
}

/// Generates a topology from a config. Deterministic in `config.seed`.
pub fn generate(config: &GeneratorConfig) -> Topology {
    assert!(config.regions >= 1, "need at least one region");
    assert!(config.agg_group_size >= 1, "need at least one agg device");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut b = TopologyBuilder::new();

    let caps = config.circuit_capacity_gbps;
    let mut dcbrs_by_region: Vec<Vec<DeviceId>> = Vec::new();
    let mut all_clusters: Vec<LocationPath> = Vec::new();

    for r in 0..config.regions {
        let region = LocationPath::new([format!("Region-{r}")]);
        // Region border routers.
        let dcbrs: Vec<DeviceId> = (0..config.agg_group_size)
            .map(|i| b.add_device(DeviceRole::Dcbr, agg_path(&region, 5, &format!("DCBR-{i}"))))
            .collect();
        // Internet entry links, round-robin across the region's DCBRs.
        for e in 0..config.entries_per_region {
            b.add_internet_entry(
                dcbrs[e % dcbrs.len()],
                config.circuits_per_entry,
                config.entry_circuit_capacity_gbps,
            );
        }

        for c in 0..config.cities_per_region {
            let city = region.child(format!("City-{c}"));
            let isrs: Vec<DeviceId> = (0..config.agg_group_size)
                .map(|i| b.add_device(DeviceRole::Isr, agg_path(&city, 4, &format!("ISR-{i}"))))
                .collect();
            bipartite(&mut b, &isrs, &dcbrs, config.circuits_per_link, caps);

            for l in 0..config.logic_sites_per_city {
                let logic = city.child(format!("Logic-{l}"));
                let bsrs: Vec<DeviceId> = (0..config.agg_group_size)
                    .map(|i| {
                        b.add_device(DeviceRole::Bsr, agg_path(&logic, 3, &format!("BSR-{i}")))
                    })
                    .collect();
                bipartite(&mut b, &bsrs, &isrs, config.circuits_per_link, caps);
                // One route reflector per logic site (§7.1's incident).
                let rr = b.add_device(DeviceRole::Reflector, agg_path(&logic, 3, "RR-0"));
                for &bsr in &bsrs {
                    b.add_link(rr, bsr, 2, caps);
                }

                for s in 0..config.sites_per_logic_site {
                    let site = logic.child(format!("Site-{s}"));
                    let csrs: Vec<DeviceId> = (0..config.agg_group_size)
                        .map(|i| {
                            b.add_device(DeviceRole::Csr, agg_path(&site, 2, &format!("CSR-{i}")))
                        })
                        .collect();
                    bipartite(&mut b, &csrs, &bsrs, config.circuits_per_link, caps);

                    for k in 0..config.clusters_per_site {
                        let cluster = site.child(format!("Cluster-{k}"));
                        let leaves: Vec<DeviceId> = (0..config.leaves_per_cluster)
                            .map(|i| {
                                b.add_device(DeviceRole::Leaf, cluster.child(format!("leaf-{i}")))
                            })
                            .collect();
                        bipartite(&mut b, &leaves, &csrs, config.circuits_per_link, caps);
                        all_clusters.push(cluster);
                    }
                }
            }
        }
        dcbrs_by_region.push(dcbrs);
    }

    // Inter-region WAN mesh: pairwise bipartite between region DCBR groups.
    for i in 0..dcbrs_by_region.len() {
        for j in (i + 1)..dcbrs_by_region.len() {
            bipartite(
                &mut b,
                &dcbrs_by_region[i],
                &dcbrs_by_region[j],
                config.circuits_per_link,
                caps,
            );
        }
    }

    // Customers: a premium head and a long tail.
    let premium = ((config.customers as f64) * config.premium_customer_fraction).ceil() as usize;
    for i in 0..config.customers {
        let is_premium = i < premium;
        let importance = if is_premium {
            rng.gen_range(3.0..8.0)
        } else {
            rng.gen_range(0.5..1.5)
        };
        b.add_customer(format!("customer-{i}"), importance, is_premium);
    }

    // Flows: random source cluster; Internet or another random cluster.
    for f in 0..config.flows {
        let customer = skynet_model::CustomerId::from_index(rng.gen_range(0..config.customers));
        let src = all_clusters[rng.gen_range(0..all_clusters.len())].clone();
        let dst = if rng.gen_bool(config.internet_flow_fraction) {
            FlowDestination::Internet
        } else {
            let mut d = all_clusters[rng.gen_range(0..all_clusters.len())].clone();
            while d == src && all_clusters.len() > 1 {
                d = all_clusters[rng.gen_range(0..all_clusters.len())].clone();
            }
            FlowDestination::Cluster(d)
        };
        let rate = rng.gen_range(0.5..20.0);
        b.add_flow(Flow {
            customer,
            src,
            dst,
            rate_gbps: rate,
            sla_limit_gbps: rate * rng.gen_range(0.3..0.8),
            ecmp_hash: (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ config.seed,
        });
    }

    b.build()
}

/// Builds the device path for an aggregation device: the served location
/// padded with `agg` segments to device depth.
fn agg_path(served: &LocationPath, pad: usize, name: &str) -> LocationPath {
    let mut p = served.clone();
    for _ in 1..pad {
        p = p.child("agg");
    }
    p.child(name)
}

/// Adds full bipartite links between two device groups.
fn bipartite(
    b: &mut TopologyBuilder,
    group_a: &[DeviceId],
    group_b: &[DeviceId],
    circuits: u32,
    capacity: f64,
) {
    for &a in group_a {
        for &bd in group_b {
            b.add_link(a, bd, circuits, capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;

    #[test]
    fn small_topology_has_expected_shape() {
        let cfg = GeneratorConfig::small();
        let t = generate(&cfg);
        assert_eq!(t.devices().len(), cfg.expected_devices());
        assert_eq!(
            t.clusters().len(),
            cfg.regions
                * cfg.cities_per_region
                * cfg.logic_sites_per_city
                * cfg.sites_per_logic_site
                * cfg.clusters_per_site
        );
        assert_eq!(t.customers().len(), cfg.customers);
        assert_eq!(t.flows().len(), cfg.flows);
    }

    #[test]
    fn sized_configs_land_near_their_target() {
        for target in [2_000usize, 10_000, 40_000, 100_000] {
            let cfg = GeneratorConfig::sized(target);
            let got = cfg.expected_devices();
            let err = got.abs_diff(target) as f64 / target as f64;
            assert!(err < 0.05, "target {target}: got {got} ({err:.3} off)");
        }
        // Tiny targets degrade gracefully to the fixed aggregation shape.
        let floor = GeneratorConfig::sized(1);
        assert!(floor.clusters_per_site >= 1 && floor.leaves_per_cluster >= 1);
    }

    #[test]
    fn sized_generation_matches_its_expectation() {
        let cfg = GeneratorConfig::sized(3_000);
        let t = generate(&cfg);
        assert_eq!(t.devices().len(), cfg.expected_devices());
        assert_eq!(t.flows().len(), cfg.flows);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.devices(), b.devices());
        assert_eq!(a.links().len(), b.links().len());
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn every_cluster_pair_routes() {
        let t = generate(&GeneratorConfig::small());
        let clusters = t.clusters();
        for (i, a) in clusters.iter().enumerate() {
            for bp in clusters.iter().skip(i) {
                for hash in [0u64, 1, 999] {
                    let r = route::route_between_clusters(&t, a, bp, hash);
                    assert!(r.is_some(), "no route {a} -> {bp} (hash {hash})");
                }
            }
        }
    }

    #[test]
    fn every_cluster_reaches_internet() {
        let t = generate(&GeneratorConfig::small());
        for c in t.clusters() {
            assert!(
                route::route_to_internet(&t, c, 5).is_some(),
                "no internet route from {c}"
            );
        }
    }

    #[test]
    fn every_region_has_entries() {
        let cfg = GeneratorConfig::small();
        let t = generate(&cfg);
        assert_eq!(t.regions_with_entries().count(), cfg.regions);
        for region in t.regions_with_entries() {
            assert_eq!(t.internet_entries(region).len(), cfg.entries_per_region);
        }
    }

    #[test]
    fn flows_attach_to_circuit_sets() {
        let t = generate(&GeneratorConfig::small());
        let attached: usize = t
            .links()
            .iter()
            .map(|l| t.flows_on_circuit_set(l.circuit_set.id).len())
            .sum();
        // Every flow crosses at least one link.
        assert!(attached >= t.flows().len());
    }

    #[test]
    fn premium_customers_exist_and_are_more_important() {
        let t = generate(&GeneratorConfig::small());
        let premium_min = t
            .customers()
            .iter()
            .filter(|c| c.has_sla)
            .map(|c| c.importance)
            .fold(f64::INFINITY, f64::min);
        let regular_max = t
            .customers()
            .iter()
            .filter(|c| !c.has_sla)
            .map(|c| c.importance)
            .fold(0.0, f64::max);
        assert!(premium_min > regular_max);
    }
}
