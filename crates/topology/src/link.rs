//! Links and circuit sets.
//!
//! "For redundancy purposes, all links connecting network devices consist of
//! multiple circuits, each \[group\] is called a circuit set" (§4.3). A
//! [`Link`] is the logical adjacency between two endpoints; its [`CircuitSet`]
//! records how many physical circuits back it and their capacity. The
//! evaluator's impact factor reads the *break ratio* `d_i` of each circuit
//! set (Table 3).

use serde::{Deserialize, Serialize};
use skynet_model::{CircuitSetId, DeviceId, LinkId};
use std::fmt;

/// One end of a link: a device, or the Internet outside our network
/// (region entry cables terminate on DCBRs and face the Internet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkEndpoint {
    /// A device inside the topology.
    Device(DeviceId),
    /// The Internet beyond the region border.
    Internet,
}

impl LinkEndpoint {
    /// The device id, if this endpoint is a device.
    pub fn device(self) -> Option<DeviceId> {
        match self {
            LinkEndpoint::Device(d) => Some(d),
            LinkEndpoint::Internet => None,
        }
    }
}

impl fmt::Display for LinkEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkEndpoint::Device(d) => write!(f, "{d}"),
            LinkEndpoint::Internet => f.write_str("internet"),
        }
    }
}

/// The redundancy group of physical circuits backing one link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitSet {
    /// Dense topology-wide identifier.
    pub id: CircuitSetId,
    /// Number of physical circuits in the set.
    pub circuits: u32,
    /// Capacity of each circuit in Gbps.
    pub circuit_capacity_gbps: f64,
}

impl CircuitSet {
    /// Total capacity with all circuits healthy.
    pub fn total_capacity_gbps(&self) -> f64 {
        f64::from(self.circuits) * self.circuit_capacity_gbps
    }

    /// Remaining capacity with `broken` circuits out of service.
    pub fn remaining_capacity_gbps(&self, broken: u32) -> f64 {
        f64::from(self.circuits.saturating_sub(broken)) * self.circuit_capacity_gbps
    }

    /// The break ratio `d_i` of Table 3 for `broken` circuits out.
    pub fn break_ratio(&self, broken: u32) -> f64 {
        if self.circuits == 0 {
            return 0.0;
        }
        f64::from(broken.min(self.circuits)) / f64::from(self.circuits)
    }
}

/// A logical link between two endpoints, backed by one circuit set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Dense topology-wide identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: LinkEndpoint,
    /// The other endpoint.
    pub b: LinkEndpoint,
    /// The redundancy group backing this link.
    pub circuit_set: CircuitSet,
}

impl Link {
    /// True if the link touches `device`.
    pub fn touches(&self, device: DeviceId) -> bool {
        self.a.device() == Some(device) || self.b.device() == Some(device)
    }

    /// The opposite endpoint from `device`, if the link touches it.
    pub fn other(&self, device: DeviceId) -> Option<LinkEndpoint> {
        if self.a.device() == Some(device) {
            Some(self.b)
        } else if self.b.device() == Some(device) {
            Some(self.a)
        } else {
            None
        }
    }

    /// True if this is a region Internet-entry link.
    pub fn is_internet_entry(&self) -> bool {
        matches!(self.a, LinkEndpoint::Internet) || matches!(self.b, LinkEndpoint::Internet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cset(circuits: u32) -> CircuitSet {
        CircuitSet {
            id: CircuitSetId(0),
            circuits,
            circuit_capacity_gbps: 100.0,
        }
    }

    #[test]
    fn capacity_math() {
        let cs = cset(8);
        assert_eq!(cs.total_capacity_gbps(), 800.0);
        assert_eq!(cs.remaining_capacity_gbps(3), 500.0);
        assert_eq!(cs.remaining_capacity_gbps(20), 0.0);
    }

    #[test]
    fn break_ratio_is_clamped() {
        let cs = cset(4);
        assert_eq!(cs.break_ratio(0), 0.0);
        assert_eq!(cs.break_ratio(2), 0.5);
        assert_eq!(cs.break_ratio(9), 1.0);
        assert_eq!(cset(0).break_ratio(1), 0.0);
    }

    #[test]
    fn link_endpoint_navigation() {
        let link = Link {
            id: LinkId(0),
            a: LinkEndpoint::Device(DeviceId(1)),
            b: LinkEndpoint::Device(DeviceId(2)),
            circuit_set: cset(2),
        };
        assert!(link.touches(DeviceId(1)));
        assert!(!link.touches(DeviceId(3)));
        assert_eq!(
            link.other(DeviceId(1)),
            Some(LinkEndpoint::Device(DeviceId(2)))
        );
        assert_eq!(link.other(DeviceId(3)), None);
        assert!(!link.is_internet_entry());
    }

    #[test]
    fn internet_entry_detection() {
        let entry = Link {
            id: LinkId(1),
            a: LinkEndpoint::Device(DeviceId(0)),
            b: LinkEndpoint::Internet,
            circuit_set: cset(16),
        };
        assert!(entry.is_internet_entry());
        assert_eq!(entry.other(DeviceId(0)), Some(LinkEndpoint::Internet));
    }
}
