//! Network devices and their roles.

use serde::{Deserialize, Serialize};
use skynet_model::{DeviceId, LocationLevel, LocationPath};
use std::fmt;

/// The aggregation role a device plays, broadly following the device names
/// visible in the paper's Fig. 11 visualization (DCBR/BSR/ISR/CSR) plus the
/// in-cluster leaf switches and the occasional route reflector (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceRole {
    /// Leaf/ToR switch inside a cluster.
    Leaf,
    /// Cluster-to-site aggregation router (CSR).
    Csr,
    /// Site-to-logic-site aggregation router (BSR).
    Bsr,
    /// Logic-site-to-city aggregation router (ISR).
    Isr,
    /// Region border router — carries inter-region and Internet entry
    /// traffic (DCBR).
    Dcbr,
    /// BGP route reflector attached at the logic-site level.
    Reflector,
}

impl DeviceRole {
    /// Short name used in generated device names and reports.
    pub const fn name(self) -> &'static str {
        match self {
            DeviceRole::Leaf => "LEAF",
            DeviceRole::Csr => "CSR",
            DeviceRole::Bsr => "BSR",
            DeviceRole::Isr => "ISR",
            DeviceRole::Dcbr => "DCBR",
            DeviceRole::Reflector => "RR",
        }
    }

    /// The hierarchy level whose *uplink* this role aggregates: a CSR is the
    /// aggregation group for clusters within a site, so it serves
    /// [`LocationLevel::Site`], and so on. Leaf switches serve their own
    /// cluster; reflectors serve the logic site they sit in.
    pub const fn serves_level(self) -> LocationLevel {
        match self {
            DeviceRole::Leaf => LocationLevel::Cluster,
            DeviceRole::Csr => LocationLevel::Site,
            DeviceRole::Bsr | DeviceRole::Reflector => LocationLevel::LogicSite,
            DeviceRole::Isr => LocationLevel::City,
            DeviceRole::Dcbr => LocationLevel::Region,
        }
    }
}

impl fmt::Display for DeviceRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A network device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Dense topology-wide identifier.
    pub id: DeviceId,
    /// Role in the aggregation hierarchy.
    pub role: DeviceRole,
    /// Full device-level location path
    /// (`Region|City|Logic site|Site|Cluster|Name`). Aggregation devices
    /// above the cluster level live in a synthetic aggregation cluster of
    /// their serving location (e.g. a CSR's path ends in `…|Site I|agg|CSR-1`
    /// — matching the paper's attribution of alerts from aggregation devices
    /// to the location level they serve, Fig. 6).
    pub location: LocationPath,
}

impl Device {
    /// The device's name (final path segment).
    pub fn name(&self) -> &str {
        self.location.leaf().expect("device paths are never empty")
    }

    /// The location level this device's alerts are attributed to (§4.1):
    /// the level its role serves. A leaf switch's alerts are attributed to
    /// its cluster; a BSR's to its logic site.
    pub fn attribution(&self) -> LocationPath {
        self.location.truncate_at(self.role.serves_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(role: DeviceRole, path: &str) -> Device {
        Device {
            id: DeviceId(0),
            role,
            location: LocationPath::parse(path).unwrap(),
        }
    }

    #[test]
    fn leaf_attribution_is_its_cluster() {
        let d = dev(DeviceRole::Leaf, "R|C|L|S|K|leaf-1");
        assert_eq!(d.attribution(), LocationPath::parse("R|C|L|S|K").unwrap());
        assert_eq!(d.name(), "leaf-1");
    }

    #[test]
    fn aggregation_attribution_is_served_level() {
        let csr = dev(DeviceRole::Csr, "R|C|L|S|agg|CSR-0");
        assert_eq!(csr.attribution(), LocationPath::parse("R|C|L|S").unwrap());
        let bsr = dev(DeviceRole::Bsr, "R|C|L|agg|agg|BSR-0");
        assert_eq!(bsr.attribution(), LocationPath::parse("R|C|L").unwrap());
        let dcbr = dev(DeviceRole::Dcbr, "R|agg|agg|agg|agg|DCBR-0");
        assert_eq!(dcbr.attribution(), LocationPath::parse("R").unwrap());
    }

    #[test]
    fn roles_cover_all_levels() {
        use LocationLevel::*;
        let served: Vec<_> = [
            DeviceRole::Leaf,
            DeviceRole::Csr,
            DeviceRole::Bsr,
            DeviceRole::Isr,
            DeviceRole::Dcbr,
        ]
        .iter()
        .map(|r| r.serves_level())
        .collect();
        assert_eq!(served, vec![Cluster, Site, LogicSite, City, Region]);
    }
}
