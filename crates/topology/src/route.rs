//! Hierarchical ECMP routing.
//!
//! The network routes traffic hierarchically: a flow climbs from its source
//! cluster through the aggregation groups (leaf → CSR → BSR → ISR → DCBR)
//! until it reaches the level of the common ancestor with its destination,
//! then descends symmetrically. At each aggregation group one member is
//! chosen by the flow's ECMP hash, so a single aggregation device failure
//! affects only the flows hashed through it (this is what makes the
//! congestion-vs-cable-cut case of §2.2 reproducible).

use crate::customer::{Flow, FlowDestination};
use crate::net::Topology;
use skynet_model::{DeviceId, LinkId, LocationLevel, LocationPath};

/// A concrete routed path: devices visited in order, plus the links between
/// consecutive devices (and the Internet entry link for Internet flows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// Devices in path order.
    pub devices: Vec<DeviceId>,
    /// Links in path order (`devices.len() - 1` entries for cluster-to-
    /// cluster routes, one more for the Internet entry).
    pub links: Vec<LinkId>,
}

/// Deterministically mixes a hash with a salt (splitmix64 finalizer), used
/// for per-group ECMP member selection.
fn mix(hash: u64, salt: u64) -> u64 {
    let mut z = hash ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stable_location_salt(location: &LocationPath) -> u64 {
    // FNV-1a over the display form: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in location.to_string().bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Picks the ECMP member of the aggregation group serving `location`.
fn pick_member(topo: &Topology, location: &LocationPath, hash: u64) -> Option<DeviceId> {
    let group = topo.agg_group(location);
    if group.is_empty() {
        return None;
    }
    let i = (mix(hash, stable_location_salt(location)) % group.len() as u64) as usize;
    Some(group[i])
}

/// The ascent chain for a cluster: the ECMP-chosen member of each
/// aggregation group from the cluster's leaves up to (and including) the
/// group serving `top_level`.
fn ascent(
    topo: &Topology,
    cluster: &LocationPath,
    top_level: LocationLevel,
    hash: u64,
) -> Option<Vec<DeviceId>> {
    debug_assert_eq!(cluster.level(), Some(LocationLevel::Cluster));
    let mut chain = Vec::new();
    // Cluster, Site, LogicSite, City, Region — narrowest to broadest.
    let levels = [
        LocationLevel::Cluster,
        LocationLevel::Site,
        LocationLevel::LogicSite,
        LocationLevel::City,
        LocationLevel::Region,
    ];
    for level in levels {
        if level.depth() < top_level.depth() {
            break;
        }
        chain.push(pick_member(topo, &cluster.truncate_at(level), hash)?);
    }
    Some(chain)
}

/// Connects a device chain into links; `None` if any consecutive pair has
/// no link.
fn connect(topo: &Topology, devices: &[DeviceId]) -> Option<Vec<LinkId>> {
    devices
        .windows(2)
        .map(|w| topo.link_between(w[0], w[1]))
        .collect()
}

/// Routes between two workload clusters. Returns `None` when either cluster
/// is unknown or some aggregation hop has no connecting link.
pub fn route_between_clusters(
    topo: &Topology,
    src: &LocationPath,
    dst: &LocationPath,
    hash: u64,
) -> Option<RoutePath> {
    if src == dst {
        let leaf = pick_member(topo, src, hash)?;
        return Some(RoutePath {
            devices: vec![leaf],
            links: Vec::new(),
        });
    }
    let common = src.common_ancestor(dst);
    // The turn happens at the aggregation group one level *above* the
    // deepest differing level: clusters in the same site turn at the CSRs
    // (level Site), sites in the same logic site turn at BSRs, and clusters
    // in different regions turn at the DCBR groups of both regions.
    let turn_level = match common.level() {
        Some(LocationLevel::Site) | Some(LocationLevel::Cluster) => LocationLevel::Site,
        Some(LocationLevel::LogicSite) => LocationLevel::LogicSite,
        Some(LocationLevel::City) => LocationLevel::City,
        Some(LocationLevel::Region) => LocationLevel::Region,
        None => LocationLevel::Region, // different regions: DCBR ↔ DCBR
        Some(LocationLevel::Device) => unreachable!("cluster paths are depth 5"),
    };

    let up = ascent(topo, src, turn_level, hash)?;
    let mut down = ascent(topo, dst, turn_level, hash)?;

    let mut devices = up;
    if devices.last() == down.last() && common.level().is_some() {
        // Shared turning device: drop the duplicate.
        down.pop();
    }
    down.reverse();
    devices.extend(down);
    // Adjacent duplicate hops can appear when ECMP picks the same device
    // for both sides at the turn; collapse them.
    devices.dedup();
    let links = connect(topo, &devices)?;
    Some(RoutePath { devices, links })
}

/// Routes from a cluster to the Internet via its region's entry links.
pub fn route_to_internet(topo: &Topology, src: &LocationPath, hash: u64) -> Option<RoutePath> {
    let mut devices = ascent(topo, src, LocationLevel::Region, hash)?;
    // The ascent ends at a DCBR; the flow leaves through one of the entry
    // links on *that* DCBR (or any entry in the region if that DCBR has
    // none, modelling iBGP to the entry holder).
    let region = src.truncate_at(LocationLevel::Region);
    let entries = topo.internet_entries(&region);
    if entries.is_empty() {
        return None;
    }
    let dcbr = *devices.last().expect("ascent is never empty");
    let own: Vec<LinkId> = entries
        .iter()
        .copied()
        .filter(|&l| topo.link(l).touches(dcbr))
        .collect();
    let candidates = if own.is_empty() { entries } else { &own[..] };
    const ENTRY_SALT: u64 = 0x0E17_2A5B;
    let entry = candidates[(mix(hash, ENTRY_SALT) % candidates.len() as u64) as usize];
    // If the entry hangs off a different DCBR, hop to it.
    let holder = topo
        .link(entry)
        .a
        .device()
        .or_else(|| topo.link(entry).b.device())
        .expect("entry links touch a device");
    let mut links = connect(topo, &devices)?;
    if holder != dcbr {
        let hop = topo.link_between(dcbr, holder)?;
        devices.push(holder);
        links.push(hop);
    }
    links.push(entry);
    Some(RoutePath { devices, links })
}

/// Routes a flow according to its destination.
pub fn route_flow(topo: &Topology, flow: &Flow) -> Option<RoutePath> {
    match &flow.dst {
        FlowDestination::Cluster(dst) => {
            route_between_clusters(topo, &flow.src, dst, flow.ecmp_hash)
        }
        FlowDestination::Internet => route_to_internet(topo, &flow.src, flow.ecmp_hash),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceRole;
    use crate::net::TopologyBuilder;

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    /// Two regions, one chain of aggregation each, fully linked.
    fn two_region_topo() -> Topology {
        let mut b = TopologyBuilder::new();
        for r in ["R1", "R2"] {
            let leaf = b.add_device(DeviceRole::Leaf, p(&format!("{r}|C|L|S|K|leaf-0")));
            let csr = b.add_device(DeviceRole::Csr, p(&format!("{r}|C|L|S|agg|CSR-0")));
            let bsr = b.add_device(DeviceRole::Bsr, p(&format!("{r}|C|L|agg|agg|BSR-0")));
            let isr = b.add_device(DeviceRole::Isr, p(&format!("{r}|C|agg|agg|agg|ISR-0")));
            let dcbr = b.add_device(DeviceRole::Dcbr, p(&format!("{r}|agg|agg|agg|agg|DCBR-0")));
            b.add_link(leaf, csr, 4, 100.0);
            b.add_link(csr, bsr, 4, 100.0);
            b.add_link(bsr, isr, 4, 100.0);
            b.add_link(isr, dcbr, 4, 100.0);
            b.add_internet_entry(dcbr, 16, 100.0);
        }
        // Inter-region WAN link between the two DCBRs (ids 4 and 9).
        b.add_link(DeviceId(4), DeviceId(9), 8, 100.0);
        b.build()
    }

    #[test]
    fn same_cluster_route_is_single_leaf() {
        let t = two_region_topo();
        let r = route_between_clusters(&t, &p("R1|C|L|S|K"), &p("R1|C|L|S|K"), 1).unwrap();
        assert_eq!(r.devices.len(), 1);
        assert!(r.links.is_empty());
    }

    #[test]
    fn inter_region_route_crosses_both_chains() {
        let t = two_region_topo();
        let r = route_between_clusters(&t, &p("R1|C|L|S|K"), &p("R2|C|L|S|K"), 7).unwrap();
        // leaf,csr,bsr,isr,dcbr ×2 = 10 devices, 9 links.
        assert_eq!(r.devices.len(), 10);
        assert_eq!(r.links.len(), 9);
        assert_eq!(r.devices.first(), Some(&DeviceId(0)));
        assert_eq!(r.devices.last(), Some(&DeviceId(5)));
    }

    #[test]
    fn internet_route_ends_with_entry_link() {
        let t = two_region_topo();
        let r = route_to_internet(&t, &p("R1|C|L|S|K"), 3).unwrap();
        assert_eq!(r.devices.len(), 5);
        assert_eq!(r.links.len(), 5);
        let last = *r.links.last().unwrap();
        assert!(t.link(last).is_internet_entry());
    }

    #[test]
    fn unknown_cluster_routes_to_none() {
        let t = two_region_topo();
        assert!(route_between_clusters(&t, &p("RX|C|L|S|K"), &p("R1|C|L|S|K"), 0).is_none());
        assert!(route_to_internet(&t, &p("RX|C|L|S|K"), 0).is_none());
    }

    #[test]
    fn ecmp_is_deterministic() {
        let t = two_region_topo();
        let a = route_between_clusters(&t, &p("R1|C|L|S|K"), &p("R2|C|L|S|K"), 99).unwrap();
        let b = route_between_clusters(&t, &p("R1|C|L|S|K"), &p("R2|C|L|S|K"), 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_spreads_hashes() {
        // Different salts must give different member picks often enough;
        // sanity-check the mixer is not constant.
        let vals: Vec<u64> = (0..8).map(|i| mix(42, i)).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every routed path is link-consistent: consecutive devices are
        /// joined by the listed links, endpoints match the clusters, and
        /// no device repeats (loop-free).
        #[test]
        fn routes_are_link_consistent_and_loop_free(
            src_idx in 0usize..24,
            dst_idx in 0usize..24,
            hash in any::<u64>(),
        ) {
            let topo = generate(&GeneratorConfig::small());
            let clusters = topo.clusters();
            let src = &clusters[src_idx % clusters.len()];
            let dst = &clusters[dst_idx % clusters.len()];
            let route = route_between_clusters(&topo, src, dst, hash)
                .expect("generated topologies are fully routable");
            // Endpoints live in the right clusters.
            let first = topo.device(route.devices[0]);
            prop_assert!(src.contains(&first.location));
            let last = topo.device(*route.devices.last().unwrap());
            prop_assert!(dst.contains(&last.location));
            // Links join consecutive devices.
            prop_assert_eq!(route.links.len() + 1, route.devices.len());
            for (w, &link) in route.devices.windows(2).zip(&route.links) {
                prop_assert_eq!(topo.link_between(w[0], w[1]), Some(link));
            }
            // Loop-free.
            let mut seen = route.devices.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), route.devices.len());
        }

        /// Internet routes end at an entry link of the source's region.
        #[test]
        fn internet_routes_exit_through_own_region(
            src_idx in 0usize..24,
            hash in any::<u64>(),
        ) {
            let topo = generate(&GeneratorConfig::small());
            let clusters = topo.clusters();
            let src = &clusters[src_idx % clusters.len()];
            let route = route_to_internet(&topo, src, hash).expect("routable");
            let entry = *route.links.last().unwrap();
            prop_assert!(topo.link(entry).is_internet_entry());
            let region = src.truncate_at(skynet_model::LocationLevel::Region);
            prop_assert!(topo.internet_entries(&region).contains(&entry));
            // All transit devices stay inside the region.
            for &d in &route.devices {
                prop_assert!(region.contains(&topo.device(d).location));
            }
        }

        /// ECMP is deterministic in the hash and only ever varies *within*
        /// aggregation groups: the sequence of visited location prefixes is
        /// hash-independent.
        #[test]
        fn ecmp_varies_only_group_members(
            src_idx in 0usize..24,
            dst_idx in 0usize..24,
            h1 in any::<u64>(),
            h2 in any::<u64>(),
        ) {
            let topo = generate(&GeneratorConfig::small());
            let clusters = topo.clusters();
            let src = &clusters[src_idx % clusters.len()];
            let dst = &clusters[dst_idx % clusters.len()];
            let r1 = route_between_clusters(&topo, src, dst, h1).unwrap();
            let r2 = route_between_clusters(&topo, src, dst, h2).unwrap();
            let shape = |r: &RoutePath| -> Vec<String> {
                r.devices
                    .iter()
                    .map(|&d| topo.device(d).attribution().to_string())
                    .collect()
            };
            prop_assert_eq!(shape(&r1), shape(&r2), "hash changes members, not shape");
        }
    }
}
