//! Regenerates the paper's tables and figures from the simulation.
//!
//! ```text
//! paper_report [--scale small|paper] [--devices N] [experiment ...]
//! ```
//!
//! With no experiment names, everything runs. Shared corpora are prepared
//! once and reused across the experiments that need them. `--devices N`
//! regenerates the corpus (and the Fig. 8c flood) on a topology of
//! approximately `N` devices, lifting the presets toward the paper's
//! O(10^5) production network.

use skynet_bench::experiments::{
    self, ablations, fig1, fig10, fig3, fig5d, fig7, fig8a, fig8b, fig8c, fig9, sec62, tables,
};
use skynet_bench::ExperimentScale;

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig3",
    "fig5d",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9",
    "fig10",
    "sec62",
    "ablations",
];

fn main() {
    let mut scale = ExperimentScale::Small;
    let mut devices: Option<usize> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use small|paper");
                    std::process::exit(2);
                });
            }
            "--devices" => {
                let v = args.next().unwrap_or_default();
                devices = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("bad device count {v:?}; use a positive integer");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: paper_report [--scale small|paper] [--devices N] [experiment ...]"
                );
                eprintln!("experiments: {}", ALL.join(" "));
                return;
            }
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    for name in &wanted {
        if !ALL.contains(&name.as_str()) {
            eprintln!(
                "unknown experiment {name:?}; choose from: {}",
                ALL.join(" ")
            );
            std::process::exit(2);
        }
    }

    // Prepare the shared corpus only if some experiment needs it.
    let needs_corpus = wanted.iter().any(|n| {
        matches!(
            n.as_str(),
            "fig5d" | "fig8a" | "fig8b" | "fig9" | "fig10" | "ablations"
        )
    });
    let prepared = needs_corpus.then(|| {
        match devices {
            Some(n) => eprintln!("preparing shared corpus ({scale:?}, ~{n} devices) ..."),
            None => eprintln!("preparing shared corpus ({scale:?}) ..."),
        }
        experiments::prepare_sized(scale, devices)
    });

    for name in &wanted {
        let text = match name.as_str() {
            "table1" => tables::table1(),
            "table2" => tables::table2(),
            "table3" => tables::table3(),
            "fig1" => fig1::run(scale).render(),
            "fig3" => fig3::run(scale).render(),
            "fig5d" => fig5d::run_on(prepared.as_ref().expect("prepared")).render(),
            "fig7" => fig7::run(scale).render(),
            "fig8a" => fig8a::run_on(prepared.as_ref().expect("prepared")).render(),
            "fig8b" => fig8b::run_on(prepared.as_ref().expect("prepared"), scale).render(),
            "fig8c" => fig8c::run_with_devices(scale, devices).render(),
            "fig9" => fig9::run_on(prepared.as_ref().expect("prepared")).render(),
            "fig10" => fig10::run_on(prepared.as_ref().expect("prepared")).render(),
            "sec62" => sec62::run(scale).render(),
            "ablations" => ablations::run_on(prepared.as_ref().expect("prepared")).render(),
            _ => unreachable!("validated above"),
        };
        println!("{text}");
        println!("{}", "=".repeat(72));
    }
}
