//! False-positive / false-negative scoring against injected ground truth.
//!
//! The paper's operators labelled incidents by hand (§6.1, §6.3); here the
//! injector's provenance tags do the labelling:
//!
//! - a **false negative** is a must-detect failure (severe or
//!   customer-impacting) that appears in *no* incident's causes;
//! - a **false positive** is a reported incident whose alert mass is
//!   majority background noise (no injected cause) — a cluster of
//!   unrelated glitches promoted to an incident.

use serde::{Deserialize, Serialize};
use skynet_core::locator::Incident;
use skynet_failure::Scenario;
use skynet_model::FailureId;
use std::collections::HashSet;

/// Accuracy counters over a corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Incidents reported in total.
    pub incidents: usize,
    /// Incidents that are majority-noise (false positives).
    pub false_positives: usize,
    /// Failures that had to be detected.
    pub must_detect: usize,
    /// Must-detect failures with no matching incident (false negatives).
    pub false_negatives: usize,
}

impl Accuracy {
    /// False-positive ratio over reported incidents (the paper's Fig. 8a /
    /// Fig. 9 y-axis).
    pub fn fp_rate(&self) -> f64 {
        if self.incidents == 0 {
            return 0.0;
        }
        self.false_positives as f64 / self.incidents as f64
    }

    /// False-negative ratio over must-detect failures.
    pub fn fn_rate(&self) -> f64 {
        if self.must_detect == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / self.must_detect as f64
    }

    /// Accumulates another episode's counts.
    pub fn merge(&mut self, other: Accuracy) {
        self.incidents += other.incidents;
        self.false_positives += other.false_positives;
        self.must_detect += other.must_detect;
        self.false_negatives += other.false_negatives;
    }
}

/// True when the incident's alert mass is majority injected-failure (by
/// consolidated raw count).
fn is_failure_backed(incident: &Incident) -> bool {
    let mut caused = 0u64;
    let mut noise = 0u64;
    for a in &incident.alerts {
        if a.cause.is_some() {
            caused += u64::from(a.count);
        } else {
            noise += u64::from(a.count);
        }
    }
    caused >= noise && caused > 0
}

/// Scores one episode's incidents against its scenario.
pub fn score_episode(scenario: &Scenario, incidents: &[Incident]) -> Accuracy {
    let detected: HashSet<FailureId> = incidents.iter().flat_map(|i| i.causes()).collect();
    let must: Vec<FailureId> = scenario.must_detect().map(|e| e.id).collect();
    Accuracy {
        incidents: incidents.len(),
        false_positives: incidents.iter().filter(|i| !is_failure_backed(i)).count(),
        must_detect: must.len(),
        false_negatives: must.iter().filter(|id| !detected.contains(id)).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_failure::Injector;
    use skynet_model::{
        AlertKind, DataSource, IncidentId, LocationPath, RawAlert, SimDuration, SimTime,
        StructuredAlert,
    };
    use skynet_topology::{generate, GeneratorConfig};
    use std::sync::Arc;

    fn salert(cause: Option<FailureId>, count: u32) -> StructuredAlert {
        let mut raw = RawAlert::known(
            DataSource::Ping,
            SimTime::ZERO,
            LocationPath::parse("R|C").unwrap(),
            AlertKind::PacketLossIcmp,
        );
        raw.cause = cause;
        let mut s = StructuredAlert::from_raw(&raw, AlertKind::PacketLossIcmp);
        s.count = count;
        s
    }

    fn incident(alerts: Vec<StructuredAlert>) -> Incident {
        Incident {
            id: IncidentId(0),
            root: LocationPath::parse("R|C").unwrap(),
            first_seen: SimTime::ZERO,
            last_seen: SimTime::from_secs(60),
            alerts,
        }
    }

    fn one_failure_scenario() -> Scenario {
        let topo = Arc::new(generate(&GeneratorConfig::small()));
        let mut inj = Injector::new(topo);
        inj.device_down(
            skynet_model::DeviceId(5),
            SimTime::ZERO,
            SimDuration::from_mins(5),
        );
        inj.finish(SimTime::from_mins(10))
    }

    #[test]
    fn detected_failure_counts_clean() {
        let s = one_failure_scenario();
        let i = incident(vec![salert(Some(FailureId(0)), 5), salert(None, 2)]);
        let acc = score_episode(&s, &[i]);
        assert_eq!(acc.false_negatives, 0);
        assert_eq!(acc.false_positives, 0);
        assert_eq!(acc.fp_rate(), 0.0);
        assert_eq!(acc.fn_rate(), 0.0);
    }

    #[test]
    fn noise_majority_incident_is_a_false_positive() {
        let s = one_failure_scenario();
        let noise_incident = incident(vec![salert(None, 10), salert(Some(FailureId(0)), 1)]);
        let real = incident(vec![salert(Some(FailureId(0)), 3)]);
        let acc = score_episode(&s, &[noise_incident, real]);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.fp_rate(), 0.5);
    }

    #[test]
    fn missed_failure_is_a_false_negative() {
        let s = one_failure_scenario();
        let acc = score_episode(&s, &[]);
        assert_eq!(acc.must_detect, 1);
        assert_eq!(acc.false_negatives, 1);
        assert_eq!(acc.fn_rate(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Accuracy {
            incidents: 2,
            false_positives: 1,
            must_detect: 3,
            false_negatives: 1,
        };
        a.merge(Accuracy {
            incidents: 1,
            false_positives: 0,
            must_detect: 1,
            false_negatives: 0,
        });
        assert_eq!(a.incidents, 3);
        assert_eq!(a.must_detect, 4);
        assert!((a.fp_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.fn_rate(), 0.25);
    }
}
