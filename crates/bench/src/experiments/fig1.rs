//! Figure 1: the proportion of network-failure root causes.
//!
//! The injector samples categories with the paper's observed weights; this
//! experiment draws a corpus and reports the realized mix next to the
//! paper's numbers — a calibration check that every downstream experiment
//! inherits the right failure distribution.

use crate::ExperimentScale;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use skynet_failure::{Injector, RootCauseCategory};
use skynet_model::{SimDuration, SimTime};
use skynet_topology::{generate, GeneratorConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// One category's realized vs paper share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Root-cause category.
    pub category: RootCauseCategory,
    /// Share realized by the injector.
    pub measured: f64,
    /// Fig. 1's printed share.
    pub paper: f64,
}

/// The Fig. 1 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Rows in Fig. 1 order.
    pub rows: Vec<Fig1Row>,
    /// Failures sampled.
    pub samples: usize,
}

/// Runs the experiment.
pub fn run(scale: ExperimentScale) -> Fig1Result {
    let samples = match scale {
        ExperimentScale::Small => 500,
        ExperimentScale::Paper => 5_000,
    };
    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut inj = Injector::new(topo);
    for i in 0..samples {
        inj.random(
            &mut rng,
            SimTime::from_secs(i as u64 * 10),
            SimDuration::from_secs(5),
        );
    }
    let scenario = inj.finish(SimTime::from_secs(samples as u64 * 10 + 60));
    let rows = RootCauseCategory::ALL
        .iter()
        .map(|&category| {
            let n = scenario
                .events()
                .iter()
                .filter(|e| e.category == category)
                .count();
            Fig1Row {
                category,
                measured: n as f64 / samples as f64,
                paper: category.paper_share(),
            }
        })
        .collect();
    Fig1Result { rows, samples }
}

impl Fig1Result {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 1 — root-cause mix over {} injected failures\n{:<30} {:>9} {:>9}\n",
            self.samples, "category", "measured", "paper"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<30} {:>8.1}% {:>8.1}%",
                r.category.name(),
                r.measured * 100.0,
                r.paper * 100.0
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_mix_tracks_the_paper() {
        let result = run(ExperimentScale::Small);
        assert_eq!(result.rows.len(), 8);
        for r in &result.rows {
            // Normalized paper shares sum to ~1.021; allow generous noise
            // at 500 samples.
            assert!(
                (r.measured - r.paper / 1.021).abs() < 0.06,
                "{}: measured {} paper {}",
                r.category,
                r.measured,
                r.paper
            );
        }
        let total: f64 = result.rows.iter().map(|r| r.measured).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_category() {
        let text = run(ExperimentScale::Small).render();
        assert!(text.contains("Device hardware error"));
        assert!(text.contains("Configuration error"));
    }
}
