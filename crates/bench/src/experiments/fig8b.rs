//! Figure 8b: alert volume before vs after preprocessing.
//!
//! Each point is one flood: raw alerts in, structured alerts out. The
//! paper's scatter shows roughly an order of magnitude of reduction up to
//! 300k raw alerts.

use crate::corpus::severe_cable_cut;
use crate::experiments::PreparedCorpus;
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::{Preprocessor, PreprocessorConfig, SyslogClassifier};
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::fmt::Write as _;
use std::sync::Arc;

/// One scatter point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig8bPoint {
    /// Raw alerts fed in.
    pub before: u64,
    /// Structured alerts emitted.
    pub after: u64,
}

/// The Fig. 8b reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8bResult {
    /// All scatter points, ascending by `before`.
    pub points: Vec<Fig8bPoint>,
}

fn preprocess_count(
    alerts: &[skynet_model::RawAlert],
    classifier: &Arc<SyslogClassifier>,
) -> Fig8bPoint {
    let mut pp = Preprocessor::new(PreprocessorConfig::default(), Some(Arc::clone(classifier)));
    let out = pp.process_batch(alerts);
    Fig8bPoint {
        before: pp.stats().raw,
        after: out.len() as u64,
    }
}

/// Runs the experiment on a prepared corpus plus extra severe floods (the
/// upper-right of the scatter).
pub fn run_on(prepared: &PreparedCorpus, scale: ExperimentScale) -> Fig8bResult {
    let classifier = Arc::new(SyslogClassifier::train(&prepared.training, 3, 8));
    let mut points: Vec<Fig8bPoint> = prepared
        .runs
        .iter()
        .map(|run| preprocess_count(&run.alerts, &classifier))
        .collect();

    // Severe floods at growing noise rates stretch the x-axis.
    let noise_levels: &[f64] = match scale {
        ExperimentScale::Small => &[2_000.0, 20_000.0],
        ExperimentScale::Paper => &[2_000.0, 20_000.0, 120_000.0, 400_000.0],
    };
    for (i, &noise) in noise_levels.iter().enumerate() {
        let scenario = severe_cable_cut(GeneratorConfig::small(), 50 + i as u64);
        let cfg = TelemetryConfig {
            noise_per_hour: noise,
            ..TelemetryConfig::default()
        };
        let mut suite = TelemetrySuite::standard(scenario.topology(), cfg);
        let run = suite.run(&scenario);
        points.push(preprocess_count(&run.alerts, &classifier));
    }

    points.sort_by_key(|p| p.before);
    Fig8bResult { points }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> Fig8bResult {
    run_on(&crate::experiments::prepare(scale), scale)
}

impl Fig8bResult {
    /// Overall reduction factor (total before / total after).
    pub fn reduction_factor(&self) -> f64 {
        let before: u64 = self.points.iter().map(|p| p.before).sum();
        let after: u64 = self.points.iter().map(|p| p.after).sum();
        if after == 0 {
            return f64::INFINITY;
        }
        before as f64 / after as f64
    }

    /// Scatter rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 8b — alerts before vs after preprocessing ({} floods, overall {:.1}x reduction)\n{:>10} {:>10}\n",
            self.points.len(),
            self.reduction_factor(),
            "before",
            "after"
        );
        for p in &self.points {
            let _ = writeln!(s, "{:>10} {:>10}", p.before, p.after);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_cuts_roughly_an_order_of_magnitude() {
        let r = run(ExperimentScale::Small);
        assert!(r.points.len() >= 5);
        for p in &r.points {
            assert!(p.after <= p.before, "{p:?}");
        }
        let f = r.reduction_factor();
        assert!(
            f > 4.0,
            "overall reduction {f} too weak for Fig. 8b's shape"
        );
    }

    #[test]
    fn bigger_floods_stay_compressed() {
        let r = run(ExperimentScale::Small);
        let biggest = r.points.last().unwrap();
        assert!(
            (biggest.after as f64) < biggest.before as f64 * 0.5,
            "{biggest:?}"
        );
    }
}
