//! Figure 8a: locating accuracy vs number of data sources.
//!
//! Sources are removed lowest-coverage-first (All → 6 → 4 → 3); false
//! positives barely move while false negatives climb — the paper's case
//! for integrating every source.

use crate::accuracy::{score_episode, Accuracy};
use crate::experiments::{pct, PreparedCorpus};
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::PipelineConfig;
use skynet_model::DataSource;
use std::fmt::Write as _;

/// One source-count configuration's accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8aRow {
    /// X-axis label ("All", "6", "4", "3").
    pub label: String,
    /// Sources kept (highest-coverage ones survive removal).
    pub sources: Vec<DataSource>,
    /// Accuracy over the corpus.
    pub accuracy: Accuracy,
}

/// The Fig. 8a reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8aResult {
    /// Rows, most sources first.
    pub rows: Vec<Fig8aRow>,
}

/// The paper's x-axis: all 12 sources, then the top 6/4/3 by coverage.
pub fn source_sets() -> Vec<(String, Vec<DataSource>)> {
    let descending: Vec<DataSource> = DataSource::by_ascending_coverage()
        .into_iter()
        .rev()
        .collect();
    vec![
        ("All".into(), descending.clone()),
        ("6".into(), descending[..6].to_vec()),
        ("4".into(), descending[..4].to_vec()),
        ("3".into(), descending[..3].to_vec()),
    ]
}

/// Runs the experiment on a prepared corpus.
pub fn run_on(prepared: &PreparedCorpus) -> Fig8aResult {
    let skynet = prepared.skynet(PipelineConfig::production());
    let rows = source_sets()
        .into_iter()
        .map(|(label, sources)| {
            let mut accuracy = Accuracy::default();
            for idx in 0..prepared.len() {
                let report = prepared.analyze(&skynet, idx, Some(&sources));
                let incidents: Vec<_> = report
                    .incidents
                    .iter()
                    .map(|s| s.incident.clone())
                    .collect();
                accuracy.merge(score_episode(
                    &prepared.corpus.episodes[idx].scenario,
                    &incidents,
                ));
            }
            Fig8aRow {
                label,
                sources,
                accuracy,
            }
        })
        .collect();
    Fig8aResult { rows }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> Fig8aResult {
    run_on(&crate::experiments::prepare(scale))
}

impl Fig8aResult {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 8a — accuracy vs data sources\n{:<6} {:>10} {:>10} {:>10}\n",
            "srcs", "incidents", "FP rate", "FN rate"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<6} {:>10} {:>10} {:>10}",
                r.label,
                r.accuracy.incidents,
                pct(r.accuracy.fp_rate()),
                pct(r.accuracy.fn_rate()),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_sources_raises_false_negatives() {
        let r = run(ExperimentScale::Small);
        assert_eq!(r.rows.len(), 4);
        let all_fn = r.rows[0].accuracy.fn_rate();
        let three_fn = r.rows[3].accuracy.fn_rate();
        assert!(
            three_fn > all_fn,
            "3 sources must miss more failures than 12: {three_fn} vs {all_fn}"
        );
        // With all sources, false negatives are (near) zero — the paper's
        // headline claim.
        assert!(all_fn < 0.15, "all-sources FN {all_fn}");
        // FP movement stays modest compared to the FN climb.
        let fp_spread = r
            .rows
            .iter()
            .map(|x| x.accuracy.fp_rate())
            .fold(0.0f64, f64::max)
            - r.rows
                .iter()
                .map(|x| x.accuracy.fp_rate())
                .fold(1.0f64, f64::min);
        assert!(
            fp_spread <= (three_fn - all_fn) + 0.15,
            "FP spread {fp_spread} should be small next to the FN climb"
        );
    }

    #[test]
    fn source_sets_shrink_in_order() {
        let sets = source_sets();
        assert_eq!(sets[0].1.len(), 12);
        assert_eq!(sets[1].1.len(), 6);
        assert_eq!(sets[2].1.len(), 4);
        assert_eq!(sets[3].1.len(), 3);
        // Highest-coverage source survives every cut.
        for (_, set) in &sets {
            assert!(set.contains(&DataSource::Snmp));
        }
    }
}
