//! §6.2's text numbers: the preprocessing stream and locating latency.
//!
//! The paper: ~100k raw alerts/hour before preprocessing; fewer than 10k
//! after under normal conditions and fewer than 50k in extremes; locating
//! takes under 10 s worst-case, minutes without the preprocessor.

use crate::corpus::severe_cable_cut;
use crate::experiments::fig8c::time_locating;
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::{Preprocessor, PreprocessorConfig};
use skynet_failure::Injector;
use skynet_model::SimTime;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::{generate, GeneratorConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// One operating condition's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec62Row {
    /// Condition label.
    pub condition: String,
    /// Raw alerts per simulated hour.
    pub raw_per_hour: u64,
    /// Structured alerts per simulated hour after preprocessing.
    pub after_per_hour: u64,
    /// Locating time over the preprocessed hour, seconds.
    pub locate_secs: f64,
}

/// The §6.2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec62Result {
    /// Normal vs extreme rows.
    pub rows: Vec<Sec62Row>,
}

fn measure(condition: &str, scenario: skynet_failure::Scenario, noise: f64) -> Sec62Row {
    let cfg = TelemetryConfig {
        noise_per_hour: noise,
        ..TelemetryConfig::default()
    };
    let mut suite = TelemetrySuite::standard(scenario.topology(), cfg);
    let run = suite.run(&scenario);
    let hours = scenario.horizon().as_secs() as f64 / 3600.0;
    let mut pp = Preprocessor::new(PreprocessorConfig::default(), None);
    let structured = pp.process_batch(&run.alerts);
    let (locate_secs, _) = time_locating(scenario.topology(), &structured);
    Sec62Row {
        condition: condition.into(),
        raw_per_hour: (pp.stats().raw as f64 / hours) as u64,
        after_per_hour: (structured.len() as f64 / hours) as u64,
        locate_secs,
    }
}

/// Runs both conditions.
pub fn run(scale: ExperimentScale) -> Sec62Result {
    let (topo_cfg, normal_noise, extreme_noise) = match scale {
        // The paper's 100k/hour is a production-wide rate; the small
        // simulation scales everything down proportionally.
        ExperimentScale::Small => (GeneratorConfig::small(), 3_000.0, 30_000.0),
        ExperimentScale::Paper => (GeneratorConfig::medium(), 30_000.0, 100_000.0),
    };

    // Normal conditions: background noise plus one minor failure.
    let topo = Arc::new(generate(&topo_cfg));
    let mut inj = Injector::new(Arc::clone(&topo));
    inj.device_hardware(
        skynet_model::DeviceId(0),
        SimTime::from_mins(10),
        skynet_model::SimDuration::from_mins(5),
        0.2,
        true,
    );
    let normal = inj.finish(SimTime::from_mins(30));

    // Extreme conditions: the severe cable cut under heavy noise.
    let extreme = severe_cable_cut(topo_cfg, 21);

    Sec62Result {
        rows: vec![
            measure("normal", normal, normal_noise),
            measure("extreme", extreme, extreme_noise),
        ],
    }
}

impl Sec62Result {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "§6.2 — preprocessing stream and locating latency\n{:<10} {:>14} {:>14} {:>12}\n",
            "condition", "raw/hour", "after/hour", "locate (s)"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<10} {:>14} {:>14} {:>12.3}",
                r.condition, r.raw_per_hour, r.after_per_hour, r.locate_secs
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_reduces_and_locating_is_fast() {
        let r = run(ExperimentScale::Small);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(
                row.after_per_hour * 2 <= row.raw_per_hour,
                "{row:?} not reduced"
            );
            let bound = if cfg!(debug_assertions) { 120.0 } else { 10.0 };
            assert!(row.locate_secs < bound, "{row:?} over the paper's bound");
        }
        // The extreme condition floods harder than the normal one.
        assert!(r.rows[1].raw_per_hour > r.rows[0].raw_per_hour);
    }
}
