//! Tables 1–3: static registries rendered for the report.

use skynet_model::source::{DataSource, TABLE1_TOOLS};
use std::fmt::Write as _;

/// Renders Table 1: existing tools, production status, data source.
pub fn table1() -> String {
    let mut s = format!(
        "Table 1 — existing network monitoring tools\n{:<16} {:<14} {:<12}\n",
        "tool", "in production", "data source"
    );
    for t in TABLE1_TOOLS {
        let _ = writeln!(
            s,
            "{:<16} {:<14} {:<12}",
            t.name,
            if t.in_production { "true" } else { "false" },
            t.data_source
        );
    }
    s
}

/// Renders Table 2: SkyNet's twelve data sources with descriptions.
pub fn table2() -> String {
    let mut s = String::from("Table 2 — network monitoring tools used by SkyNet\n");
    for src in DataSource::ALL {
        let _ = writeln!(s, "{:<22} {}", src.name(), src.description());
    }
    s
}

/// Renders Table 3: the severity-equation symbols (implemented by
/// `skynet_core::evaluator::score`).
pub fn table3() -> String {
    let rows: [(&str, &str); 8] = [
        ("N", "total number of circuit sets related to the incident"),
        ("d_i", "break ratio of circuit set i"),
        ("l_i", "ratio of SLA flows beyond limit on circuit set i"),
        (
            "g_i",
            "importance factor of customers related to circuit set i",
        ),
        ("u_i", "number of customers related to circuit set i"),
        ("R_k", "average ping packet loss rate"),
        ("L_k", "max average SLA flow rate beyond limit"),
        (
            "dT_k / U_k",
            "alert lasting time / number of important customers",
        ),
    ];
    let mut s = String::from("Table 3 — severity-equation symbols (Eqs. 1-3)\n");
    for (sym, expl) in rows {
        let _ = writeln!(s, "{sym:<12} {expl}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_completely() {
        let t1 = table1();
        assert_eq!(t1.lines().count(), 2 + TABLE1_TOOLS.len());
        assert!(t1.contains("Pingmesh"));
        let t2 = table2();
        assert_eq!(t2.lines().count(), 1 + DataSource::ALL.len());
        assert!(t2.contains("sFlow"));
        let t3 = table3();
        assert!(t3.contains("R_k"));
        assert!(t3.contains("break ratio"));
    }
}
