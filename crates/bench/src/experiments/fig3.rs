//! Figure 3: network-failure coverage of each monitoring data source.
//!
//! A census of injected failures is run against each Table-2 tool in
//! isolation; coverage is the fraction of must-detect failures the tool
//! alerted on at all. The paper's bar chart spans 3%–84%; the shape to
//! reproduce is the *spread* (SNMP/syslog high, route monitoring/PTP
//! marginal) and that no tool reaches 100%.

use crate::ExperimentScale;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use skynet_baseline::single_source::{combined_coverage, source_coverage};
use skynet_failure::{Injector, Scenario};
use skynet_model::{DataSource, SimDuration, SimTime};
use skynet_telemetry::TelemetryConfig;
use skynet_topology::{generate, GeneratorConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-source measured and paper coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Source.
    pub source: DataSource,
    /// Measured coverage over the census.
    pub measured: f64,
    /// Our digitization of the paper's bar.
    pub paper: f64,
}

/// The Fig. 3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Rows, Table-2 order.
    pub rows: Vec<Fig3Row>,
    /// Coverage of all sources combined.
    pub combined: f64,
    /// Census size.
    pub failures: usize,
}

/// Builds the failure census: many spaced failures on one topology.
pub fn census(scale: ExperimentScale) -> Scenario {
    let (failures, topo_cfg) = match scale {
        ExperimentScale::Small => (40usize, GeneratorConfig::small()),
        ExperimentScale::Paper => (160, GeneratorConfig::medium()),
    };
    let topo = Arc::new(generate(&topo_cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut inj = Injector::new(topo);
    for i in 0..failures {
        inj.random(
            &mut rng,
            SimTime::from_mins(i as u64 * 12),
            SimDuration::from_mins(6),
        );
    }
    inj.finish(SimTime::from_mins(failures as u64 * 12))
}

/// Runs the experiment.
pub fn run(scale: ExperimentScale) -> Fig3Result {
    let scenario = census(scale);
    let cfg = TelemetryConfig::quiet();
    let rows: Vec<Fig3Row> = DataSource::ALL
        .iter()
        .map(|&source| {
            let c = source_coverage(&scenario, source, &cfg);
            Fig3Row {
                source,
                measured: c.coverage(),
                paper: source.paper_coverage(),
            }
        })
        .collect();
    let combined = combined_coverage(&scenario, &DataSource::ALL, &cfg).coverage();
    Fig3Result {
        rows,
        combined,
        failures: scenario.must_detect().count(),
    }
}

impl Fig3Result {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 3 — single-source failure coverage over {} must-detect failures\n{:<22} {:>9} {:>9}\n",
            self.failures, "source", "measured", "paper"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<22} {:>8.0}% {:>8.0}%",
                r.source.name(),
                r.measured * 100.0,
                r.paper * 100.0
            );
        }
        let _ = writeln!(s, "{:<22} {:>8.0}%", "ALL COMBINED", self.combined * 100.0);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_shape_matches_the_paper() {
        let r = run(ExperimentScale::Small);
        let get = |s: DataSource| r.rows.iter().find(|row| row.source == s).unwrap().measured;
        // No tool is complete; the union beats every single tool.
        assert!(r.rows.iter().all(|row| row.measured < 1.0));
        assert!(r.combined >= r.rows.iter().map(|x| x.measured).fold(0.0, f64::max));
        // The paper's ordering extremes hold.
        assert!(get(DataSource::Snmp) > get(DataSource::RouteMonitoring));
        assert!(get(DataSource::Syslog) > get(DataSource::Ptp));
        // Strong tools are strong, weak tools weak (coarse bands).
        assert!(
            get(DataSource::Snmp) > 0.5,
            "snmp {}",
            get(DataSource::Snmp)
        );
        assert!(
            get(DataSource::RouteMonitoring) < 0.2,
            "route {}",
            get(DataSource::RouteMonitoring)
        );
    }
}
