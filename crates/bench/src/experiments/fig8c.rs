//! Figure 8c: locating time vs number of alerts.
//!
//! The locator ingests preprocessed floods of growing size; the paper
//! reports under 10 seconds at ~40k alerts with a positive correlation to
//! volume. (Absolute numbers depend on hardware; the shape — monotone
//! growth, well under the minute-level SLA — is the target.)

use crate::corpus::severe_cable_cut;
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::locator::{Locator, LocatorConfig};
use skynet_core::{Preprocessor, PreprocessorConfig, SyslogClassifier};
use skynet_model::{SimTime, StructuredAlert};
use skynet_telemetry::tools::syslog::labeled_corpus;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::{GeneratorConfig, Topology};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8cPoint {
    /// Structured alerts ingested.
    pub alerts: usize,
    /// Wall-clock locating time in seconds.
    pub seconds: f64,
    /// Incidents found.
    pub incidents: usize,
}

/// The Fig. 8c reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8cResult {
    /// Points, ascending alert count.
    pub points: Vec<Fig8cPoint>,
}

/// Builds a large structured-alert flood by replaying a severe failure
/// with heavy noise and cycling it to reach `target` alerts.
pub fn build_flood(target: usize) -> (Arc<Topology>, Vec<StructuredAlert>) {
    build_flood_on(GeneratorConfig::small(), target)
}

/// [`build_flood`] on an explicit topology scale — the `--devices N`
/// knob routes here so the sweep can run toward the paper's O(10^5)
/// network instead of the default test-sized one.
pub fn build_flood_on(
    topology: GeneratorConfig,
    target: usize,
) -> (Arc<Topology>, Vec<StructuredAlert>) {
    let scenario = severe_cable_cut(topology, 77);
    let cfg = TelemetryConfig {
        noise_per_hour: 50_000.0,
        ..TelemetryConfig::default()
    };
    let mut suite = TelemetrySuite::standard(scenario.topology(), cfg);
    let run = suite.run(&scenario);
    // Preprocess through a trained classifier so large `--devices N` sweeps
    // drive the symbol-interned matcher and striped memo, not a stub path.
    let classifier = Arc::new(SyslogClassifier::train(&labeled_corpus(40, 7), 3, 8));
    let mut pp = Preprocessor::new(PreprocessorConfig::default(), Some(classifier));
    let base = pp.process_batch(&run.alerts);
    assert!(!base.is_empty());
    // Cycle the window to reach the target volume, shifting timestamps so
    // alerts stay temporally plausible.
    let window = scenario.horizon();
    let mut alerts = Vec::with_capacity(target);
    let mut cycle = 0u64;
    'outer: loop {
        for a in &base {
            let mut shifted = a.clone();
            let offset = skynet_model::SimDuration::from_millis(cycle * window.as_millis());
            shifted.first_seen += offset;
            shifted.last_seen += offset;
            alerts.push(shifted);
            if alerts.len() >= target {
                break 'outer;
            }
        }
        cycle += 1;
    }
    (Arc::clone(scenario.topology()), alerts)
}

/// Times the locator over `alerts`.
pub fn time_locating(topo: &Arc<Topology>, alerts: &[StructuredAlert]) -> (f64, usize) {
    let mut locator = Locator::new(topo, LocatorConfig::default());
    let horizon = alerts
        .iter()
        .map(|a| a.last_seen)
        .max()
        .unwrap_or(SimTime::ZERO)
        + skynet_model::SimDuration::from_mins(20);
    let start = Instant::now();
    let incidents = locator.process_batch(alerts, horizon);
    (start.elapsed().as_secs_f64(), incidents.len())
}

/// Runs the sweep.
pub fn run(scale: ExperimentScale) -> Fig8cResult {
    run_with_devices(scale, None)
}

/// Runs the sweep on a flood replayed over a `devices`-sized topology
/// (`None` keeps the default test-sized network).
pub fn run_with_devices(scale: ExperimentScale, devices: Option<usize>) -> Fig8cResult {
    let sizes: &[usize] = match scale {
        ExperimentScale::Small => &[1_000, 4_000, 8_000],
        ExperimentScale::Paper => &[5_000, 10_000, 20_000, 40_000],
    };
    let topology = devices.map_or_else(GeneratorConfig::small, GeneratorConfig::sized);
    let (topo, flood) = build_flood_on(topology, *sizes.last().expect("sizes non-empty"));
    let points = sizes
        .iter()
        .map(|&n| {
            let (seconds, incidents) = time_locating(&topo, &flood[..n]);
            Fig8cPoint {
                alerts: n,
                seconds,
                incidents,
            }
        })
        .collect();
    Fig8cResult { points }
}

impl Fig8cResult {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 8c — locating time vs alert count\n{:>10} {:>10} {:>10}\n",
            "alerts", "seconds", "incidents"
        );
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:>10} {:>10.3} {:>10}",
                p.alerts, p.seconds, p.incidents
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locating_is_fast_and_grows_with_volume() {
        let r = run(ExperimentScale::Small);
        assert_eq!(r.points.len(), 3);
        // The paper's bound: well under 10 s even at the largest sweep
        // point (ours are smaller, so the bound holds with margin). Debug
        // builds are ~10x slower and tests may share the machine with
        // benches, so the bound is relaxed there; the release-mode
        // `paper_report fig8c` run checks the real number.
        let bound = if cfg!(debug_assertions) { 120.0 } else { 10.0 };
        for p in &r.points {
            assert!(p.seconds < bound, "{p:?}");
        }
        // Positive correlation: the largest flood takes at least as long
        // as the smallest.
        assert!(
            r.points.last().unwrap().seconds >= r.points[0].seconds * 0.8,
            "{:?}",
            r.points
        );
        assert!(r.points.iter().all(|p| p.incidents > 0));
    }
}
