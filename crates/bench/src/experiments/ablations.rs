//! Design-choice ablations (DESIGN.md): the knobs this reproduction had to
//! choose beyond the paper's text, each toggled against production.
//!
//! - **quorum rooting off** (`root_quorum = 1.0`): plain deepest-common-
//!   ancestor rooting — stray broad alerts widen incident scopes.
//! - **topology connectivity off**: only hierarchical containment and
//!   sibling edges group alerts.
//! - **no preprocessing**: consolidation disabled; measures the §6.2
//!   claim that locating degrades without the preprocessor.

use crate::accuracy::{score_episode, Accuracy};
use crate::experiments::{pct, PreparedCorpus};
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_baseline::Ablation;
use skynet_core::PipelineConfig;
use std::fmt::Write as _;
use std::time::Instant;

/// One ablation's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Accuracy over the corpus.
    pub accuracy: Accuracy,
    /// Mean incident-root depth (deeper = more precise localization).
    pub mean_root_depth: f64,
    /// Total wall-clock analysis seconds over the corpus.
    pub analysis_secs: f64,
}

/// The ablation sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationsResult {
    /// Rows: production first.
    pub rows: Vec<AblationRow>,
}

/// The variants under test.
pub fn variants() -> Vec<Ablation> {
    let mut no_quorum = PipelineConfig::production();
    no_quorum.locator.root_quorum = 1.0;
    vec![
        Ablation::production(),
        Ablation {
            label: "dca-rooting".into(),
            config: no_quorum,
        },
        Ablation::no_topology_connectivity(),
        Ablation::no_preprocessing(),
    ]
}

/// Runs the sweep on a prepared corpus.
pub fn run_on(prepared: &PreparedCorpus) -> AblationsResult {
    let rows = variants()
        .into_iter()
        .map(|ablation| {
            let skynet = prepared.skynet(ablation.config.clone());
            let mut accuracy = Accuracy::default();
            let mut depth_sum = 0usize;
            let mut depth_n = 0usize;
            let start = Instant::now();
            for idx in 0..prepared.len() {
                let report = prepared.analyze(&skynet, idx, None);
                let incidents: Vec<_> = report
                    .incidents
                    .iter()
                    .map(|s| s.incident.clone())
                    .collect();
                for i in &incidents {
                    depth_sum += i.root.depth();
                    depth_n += 1;
                }
                accuracy.merge(score_episode(
                    &prepared.corpus.episodes[idx].scenario,
                    &incidents,
                ));
            }
            AblationRow {
                label: ablation.label,
                accuracy,
                mean_root_depth: if depth_n == 0 {
                    0.0
                } else {
                    depth_sum as f64 / depth_n as f64
                },
                analysis_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect();
    AblationsResult { rows }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> AblationsResult {
    run_on(&crate::experiments::prepare(scale))
}

impl AblationsResult {
    /// Row by label.
    pub fn row(&self, label: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Design-choice ablations (DESIGN.md)\n{:<16} {:>9} {:>8} {:>8} {:>11} {:>10}\n",
            "variant", "incidents", "FP", "FN", "root depth", "analyze(s)"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<16} {:>9} {:>8} {:>8} {:>11.2} {:>10.2}",
                r.label,
                r.accuracy.incidents,
                pct(r.accuracy.fp_rate()),
                pct(r.accuracy.fn_rate()),
                r.mean_root_depth,
                r.analysis_secs,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_rooting_localizes_deeper_without_hurting_recall() {
        let r = run(ExperimentScale::Small);
        let production = r.row("2/1+2/5").unwrap();
        let dca = r.row("dca-rooting").unwrap();
        assert!(
            production.mean_root_depth >= dca.mean_root_depth,
            "quorum rooting must localize at least as deep: {} vs {}",
            production.mean_root_depth,
            dca.mean_root_depth
        );
        assert!(production.accuracy.fn_rate() <= dca.accuracy.fn_rate() + 0.1);
    }

    #[test]
    fn no_preprocessing_costs_analysis_time() {
        let r = run(ExperimentScale::Small);
        let production = r.row("2/1+2/5").unwrap();
        let raw = r.row("no-preprocess").unwrap();
        // §6.2: "Without the preprocessor, the time to locate failures can
        // extend" — the unconsolidated stream is strictly more work.
        assert!(
            raw.analysis_secs > production.analysis_secs,
            "no-preprocess {} vs production {}",
            raw.analysis_secs,
            production.analysis_secs
        );
        // The unconsolidated stream reports at least as many incidents
        // (everything sporadic passes the gates).
        assert!(raw.accuracy.incidents >= production.accuracy.incidents);
    }
}
