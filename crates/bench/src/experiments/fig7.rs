//! Figure 7: the reachability-matrix focal point — the location zoom-in
//! of §4.3 and the fine-grained localization case of §5.1.

use crate::experiments::horizon_after;
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::evaluator::{ReachabilityMatrix, ZoomMethod};
use skynet_core::{PipelineConfig, SkyNet};
use skynet_failure::Injector;
use skynet_model::{LocationLevel, LocationPath, SimDuration, SimTime};
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::{generate, GeneratorConfig};
use std::sync::Arc;

/// The Fig. 7 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Rendered matrix (Fig. 7's table).
    pub matrix_text: String,
    /// Detected focal points at cluster granularity.
    pub focal_points: Vec<LocationPath>,
    /// The ground-truth lossy cluster ("Cluster ii").
    pub victim: LocationPath,
    /// The top incident's root before zoom-in.
    pub incident_root: LocationPath,
    /// The zoomed location.
    pub zoomed: LocationPath,
    /// How the zoom was obtained.
    pub method: ZoomMethod,
}

/// Runs the experiment: a silent gray failure makes every leaf of one
/// cluster drop packets — Fig. 7's situation, where traffic to *and* from
/// one cluster is lossy and the dark row+column pinpoint it.
pub fn run(scale: ExperimentScale) -> Fig7Result {
    let topo_cfg = match scale {
        ExperimentScale::Small => GeneratorConfig::small(),
        ExperimentScale::Paper => GeneratorConfig::medium(),
    };
    let topo = Arc::new(generate(&GeneratorConfig {
        seed: 9,
        ..topo_cfg
    }));
    // "Cluster ii": the second cluster of the first site.
    let victim = topo.clusters()[1].clone();
    let mut inj = Injector::new(Arc::clone(&topo));
    for &leaf in topo.agg_group(&victim).to_vec().iter() {
        inj.device_hardware(
            leaf,
            SimTime::from_mins(3),
            SimDuration::from_mins(12),
            0.15,
            false, // silent: only behaviour monitoring can see it
        );
    }
    let scenario = inj.finish(SimTime::from_mins(22));
    let mut suite = TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default());
    let run = suite.run(&scenario);
    let training = skynet_telemetry::tools::syslog::labeled_corpus(40, 9);
    let skynet = SkyNet::builder(scenario.topology())
        .config(PipelineConfig::production())
        .training(&training)
        .build();
    let report = skynet.analyze(&run.alerts, &run.ping, horizon_after(&scenario));
    let top = report
        .incidents
        .first()
        .expect("the cable cut must produce an incident");

    let matrix = ReachabilityMatrix::build(
        &run.ping,
        top.incident.first_seen,
        top.incident.last_seen + skynet_model::SimDuration::from_secs(1),
        LocationLevel::Cluster,
    );
    Fig7Result {
        matrix_text: matrix.render(),
        focal_points: matrix.focal_points(1.5, 0.01),
        victim,
        incident_root: top.incident.root.clone(),
        zoomed: top.zoom.location.clone(),
        method: top.zoom.method,
    }
}

impl Fig7Result {
    /// Rendering: matrix plus localization summary.
    pub fn render(&self) -> String {
        format!(
            "Fig. 7 — reachability matrix during a silent cluster gray failure\n{}\nvictim cluster: {}\nfocal points: {:?}\nincident root: {}\nzoomed to: {} via {:?}\n",
            self.matrix_text,
            self.victim,
            self.focal_points
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            self.incident_root,
            self.zoomed,
            self.method
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_zooms_into_the_lossy_cluster() {
        let r = run(ExperimentScale::Small);
        // The dark row+column pinpoint the victim (Fig. 7's Cluster ii).
        assert!(
            r.focal_points.contains(&r.victim),
            "victim {} not among focal points {:?}",
            r.victim,
            r.focal_points
        );
        // The zoom refines the incident to (or into) the victim cluster.
        assert!(r.incident_root.contains(&r.zoomed));
        assert!(
            r.zoomed == r.victim || r.victim.contains(&r.zoomed),
            "zoomed {} vs victim {}",
            r.zoomed,
            r.victim
        );
        assert!(r.matrix_text.contains("Cluster"));
    }
}
