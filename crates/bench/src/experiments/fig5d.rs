//! Figure 5d: correlation between incidents and the three alert classes.
//!
//! The paper's bars: failure incidents are a minority of all incidents;
//! failure alerts are a small share of all alerts; yet nearly every
//! failure incident contains failure alerts — the correlation that makes
//! failure alerts the most authoritative detection signal (§4.2).

use crate::experiments::{pct, PreparedCorpus};
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_core::PipelineConfig;
use skynet_model::AlertClass;
use std::fmt::Write as _;

/// The Fig. 5d reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5dResult {
    /// Incidents reported in total.
    pub all_incidents: usize,
    /// Incidents whose alert mass traces to an injected failure.
    pub failure_incidents: usize,
    /// Share of structured alert groups per class (failure, abnormal,
    /// root-cause) — each consolidated alert counted once, since the raw
    /// repeat volume (ping probes every 2 s) would swamp the statistic.
    pub alert_class_share: [f64; 3],
    /// Fraction of *failure incidents* containing ≥1 alert of each class.
    pub failure_incident_class_presence: [f64; 3],
}

/// Runs the experiment on a prepared corpus.
pub fn run_on(prepared: &PreparedCorpus) -> Fig5dResult {
    let skynet = prepared.skynet(PipelineConfig::production());
    let mut all_incidents = 0usize;
    let mut failure_incidents = 0usize;
    let mut class_counts = [0u64; 3];
    let mut presence = [0usize; 3];

    for idx in 0..prepared.len() {
        let report = prepared.analyze(&skynet, idx, None);
        for scored in &report.incidents {
            let incident = &scored.incident;
            all_incidents += 1;
            let caused: u64 = incident
                .alerts
                .iter()
                .filter(|a| a.cause.is_some())
                .map(|a| u64::from(a.count))
                .sum();
            let noise: u64 = incident
                .alerts
                .iter()
                .filter(|a| a.cause.is_none())
                .map(|a| u64::from(a.count))
                .sum();
            let is_failure = caused > 0 && caused >= noise;
            for (i, class) in [
                AlertClass::Failure,
                AlertClass::Abnormal,
                AlertClass::RootCause,
            ]
            .iter()
            .enumerate()
            {
                let n: u64 = incident
                    .alerts
                    .iter()
                    .filter(|a| a.class() == *class)
                    .count() as u64;
                class_counts[i] += n;
                if is_failure && n > 0 {
                    presence[i] += 1;
                }
            }
            if is_failure {
                failure_incidents += 1;
            }
        }
    }

    let total_alerts: u64 = class_counts.iter().sum();
    let share = |n: u64| {
        if total_alerts == 0 {
            0.0
        } else {
            n as f64 / total_alerts as f64
        }
    };
    let presence_frac = |n: usize| {
        if failure_incidents == 0 {
            0.0
        } else {
            n as f64 / failure_incidents as f64
        }
    };
    Fig5dResult {
        all_incidents,
        failure_incidents,
        alert_class_share: [
            share(class_counts[0]),
            share(class_counts[1]),
            share(class_counts[2]),
        ],
        failure_incident_class_presence: [
            presence_frac(presence[0]),
            presence_frac(presence[1]),
            presence_frac(presence[2]),
        ],
    }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> Fig5dResult {
    run_on(&crate::experiments::prepare(scale))
}

impl Fig5dResult {
    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 5d — incidents vs alert classes\n");
        let _ = writeln!(
            s,
            "failure incidents / all incidents: {} / {} ({})",
            self.failure_incidents,
            self.all_incidents,
            pct(self.failure_incidents as f64 / self.all_incidents.max(1) as f64)
        );
        let labels = ["failure", "abnormal", "root-cause"];
        for (i, l) in labels.iter().enumerate() {
            let _ = writeln!(
                s,
                "{l:<11} alerts share: {:>6}   present in failure incidents: {:>6}",
                pct(self.alert_class_share[i]),
                pct(self.failure_incident_class_presence[i]),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_alerts_are_rare_but_accompany_failure_incidents() {
        let r = run(ExperimentScale::Small);
        assert!(r.all_incidents > 0, "corpus must produce incidents");
        assert!(r.failure_incidents > 0);
        // Fig. 5d's shape: failure alerts are a minority of the flood...
        assert!(
            r.alert_class_share[0] < 0.5,
            "failure share {}",
            r.alert_class_share[0]
        );
        // ...but nearly all failure incidents contain them.
        assert!(
            r.failure_incident_class_presence[0] > 0.7,
            "presence {}",
            r.failure_incident_class_presence[0]
        );
    }
}
