//! One module per table/figure of the paper's evaluation.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig3;
pub mod fig5d;
pub mod fig7;
pub mod fig8a;
pub mod fig8b;
pub mod fig8c;
pub mod fig9;
pub mod sec62;
pub mod tables;

use crate::corpus::{build_corpus, run_episode, CorpusConfig, EpisodeCorpus};
use crate::ExperimentScale;
use skynet_core::{AnalysisReport, PipelineConfig, SkyNet};
use skynet_model::{AlertKind, SimTime};
use skynet_telemetry::{TelemetryConfig, TelemetryRun};

/// A corpus with its telemetry runs precomputed (telemetry simulation is
/// the expensive part; pipeline ablations reuse the same floods).
#[derive(Debug)]
pub struct PreparedCorpus {
    /// The corpus.
    pub corpus: EpisodeCorpus,
    /// One telemetry run per episode, same order.
    pub runs: Vec<TelemetryRun>,
    /// Labelled syslog corpus for classifier training.
    pub training: Vec<(String, AlertKind)>,
    /// The telemetry config used.
    pub telemetry: TelemetryConfig,
}

/// Builds and simulates the accuracy corpus for a scale.
pub fn prepare(scale: ExperimentScale) -> PreparedCorpus {
    prepare_sized(scale, None)
}

/// [`prepare`] with the corpus topology regenerated at approximately
/// `devices` total devices (`None` keeps the scale's preset). This is
/// the `paper_report --devices N` knob: the paper's network is O(10^5)
/// devices, while the presets stay laptop-sized.
pub fn prepare_sized(scale: ExperimentScale, devices: Option<usize>) -> PreparedCorpus {
    let mut cfg = match scale {
        ExperimentScale::Small => CorpusConfig::small(),
        ExperimentScale::Paper => CorpusConfig::paper(),
    };
    if let Some(n) = devices {
        cfg.topology = skynet_topology::GeneratorConfig::sized(n);
    }
    let telemetry = cfg.telemetry();
    prepare_with(&cfg, &telemetry)
}

/// Builds and simulates a corpus with explicit configs.
pub fn prepare_with(cfg: &CorpusConfig, telemetry: &TelemetryConfig) -> PreparedCorpus {
    let corpus = build_corpus(cfg);
    let runs = corpus
        .episodes
        .iter()
        .map(|e| run_episode(e, telemetry))
        .collect();
    PreparedCorpus {
        corpus,
        runs,
        training: skynet_telemetry::tools::syslog::labeled_corpus(40, cfg.seed),
        telemetry: telemetry.clone(),
    }
}

impl PreparedCorpus {
    /// Builds a SkyNet pipeline (classifier trained on the corpus's
    /// labelled history) for a config.
    pub fn skynet(&self, config: PipelineConfig) -> SkyNet {
        SkyNet::builder(&self.corpus.topology)
            .config(config)
            .training(&self.training)
            .build()
    }

    /// Analyzes one episode with a pipeline, optionally restricted to a
    /// source subset (the Fig. 8a ablation filters the recorded flood).
    pub fn analyze(
        &self,
        skynet: &SkyNet,
        index: usize,
        sources: Option<&[skynet_model::DataSource]>,
    ) -> AnalysisReport {
        let episode = &self.corpus.episodes[index];
        let run = &self.runs[index];
        let horizon = episode.scenario.horizon() + skynet_model::SimDuration::from_mins(20);
        match sources {
            None => skynet.analyze(&run.alerts, &run.ping, horizon),
            Some(set) => {
                let filtered: Vec<_> = run
                    .alerts
                    .iter()
                    .filter(|a| set.contains(&a.source))
                    .cloned()
                    .collect();
                let ping = if set.contains(&skynet_model::DataSource::Ping) {
                    run.ping.clone()
                } else {
                    skynet_model::PingLog::new()
                };
                skynet.analyze(&filtered, &ping, horizon)
            }
        }
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.corpus.episodes.len()
    }

    /// True when the corpus has no episodes.
    pub fn is_empty(&self) -> bool {
        self.corpus.episodes.is_empty()
    }
}

/// Analysis horizon helper used by one-off scenarios.
pub fn horizon_after(scenario: &skynet_failure::Scenario) -> SimTime {
    scenario.horizon() + skynet_model::SimDuration::from_mins(20)
}

/// Formats a `[0, 1]` ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
