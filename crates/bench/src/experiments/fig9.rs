//! Figure 9: accuracy under different incident-generation parameters.
//!
//! Ten configurations sweep the `A/B+C/D` thresholds plus the
//! `type+location` counting baseline. The paper's findings to reproduce:
//! `type+location` explodes false positives (~70%); disabling any clause
//! raises false negatives; the production `2/1+2/5` gives the lowest false
//! positives among the zero-false-negative settings.

use crate::accuracy::{score_episode, Accuracy};
use crate::experiments::{pct, PreparedCorpus};
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_baseline::figure9_configs;
use std::fmt::Write as _;

/// One configuration's accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// X-axis label (`type+location`, `2/1+2/5`, …).
    pub label: String,
    /// Accuracy over the corpus.
    pub accuracy: Accuracy,
}

/// The Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Rows, figure order.
    pub rows: Vec<Fig9Row>,
}

/// Runs the sweep on a prepared corpus.
pub fn run_on(prepared: &PreparedCorpus) -> Fig9Result {
    let rows = figure9_configs()
        .into_iter()
        .map(|ablation| {
            let skynet = prepared.skynet(ablation.config.clone());
            let mut accuracy = Accuracy::default();
            for idx in 0..prepared.len() {
                let report = prepared.analyze(&skynet, idx, None);
                let incidents: Vec<_> = report
                    .incidents
                    .iter()
                    .map(|s| s.incident.clone())
                    .collect();
                accuracy.merge(score_episode(
                    &prepared.corpus.episodes[idx].scenario,
                    &incidents,
                ));
            }
            Fig9Row {
                label: ablation.label,
                accuracy,
            }
        })
        .collect();
    Fig9Result { rows }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> Fig9Result {
    run_on(&crate::experiments::prepare(scale))
}

impl Fig9Result {
    /// Row by label.
    pub fn row(&self, label: &str) -> Option<&Fig9Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The §9 "better thresholds" selection applied to this sweep: the
    /// lowest-FN, then lowest-FP, then strictest configuration (excluding
    /// the `type+location` counting baseline, which is not a threshold).
    pub fn best_thresholds(&self) -> Option<skynet_core::locator::Thresholds> {
        let scores: Vec<skynet_baseline::ThresholdScore> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.label
                    .parse()
                    .ok()
                    .map(|thresholds| skynet_baseline::ThresholdScore {
                        thresholds,
                        fp_rate: r.accuracy.fp_rate(),
                        fn_rate: r.accuracy.fn_rate(),
                    })
            })
            .collect();
        skynet_baseline::pick_best(&scores).map(|s| s.thresholds)
    }

    /// Table rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 9 — accuracy vs incident thresholds\n{:<15} {:>10} {:>10} {:>10}\n",
            "threshold", "incidents", "FP rate", "FN rate"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<15} {:>10} {:>10} {:>10}",
                r.label,
                r.accuracy.incidents,
                pct(r.accuracy.fp_rate()),
                pct(r.accuracy.fn_rate()),
            );
        }
        if let Some(best) = self.best_thresholds() {
            let _ = writeln!(s, "data-driven pick (§9 tuning rule): {best}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_thresholds_balance_fp_and_fn() {
        let r = run(ExperimentScale::Small);
        assert_eq!(r.rows.len(), 10);
        let production = r.row("2/1+2/5").unwrap();
        let type_loc = r.row("type+location").unwrap();

        // type+location inflates false positives well above production.
        assert!(
            type_loc.accuracy.fp_rate() > production.accuracy.fp_rate(),
            "type+location fp {} vs production {}",
            type_loc.accuracy.fp_rate(),
            production.accuracy.fp_rate()
        );
        // Production keeps false negatives (near) zero.
        assert!(
            production.accuracy.fn_rate() < 0.15,
            "production FN {}",
            production.accuracy.fn_rate()
        );
        // Tighter thresholds (2/1+2/6) can only match or miss more.
        let tight = r.row("2/1+2/6").unwrap();
        assert!(tight.accuracy.fn_rate() >= production.accuracy.fn_rate());
        // Looser failure clause (1/1+2/5) can only match or report more
        // incidents.
        let loose = r.row("1/1+2/5").unwrap();
        assert!(loose.accuracy.incidents >= production.accuracy.incidents);

        // The §9 tuning rule picks a zero-ish-FN config at least as good
        // as production on both axes.
        let best = r.best_thresholds().expect("grid is non-empty");
        let best_row = r.row(&best.to_string()).unwrap();
        assert!(best_row.accuracy.fn_rate() <= production.accuracy.fn_rate());
        assert!(best_row.accuracy.fp_rate() <= production.accuracy.fp_rate());
    }
}
