//! Figure 10: the evaluator's effect end to end.
//!
//! - **10a** — severity scores of all incidents vs failure incidents
//!   (scores capped at 100 as in the paper's plot).
//! - **10b** — incidents per month before and after the severity-10
//!   filter (the paper: almost two orders of magnitude fewer, under one
//!   per day).
//! - **10c** — mitigation time before vs after SkyNet (medians 736→147 s
//!   and maxima 14,028→1,920 s in the paper; both >80% reductions).

use crate::experiments::{pct, PreparedCorpus};
use crate::ExperimentScale;
use serde::{Deserialize, Serialize};
use skynet_baseline::{manual_mitigation_secs, skynet_mitigation_secs, MitigationContext};
use skynet_core::{PipelineConfig, ScoredIncident};
use skynet_model::AlertClass;
use std::fmt::Write as _;

/// Five-number summary of a score/time distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary (empty input gives all zeros).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
            };
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
        Summary {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("non-empty"),
        }
    }
}

/// The combined Fig. 10 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// 10a: score distribution of every incident (capped at 100).
    pub all_scores: Summary,
    /// 10a: score distribution of failure-backed incidents.
    pub failure_scores: Summary,
    /// 10b: per month `(all incidents, severe incidents ≥ threshold)`.
    pub monthly: Vec<(u32, usize, usize)>,
    /// 10c: manual mitigation seconds per failure incident.
    pub manual: Summary,
    /// 10c: SkyNet-assisted mitigation seconds per failure incident.
    pub assisted: Summary,
    /// The severity threshold used.
    pub threshold: f64,
}

fn is_failure_backed(s: &ScoredIncident) -> bool {
    let caused: u64 = s
        .incident
        .alerts
        .iter()
        .filter(|a| a.cause.is_some())
        .map(|a| u64::from(a.count))
        .sum();
    let noise: u64 = s
        .incident
        .alerts
        .iter()
        .filter(|a| a.cause.is_none())
        .map(|a| u64::from(a.count))
        .sum();
    caused > 0 && caused >= noise
}

/// Runs the experiment on a prepared corpus.
pub fn run_on(prepared: &PreparedCorpus) -> Fig10Result {
    let config = PipelineConfig::production();
    let threshold = config.evaluator.severity_threshold;
    let skynet = prepared.skynet(config);

    let mut all_scores = Vec::new();
    let mut failure_scores = Vec::new();
    let mut monthly: std::collections::BTreeMap<u32, (usize, usize)> = Default::default();
    let mut manual = Vec::new();
    let mut assisted = Vec::new();

    for idx in 0..prepared.len() {
        let episode = &prepared.corpus.episodes[idx];
        let report = prepared.analyze(&skynet, idx, None);
        let raw_alerts = report.preprocess.raw;
        let concurrent = report.incidents.len();
        let month = monthly.entry(episode.month).or_insert((0, 0));
        for scored in &report.incidents {
            let score = scored.score().min(100.0);
            all_scores.push(score);
            month.0 += 1;
            if scored.score() >= threshold {
                month.1 += 1;
            }
            if is_failure_backed(scored) {
                failure_scores.push(score);
                let ctx = MitigationContext {
                    raw_alerts,
                    known_failure: report.sop_for(scored.incident.id).is_some(),
                    root_cause_alert_present: scored.incident.has_class(AlertClass::RootCause),
                    concurrent_incidents: concurrent,
                    zoomed: scored.incident.root != scored.zoom.location,
                    needs_field_repair: scored
                        .incident
                        .causes()
                        .first()
                        .map(|&id| {
                            episode.scenario.event(id).category
                                == skynet_failure::RootCauseCategory::Link
                        })
                        .unwrap_or(false),
                };
                manual.push(manual_mitigation_secs(&ctx));
                assisted.push(skynet_mitigation_secs(&ctx));
            }
        }
    }

    Fig10Result {
        all_scores: Summary::of(&all_scores),
        failure_scores: Summary::of(&failure_scores),
        monthly: monthly.into_iter().map(|(m, (a, s))| (m, a, s)).collect(),
        manual: Summary::of(&manual),
        assisted: Summary::of(&assisted),
        threshold,
    }
}

/// Runs at a scale, preparing its own corpus.
pub fn run(scale: ExperimentScale) -> Fig10Result {
    run_on(&crate::experiments::prepare(scale))
}

impl Fig10Result {
    /// Median mitigation-time reduction in `[0, 1]`.
    pub fn median_reduction(&self) -> f64 {
        if self.manual.median <= 0.0 {
            return 0.0;
        }
        1.0 - self.assisted.median / self.manual.median
    }

    /// Maximum mitigation-time reduction in `[0, 1]`.
    pub fn max_reduction(&self) -> f64 {
        if self.manual.max <= 0.0 {
            return 0.0;
        }
        1.0 - self.assisted.max / self.manual.max
    }

    /// Table rendering of all three panels.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 10a — severity scores (capped at 100)\n");
        let row = |label: &str, x: &Summary| {
            format!(
                "{label:<20} min {:>6.1}  q1 {:>6.1}  median {:>6.1}  q3 {:>6.1}  max {:>6.1}\n",
                x.min, x.q1, x.median, x.q3, x.max
            )
        };
        s.push_str(&row("all incidents", &self.all_scores));
        s.push_str(&row("failure incidents", &self.failure_scores));

        let _ = writeln!(
            s,
            "\nFig. 10b — incidents per month (severity filter at {})",
            self.threshold
        );
        let _ = writeln!(s, "{:>6} {:>10} {:>10}", "month", "all", "severe");
        for &(m, all, severe) in &self.monthly {
            let _ = writeln!(s, "{m:>6} {all:>10} {severe:>10}");
        }

        let _ = writeln!(s, "\nFig. 10c — mitigation time (seconds)");
        s.push_str(&row("manual (before)", &self.manual));
        s.push_str(&row("SkyNet (after)", &self.assisted));
        let _ = writeln!(
            s,
            "median reduction {}, max reduction {} (paper: >80% on both)",
            pct(self.median_reduction()),
            pct(self.max_reduction())
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(Summary::of(&[]).max, 0.0);
    }

    #[test]
    fn figure10_shapes_hold() {
        let r = run(ExperimentScale::Small);
        // 10a: failure incidents score higher than the general population.
        assert!(
            r.failure_scores.median >= r.all_scores.median,
            "failure median {} vs all {}",
            r.failure_scores.median,
            r.all_scores.median
        );
        // 10b: the filter strictly reduces volume each month.
        for &(m, all, severe) in &r.monthly {
            assert!(severe <= all, "month {m}");
        }
        let total_all: usize = r.monthly.iter().map(|x| x.1).sum();
        let total_severe: usize = r.monthly.iter().map(|x| x.2).sum();
        assert!(total_severe < total_all);
        // 10c: both reductions beat 50% at test scale (paper reports >80%
        // at full scale; the small corpus has milder floods).
        assert!(
            r.median_reduction() > 0.5,
            "median reduction {}",
            r.median_reduction()
        );
        assert!(
            r.max_reduction() > 0.5,
            "max reduction {}",
            r.max_reduction()
        );
    }
}
