//! # skynet-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§6), regenerating the same rows and series from the
//! simulation substrate. The [`experiments`] modules produce serializable
//! result structs with a `render()` text form; the `paper_report` binary
//! prints any or all of them; the Criterion benches in `benches/` time the
//! computational kernels behind each figure.
//!
//! Scale: every experiment takes an [`ExperimentScale`]; `Small` keeps
//! everything test-sized, `Paper` approaches the paper's volumes (minutes
//! of wall time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod corpus;
pub mod experiments;

pub use accuracy::Accuracy;
pub use corpus::{CorpusConfig, Episode, EpisodeCorpus};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Seconds of wall time; used by tests and Criterion.
    Small,
    /// The paper-sized run used for EXPERIMENTS.md.
    Paper,
}

impl ExperimentScale {
    /// Parses `small` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(ExperimentScale::Small),
            "paper" | "full" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }
}
