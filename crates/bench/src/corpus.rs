//! Scenario corpora: the synthetic stand-in for the paper's 1.5 years of
//! production incidents.
//!
//! Continuous multi-month simulation at a 2-second telemetry tick is
//! wasteful — the network is healthy most of the time. A corpus is instead
//! a list of [`Episode`]s: independent failure windows (each a
//! [`Scenario`] of tens of minutes) tagged with a month, sharing one
//! topology. Quiet time between episodes contributes no alerts by
//! construction (background noise is simulated *within* each window).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use skynet_failure::{Injector, Scenario};
use skynet_model::{SimDuration, SimTime};
use skynet_telemetry::{TelemetryConfig, TelemetryRun, TelemetrySuite};
use skynet_topology::{generate, GeneratorConfig, Topology};
use std::sync::Arc;

/// One failure window.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Month index (1-based) the episode belongs to.
    pub month: u32,
    /// The injected window.
    pub scenario: Scenario,
}

/// Corpus parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Topology scale.
    pub topology: GeneratorConfig,
    /// Months covered.
    pub months: u32,
    /// Failure episodes per month.
    pub episodes_per_month: u32,
    /// Probability an episode contains a second, concurrent failure
    /// (the §5.1 "scene ranking" situation).
    pub concurrent_prob: f64,
    /// Length of each episode window.
    pub window: SimDuration,
    /// Failure duration within the window.
    pub failure_duration: SimDuration,
    /// Background noise rate for the telemetry runs (alerts/hour).
    pub noise_per_hour: f64,
    /// Probe glitch storms per hour (the Fig. 9 false-positive pressure).
    pub storms_per_hour: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// Test-sized corpus: 2 months × 6 episodes on the small topology.
    pub fn small() -> Self {
        CorpusConfig {
            topology: GeneratorConfig::small(),
            months: 2,
            episodes_per_month: 6,
            concurrent_prob: 0.2,
            window: SimDuration::from_mins(20),
            failure_duration: SimDuration::from_mins(8),
            noise_per_hour: 300.0,
            storms_per_hour: 3.0,
            seed: 17,
        }
    }

    /// Paper-sized corpus: 9 months × 24 episodes (Fig. 10's nine months,
    /// "hundreds of network events monthly" scaled to simulation size).
    pub fn paper() -> Self {
        CorpusConfig {
            topology: GeneratorConfig::medium(),
            months: 9,
            episodes_per_month: 24,
            concurrent_prob: 0.15,
            window: SimDuration::from_mins(25),
            failure_duration: SimDuration::from_mins(10),
            noise_per_hour: 600.0,
            storms_per_hour: 3.0,
            seed: 17,
        }
    }
}

impl CorpusConfig {
    /// The telemetry configuration matching this corpus's noise model.
    pub fn telemetry(&self) -> TelemetryConfig {
        TelemetryConfig {
            noise_per_hour: self.noise_per_hour,
            glitch_storms_per_hour: self.storms_per_hour,
            ..TelemetryConfig::default()
        }
    }
}

/// A generated corpus sharing one topology.
#[derive(Debug, Clone)]
pub struct EpisodeCorpus {
    /// The shared network.
    pub topology: Arc<Topology>,
    /// All failure windows, month-tagged.
    pub episodes: Vec<Episode>,
}

/// Builds a corpus: every episode gets one Fig. 1-weighted random failure
/// (sometimes two concurrent ones) in the middle of its window, and one
/// episode per month is the severe Internet-entry cable cut of §2.2 —
/// the failure class whose detection hinges on the path-probing sources
/// (the Fig. 8a mechanism).
pub fn build_corpus(cfg: &CorpusConfig) -> EpisodeCorpus {
    let topology = Arc::new(generate(&cfg.topology));
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let regions: Vec<_> = {
        let mut v: Vec<_> = topology.regions_with_entries().cloned().collect();
        v.sort();
        v
    };
    let mut episodes = Vec::new();
    for month in 1..=cfg.months {
        for e in 0..cfg.episodes_per_month {
            let mut inj = Injector::new(Arc::clone(&topology));
            let start = SimTime::from_mins(2);
            if e == 0 {
                let region = &regions[(month as usize - 1) % regions.len()];
                inj.entry_cable_cut(region, 0.5, start, cfg.failure_duration);
            } else {
                inj.random(&mut rng, start, cfg.failure_duration);
                if rng.gen_bool(cfg.concurrent_prob) {
                    inj.random(
                        &mut rng,
                        start + SimDuration::from_mins(1),
                        cfg.failure_duration,
                    );
                }
            }
            episodes.push(Episode {
                month,
                scenario: inj.finish(SimTime::ZERO + cfg.window),
            });
        }
    }
    EpisodeCorpus { topology, episodes }
}

/// Runs the full telemetry suite over one episode.
pub fn run_episode(episode: &Episode, telemetry: &TelemetryConfig) -> TelemetryRun {
    let mut suite = TelemetrySuite::standard(episode.scenario.topology(), telemetry.clone());
    suite.run(&episode.scenario)
}

/// The §2.2 severe failure: half the Internet entry circuits of a region
/// cut, on the given topology scale.
pub fn severe_cable_cut(topology: GeneratorConfig, seed: u64) -> Scenario {
    let topo = Arc::new(generate(&GeneratorConfig { seed, ..topology }));
    let region = topo
        .regions_with_entries()
        .min_by_key(|r| r.to_string())
        .expect("generator always creates entries")
        .clone();
    let mut inj = Injector::new(topo);
    inj.entry_cable_cut(
        &region,
        0.5,
        SimTime::from_mins(3),
        SimDuration::from_mins(15),
    );
    inj.finish(SimTime::from_mins(25))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_failure::RootCauseCategory;

    #[test]
    fn corpus_is_deterministic_and_sized_right() {
        let cfg = CorpusConfig::small();
        let a = build_corpus(&cfg);
        let b = build_corpus(&cfg);
        assert_eq!(
            a.episodes.len(),
            (cfg.months * cfg.episodes_per_month) as usize
        );
        assert_eq!(a.episodes.len(), b.episodes.len());
        for (x, y) in a.episodes.iter().zip(&b.episodes) {
            assert_eq!(x.month, y.month);
            assert_eq!(x.scenario.events(), y.scenario.events());
        }
    }

    #[test]
    fn some_episodes_are_concurrent() {
        let cfg = CorpusConfig::small();
        let c = build_corpus(&cfg);
        assert!(c.episodes.iter().any(|e| e.scenario.events().len() == 2));
    }

    #[test]
    fn severe_cable_cut_is_a_link_failure_at_region_scope() {
        let s = severe_cable_cut(GeneratorConfig::small(), 5);
        assert_eq!(s.events().len(), 1);
        let e = &s.events()[0];
        assert_eq!(e.category, RootCauseCategory::Link);
        assert!(e.severe);
        assert_eq!(e.epicenter.depth(), 1);
    }
}
