//! Fig. 8a bench: prints accuracy vs source count, then times analysis of
//! an episode under the smallest source set.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_bench::experiments::{self, fig8a};
use skynet_bench::ExperimentScale;
use skynet_core::PipelineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let prepared = experiments::prepare(ExperimentScale::Small);
    println!("{}", fig8a::run_on(&prepared).render());

    let skynet = prepared.skynet(PipelineConfig::production());
    let sets = fig8a::source_sets();
    let three = &sets[3].1;
    c.bench_function("fig8a/analyze_episode_three_sources", |b| {
        b.iter(|| black_box(prepared.analyze(&skynet, 0, Some(three))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
