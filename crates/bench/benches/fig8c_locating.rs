//! Fig. 8c bench: prints the locating-time sweep, then times the locator
//! at several flood sizes (the figure's x-axis as benchmark inputs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::experiments::fig8c;
use skynet_bench::ExperimentScale;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig8c::run(ExperimentScale::Small).render());

    let (topo, flood) = fig8c::build_flood(8_000);
    let mut group = c.benchmark_group("fig8c");
    for &n in &[1_000usize, 4_000, 8_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("locate", n), &n, |b, &n| {
            b.iter(|| black_box(fig8c::time_locating(&topo, &flood[..n])));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
