//! Serving-layer WAL bench: append throughput under the fsync policies,
//! the full acked-submit path through a running service, and the
//! group-commit-vs-per-append comparison under submitter contention.
//!
//! - `wal_append/writer/{never,every64}`: raw `WalWriter::append` — CRC
//!   framing + buffered write (+ periodic fsync) + segment rotation — over
//!   a realistic alert feed. This is the per-event durability overhead a
//!   non-batching ingest path pays before every ack.
//! - `wal_append/serve_submit`: the same feed through
//!   `ServiceHandle::submit` on a live service (queue admission + group
//!   commit + ack), the number an operator sizing a tenant feed sees.
//! - `wal_append/per_append/always8`: eight submitters contending on one
//!   mutex-guarded writer with `FsyncPolicy::Always` — the pre-group-commit
//!   discipline, one fsync per event.
//! - `wal_append/group_commit/always8`: the same eight submitters and the
//!   same `Always` policy through the service's group committer — one
//!   fsync per drained batch. The ratio of these two lanes is the headline
//!   amortization (CI asserts ≥5× via `skynet flood`).
//! - `wal_append/group_commit/tenants4x2`: the contention lane spread over
//!   four tenants, showing no tenant's ack waits on another's fsync.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_core::serve::{FsyncPolicy, WalEvent, WalWriter};
use skynet_core::{ObsConfig, Observability, PipelineConfig, ServeConfig, ServiceHandle, SkyNet};
use skynet_model::SimTime;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Submitter threads in the contention lanes.
const SUBMITTERS: usize = 8;

fn bench_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skynet-wal-bench-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drains every tenant's queue and snapshots, so the next timed iteration
/// starts from an empty service and a pruned WAL directory. Untimed.
fn drain_and_prune(service: &ServiceHandle, tenants: &[&str]) {
    for tenant in tenants {
        while service.tenant_health(tenant).expect("health").queued > 0 {
            std::thread::yield_now();
        }
        let _ = service.submit_tick(tenant, SimTime::from_mins(60));
    }
    service.snapshot().expect("snapshot");
}

/// One timed round of the group-commit contention lane: `SUBMITTERS`
/// threads submitting disjoint slices of `heavy`, spread over `tenants`.
fn group_commit_round(service: &ServiceHandle, tenants: &[&str], heavy: &[WalEvent]) -> Duration {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..SUBMITTERS {
            let tenant = tenants[worker % tenants.len()];
            scope.spawn(move || {
                for event in heavy.iter().skip(worker).step_by(SUBMITTERS) {
                    black_box(service.submit(tenant, event.clone()).expect("ack"));
                }
            });
        }
    });
    started.elapsed()
}

fn bench(c: &mut Criterion) {
    let scenario = severe_cable_cut(GeneratorConfig::small(), 21);
    let run =
        TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default()).run(&scenario);
    let events: Vec<WalEvent> = run
        .alerts
        .iter()
        .map(|a| WalEvent::Alert(a.clone()))
        .collect();

    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));

    for (name, fsync) in [
        ("never", FsyncPolicy::Never),
        ("every64", FsyncPolicy::EveryN(64)),
    ] {
        let dir = bench_dir(name);
        let cfg = ServeConfig::new(&dir)
            .with_segment_max_bytes(4 << 20)
            .with_fsync(fsync);
        let obs = Observability::new(&ObsConfig::default());
        let mut wal = WalWriter::create(&cfg, &obs).expect("writer opens");
        group.bench_function(BenchmarkId::new("writer", name), |b| {
            b.iter(|| {
                for event in &events {
                    black_box(wal.append("bench", event).expect("append"));
                }
                // Prune fully-consumed segments so the bench dir stays
                // bounded no matter how many samples criterion takes.
                let floor = wal.next_seq_for("bench").saturating_sub(1);
                wal.retain_after_snapshot(&[("bench", floor)])
                    .expect("retain");
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    {
        let dir = bench_dir("serve");
        let service = SkyNet::builder(scenario.topology())
            .config(PipelineConfig::production())
            .serve(
                ServeConfig::new(&dir)
                    .with_segment_max_bytes(4 << 20)
                    .with_fsync(FsyncPolicy::Never)
                    .with_tenant_queue_capacity(1 << 20),
            )
            .expect("service starts");
        service.hello("bench").expect("tenant admits");
        group.bench_function("serve_submit", |b| {
            b.iter(|| {
                for event in &events {
                    black_box(service.submit("bench", event.clone()).expect("ack"));
                }
                // Let the worker drain before the next round so queue
                // depth (and admission cost) stays comparable; snapshot
                // prunes consumed WAL segments.
                drain_and_prune(&service, &["bench"]);
            })
        });
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The contention lanes run a fixed 512-event slice so the fsync-heavy
    // baselines stay affordable; throughput is per event either way.
    let heavy: Vec<WalEvent> = events.iter().cycle().take(512).cloned().collect();
    group.throughput(Throughput::Elements(heavy.len() as u64));

    {
        let dir = bench_dir("per-append-always");
        let cfg = ServeConfig::new(&dir)
            .with_segment_max_bytes(64 << 20)
            .with_fsync(FsyncPolicy::Always);
        let obs = Observability::new(&ObsConfig::default());
        let wal = std::sync::Mutex::new(WalWriter::create(&cfg, &obs).expect("writer opens"));
        group.bench_function(BenchmarkId::new("per_append", "always8"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let started = Instant::now();
                    std::thread::scope(|scope| {
                        for worker in 0..SUBMITTERS {
                            let wal = &wal;
                            let heavy = &heavy;
                            scope.spawn(move || {
                                for event in heavy.iter().skip(worker).step_by(SUBMITTERS) {
                                    black_box(
                                        wal.lock().unwrap().append("bench", event).expect("append"),
                                    );
                                }
                            });
                        }
                    });
                    total += started.elapsed();
                    let mut writer = wal.lock().unwrap();
                    let floor = writer.next_seq_for("bench").saturating_sub(1);
                    writer
                        .retain_after_snapshot(&[("bench", floor)])
                        .expect("retain");
                }
                total
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    for (name, tenants) in [
        ("always8", vec!["bench"]),
        (
            "tenants4x2",
            vec!["bench-0", "bench-1", "bench-2", "bench-3"],
        ),
    ] {
        let dir = bench_dir(name);
        let service = SkyNet::builder(scenario.topology())
            .config(PipelineConfig::production())
            .serve(
                ServeConfig::new(&dir)
                    .with_segment_max_bytes(64 << 20)
                    .with_fsync(FsyncPolicy::Always)
                    .with_tenant_queue_capacity(1 << 20),
            )
            .expect("service starts");
        for tenant in &tenants {
            service.hello(tenant).expect("tenant admits");
        }
        group.bench_function(BenchmarkId::new("group_commit", name), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += group_commit_round(&service, &tenants, &heavy);
                    drain_and_prune(&service, &tenants);
                }
                total
            })
        });
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
