//! Serving-layer WAL bench: append throughput under the fsync policies,
//! and the full acked-submit path through a running service.
//!
//! - `wal_append/writer/{never,every64}`: raw `WalWriter::append` — CRC
//!   framing + buffered write (+ periodic fsync) + segment rotation — over
//!   a realistic alert feed. This is the per-event durability overhead the
//!   ingest service pays before every ack.
//! - `wal_append/serve_submit`: the same feed through
//!   `ServiceHandle::submit` on a live service (queue admission + WAL
//!   append + ack), the number an operator sizing a tenant feed sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_core::serve::{FsyncPolicy, WalEvent, WalWriter};
use skynet_core::{ObsConfig, Observability, PipelineConfig, ServeConfig, SkyNet};
use skynet_model::SimTime;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;
use std::path::PathBuf;

fn bench_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skynet-wal-bench-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench(c: &mut Criterion) {
    let scenario = severe_cable_cut(GeneratorConfig::small(), 21);
    let run =
        TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default()).run(&scenario);
    let events: Vec<WalEvent> = run
        .alerts
        .iter()
        .map(|a| WalEvent::Alert(a.clone()))
        .collect();

    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Elements(events.len() as u64));

    for (name, fsync) in [
        ("never", FsyncPolicy::Never),
        ("every64", FsyncPolicy::EveryN(64)),
    ] {
        let dir = bench_dir(name);
        let cfg = ServeConfig::new(&dir)
            .with_segment_max_bytes(4 << 20)
            .with_fsync(fsync);
        let obs = Observability::new(&ObsConfig::default());
        let mut wal = WalWriter::create(&cfg, &obs).expect("writer opens");
        group.bench_function(BenchmarkId::new("writer", name), |b| {
            b.iter(|| {
                for event in &events {
                    let at = match event {
                        WalEvent::Alert(a) => a.timestamp,
                        WalEvent::Ping(p) => p.t,
                        WalEvent::Tick(t) => *t,
                        WalEvent::ReportBoundary(t) => *t,
                    };
                    black_box(wal.append("bench", event, at).expect("append"));
                }
                // Prune fully-consumed segments so the bench dir stays
                // bounded no matter how many samples criterion takes.
                wal.retain_after_snapshot(wal.next_seq().saturating_sub(1))
                    .expect("retain");
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    {
        let dir = bench_dir("serve");
        let service = SkyNet::builder(scenario.topology())
            .config(PipelineConfig::production())
            .serve(
                ServeConfig::new(&dir)
                    .with_segment_max_bytes(4 << 20)
                    .with_fsync(FsyncPolicy::Never)
                    .with_tenant_queue_capacity(1 << 20),
            )
            .expect("service starts");
        service.hello("bench").expect("tenant admits");
        group.bench_function("serve_submit", |b| {
            b.iter(|| {
                for event in &events {
                    black_box(service.submit("bench", event.clone()).expect("ack"));
                }
                // Let the worker drain before the next round so queue
                // depth (and admission cost) stays comparable.
                while service.tenant_health("bench").expect("health").queued > 0 {
                    std::thread::yield_now();
                }
                let _ = service.submit_tick("bench", SimTime::from_mins(60));
                // Snapshotting prunes consumed WAL segments, keeping the
                // bench dir bounded across samples.
                service.snapshot().expect("snapshot");
            })
        });
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
