//! Locator ingest throughput: the interned-id arena locator vs the
//! path-keyed baseline (`PathLocator`) on the same Fig. 8c-scale flood.
//!
//! Both implementations produce identical incidents (see the
//! `locator_equivalence` test); this bench isolates what the interning
//! refactor buys on the hot path. Record the ratio in `EXPERIMENTS.md`
//! when it changes materially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::experiments::fig8c;
use skynet_core::locator::{Locator, LocatorConfig, PathLocator};
use skynet_model::{SimDuration, SimTime, StructuredAlert};
use std::hint::black_box;

fn horizon(alerts: &[StructuredAlert]) -> SimTime {
    alerts
        .iter()
        .map(|a| a.last_seen)
        .max()
        .unwrap_or(SimTime::ZERO)
        + SimDuration::from_mins(20)
}

fn bench(c: &mut Criterion) {
    let (topo, flood) = fig8c::build_flood(8_000);
    let mut group = c.benchmark_group("locator_intern");
    for &n in &[4_000usize, 8_000] {
        let end = horizon(&flood[..n]);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            b.iter(|| {
                let mut locator = Locator::new(&topo, LocatorConfig::default());
                black_box(locator.process_batch(&flood[..n], end))
            });
        });
        group.bench_with_input(BenchmarkId::new("path_keyed", n), &n, |b, &n| {
            b.iter(|| {
                let mut locator = PathLocator::new(&topo, LocatorConfig::default());
                black_box(locator.process_batch(&flood[..n], end))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
