//! Fig. 5d bench: prints the incident/alert-class correlation, then times
//! one full-pipeline episode analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_bench::experiments::{self, fig5d};
use skynet_bench::ExperimentScale;
use skynet_core::PipelineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let prepared = experiments::prepare(ExperimentScale::Small);
    println!("{}", fig5d::run_on(&prepared).render());

    let skynet = prepared.skynet(PipelineConfig::production());
    c.bench_function("fig5d/analyze_one_episode", |b| {
        b.iter(|| black_box(prepared.analyze(&skynet, 0, None)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
