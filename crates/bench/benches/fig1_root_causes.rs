//! Fig. 1 bench: prints the root-cause mix table, then times the
//! Fig. 1-weighted failure sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skynet_bench::experiments::fig1;
use skynet_bench::ExperimentScale;
use skynet_failure::Injector;
use skynet_model::{SimDuration, SimTime};
use skynet_topology::{generate, GeneratorConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    println!("{}", fig1::run(ExperimentScale::Small).render());

    let topo = Arc::new(generate(&GeneratorConfig::small()));
    c.bench_function("fig1/random_failure_injection_x100", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut inj = Injector::new(Arc::clone(&topo));
            for i in 0..100u64 {
                inj.random(
                    &mut rng,
                    SimTime::from_secs(i * 10),
                    SimDuration::from_secs(5),
                );
            }
            black_box(inj.finish(SimTime::from_secs(2_000)))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
