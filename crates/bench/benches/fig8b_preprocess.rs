//! Fig. 8b bench: prints the before/after scatter, then times the
//! preprocessor over a recorded severe flood.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_bench::experiments::fig8b;
use skynet_bench::ExperimentScale;
use skynet_core::{Preprocessor, PreprocessorConfig};
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig8b::run(ExperimentScale::Small).render());

    let scenario = severe_cable_cut(GeneratorConfig::small(), 50);
    let cfg = TelemetryConfig {
        noise_per_hour: 20_000.0,
        ..TelemetryConfig::default()
    };
    let run = TelemetrySuite::standard(scenario.topology(), cfg).run(&scenario);
    let mut group = c.benchmark_group("fig8b");
    group.throughput(Throughput::Elements(run.alerts.len() as u64));
    group.bench_function("preprocess_severe_flood", |b| {
        b.iter(|| {
            let mut pp = Preprocessor::new(PreprocessorConfig::default(), None);
            black_box(pp.process_batch(&run.alerts))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
