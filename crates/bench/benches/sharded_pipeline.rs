//! Shard-scaling bench: the batch pipeline over a §6.2-style severe-flood
//! corpus at 1 vs 4 region shards. The two runs analyze the identical feed
//! and — by the sharding determinism guarantee — produce the identical
//! report; only the wall-clock differs. A noise rate well above the
//! default stretches the flood toward the paper's alert-storm scale so the
//! parallel locate/evaluate stages actually have work to split.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_core::{PipelineConfig, SkyNet};
use skynet_model::SimTime;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = severe_cable_cut(GeneratorConfig::small(), 21);
    let cfg = TelemetryConfig {
        noise_per_hour: 60_000.0,
        ..TelemetryConfig::default()
    };
    let run = TelemetrySuite::standard(scenario.topology(), cfg).run(&scenario);
    println!("sharded_pipeline corpus: {} raw alerts", run.alerts.len());

    let mut group = c.benchmark_group("sharded_pipeline");
    group.throughput(Throughput::Elements(run.alerts.len() as u64));
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch_analyze", shards),
            &shards,
            |b, &shards| {
                let mut pipeline_cfg = PipelineConfig::production();
                pipeline_cfg.streaming.shards = shards;
                let skynet = SkyNet::builder(scenario.topology())
                    .config(pipeline_cfg)
                    .build();
                b.iter(|| {
                    let report = skynet.analyze(&run.alerts, &run.ping, SimTime::from_mins(60));
                    black_box(report)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
