//! Fig. 10 bench: prints the severity/filter/mitigation panels, then times
//! severity scoring and the mitigation-time models.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_baseline::{manual_mitigation_secs, skynet_mitigation_secs, MitigationContext};
use skynet_bench::experiments::{self, fig10};
use skynet_bench::ExperimentScale;
use skynet_core::evaluator::score::{severity, CircuitSetImpact, ScoreConfig, SeverityInputs};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let prepared = experiments::prepare(ExperimentScale::Small);
    println!("{}", fig10::run_on(&prepared).render());

    let inputs = SeverityInputs {
        circuit_sets: (0..32)
            .map(|i| CircuitSetImpact {
                break_ratio: 0.5,
                sla_over_ratio: 0.25,
                importance: 2.0 + i as f64 * 0.1,
                customers: 4,
            })
            .collect(),
        avg_ping_loss: 0.2,
        max_sla_over: 0.3,
        duration_secs: 600.0,
        important_customers: 7,
    };
    let cfg = ScoreConfig::default();
    c.bench_function("fig10/severity_equations", |b| {
        b.iter(|| black_box(severity(&inputs, &cfg)));
    });

    let ctx = MitigationContext {
        raw_alerts: 60_000,
        known_failure: false,
        root_cause_alert_present: true,
        concurrent_incidents: 2,
        zoomed: true,
        needs_field_repair: false,
    };
    c.bench_function("fig10/mitigation_models", |b| {
        b.iter(|| {
            black_box(manual_mitigation_secs(&ctx));
            black_box(skynet_mitigation_secs(&ctx))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
