//! Fig. 3 bench: prints per-source coverage, then times a single-source
//! telemetry sweep over the failure census.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_baseline::single_source::source_coverage;
use skynet_bench::experiments::fig3;
use skynet_bench::ExperimentScale;
use skynet_model::DataSource;
use skynet_telemetry::TelemetryConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig3::run(ExperimentScale::Small).render());

    let census = fig3::census(ExperimentScale::Small);
    let cfg = TelemetryConfig::quiet();
    c.bench_function("fig3/snmp_coverage_census", |b| {
        b.iter(|| black_box(source_coverage(&census, DataSource::Snmp, &cfg)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
