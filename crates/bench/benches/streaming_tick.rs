//! Streaming tick hot path: incremental maintenance (expiry wheel +
//! delta-maintained region counts) vs the full-rescan oracle.
//!
//! The streaming runtime calls `advance` after every event, so per-tick
//! cost is what bounds sustainable alert rate. Both modes produce
//! byte-identical reports (see the `locator_incremental` differential
//! suite); this bench isolates what the delta refactor buys. Record the
//! ratio in `EXPERIMENTS.md` when it changes materially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::experiments::fig8c;
use skynet_core::locator::{Locator, LocatorConfig, MaintenanceMode};
use skynet_model::{SimDuration, StructuredAlert};
use skynet_topology::Topology;
use std::hint::black_box;
use std::sync::Arc;

/// Replays the flood the way the streaming worker sees it: one `advance`
/// per inserted alert, a finalizing sweep at the end.
fn run_stream(topo: &Arc<Topology>, cfg: LocatorConfig, alerts: &[StructuredAlert]) -> usize {
    let mut locator = Locator::new(topo, cfg);
    let mut horizon = skynet_model::SimTime::ZERO;
    for alert in alerts {
        locator.insert(alert);
        locator.advance(alert.last_seen);
        horizon = horizon.max(alert.last_seen);
    }
    locator.advance(horizon + SimDuration::from_mins(20));
    locator.finish();
    locator.take_completed().len()
}

fn bench(c: &mut Criterion) {
    let (topo, flood) = fig8c::build_flood(8_000);
    let mut group = c.benchmark_group("streaming_tick");
    for &n in &[2_000usize, 8_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            let cfg = LocatorConfig::default().with_maintenance(MaintenanceMode::Incremental);
            b.iter(|| black_box(run_stream(&topo, cfg.clone(), &flood[..n])));
        });
        group.bench_with_input(BenchmarkId::new("rescan", n), &n, |b, &n| {
            let cfg = LocatorConfig::default().with_maintenance(MaintenanceMode::Rescan);
            b.iter(|| black_box(run_stream(&topo, cfg.clone(), &flood[..n])));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
