//! Fig. 7 bench: prints the reachability matrix and zoom result, then
//! times matrix construction and focal-point detection.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_bench::experiments::fig7;
use skynet_bench::ExperimentScale;
use skynet_core::evaluator::ReachabilityMatrix;
use skynet_failure::Injector;
use skynet_model::{LocationLevel, SimDuration, SimTime};
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::{generate, GeneratorConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::run(ExperimentScale::Small).render());

    // Kernel input: the lossy-cluster ping log of the Fig. 7 scenario.
    let topo = Arc::new(generate(&GeneratorConfig::small()));
    let victim = topo.clusters()[1].clone();
    let mut inj = Injector::new(Arc::clone(&topo));
    for &leaf in topo.agg_group(&victim).to_vec().iter() {
        inj.device_hardware(
            leaf,
            SimTime::from_mins(3),
            SimDuration::from_mins(12),
            0.15,
            false,
        );
    }
    let scenario = inj.finish(SimTime::from_mins(22));
    let run =
        TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default()).run(&scenario);
    c.bench_function("fig7/build_matrix_and_find_focal", |b| {
        b.iter(|| {
            let m = ReachabilityMatrix::build(
                &run.ping,
                SimTime::ZERO,
                scenario.horizon(),
                LocationLevel::Cluster,
            );
            black_box(m.focal_points(1.5, 0.01))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
