//! Fig. 9 bench: prints the threshold-sweep accuracy table, then times one
//! episode analysis under the production and the type+location configs.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_baseline::Ablation;
use skynet_bench::experiments::{self, fig9};
use skynet_bench::ExperimentScale;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let prepared = experiments::prepare(ExperimentScale::Small);
    println!("{}", fig9::run_on(&prepared).render());

    let production = prepared.skynet(Ablation::production().config);
    let type_loc = prepared.skynet(Ablation::type_and_location().config);
    c.bench_function("fig9/analyze_episode_production", |b| {
        b.iter(|| black_box(prepared.analyze(&production, 0, None)));
    });
    c.bench_function("fig9/analyze_episode_type_location", |b| {
        b.iter(|| black_box(prepared.analyze(&type_loc, 0, None)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
