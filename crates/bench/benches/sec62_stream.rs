//! §6.2 bench: prints the stream-reduction table, then times the streaming
//! pipeline end to end over a recorded flood.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_bench::experiments::sec62;
use skynet_bench::ExperimentScale;
use skynet_core::pipeline::StreamEvent;
use skynet_core::{PipelineConfig, SkyNet};
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", sec62::run(ExperimentScale::Small).render());

    let scenario = severe_cable_cut(GeneratorConfig::small(), 21);
    let run =
        TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default()).run(&scenario);
    let mut group = c.benchmark_group("sec62");
    group.throughput(Throughput::Elements(run.alerts.len() as u64));
    group.bench_function("streaming_pipeline_end_to_end", |b| {
        b.iter(|| {
            let skynet = SkyNet::builder(scenario.topology())
                .config(PipelineConfig::production())
                .build();
            let handle = skynet.stream();
            for a in &run.alerts {
                handle.events.send(StreamEvent::Alert(a.clone())).unwrap();
            }
            handle.events.send(StreamEvent::Flush).unwrap();
            let incidents: Vec<_> = handle.incidents.iter().collect();
            handle.worker.join().unwrap();
            black_box(incidents)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
