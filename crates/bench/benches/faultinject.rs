//! Fault-plane overhead bench: batch analysis of the same flood with (a)
//! no fault config at all, (b) an explicitly disabled `FaultConfig` and
//! (c) an armed-but-idle policy whose rules never fire. (a) and (b) take
//! the identical code path — the plane is never constructed — so their
//! numbers must coincide: that is the zero-cost-when-disabled guarantee
//! the CI bench guard compiles. (c) bounds the cost of *carrying* armed
//! checks on the hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_core::{FaultAction, FaultConfig, FaultRule, InjectionSite, PipelineConfig, SkyNet};
use skynet_model::SimTime;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = severe_cable_cut(GeneratorConfig::small(), 21);
    let run =
        TelemetrySuite::standard(scenario.topology(), TelemetryConfig::default()).run(&scenario);
    println!("faultinject corpus: {} raw alerts", run.alerts.len());

    // Rules that are armed (the plane exists, every boundary checks) but
    // can never fire on a finite flood.
    let idle = FaultConfig::seeded(1)
        .with_rule(FaultRule::once(
            InjectionSite::LocateWorker,
            u64::MAX,
            FaultAction::Error,
        ))
        .with_rule(FaultRule::once(
            InjectionSite::GuardOffer,
            u64::MAX,
            FaultAction::Error,
        ));

    let variants: [(&str, Option<FaultConfig>); 3] = [
        ("absent", None),
        ("disabled", Some(FaultConfig::default())),
        ("armed_idle", Some(idle)),
    ];

    let mut group = c.benchmark_group("faultinject");
    group.throughput(Throughput::Elements(run.alerts.len() as u64));
    for (name, faults) in variants {
        group.bench_with_input(BenchmarkId::new("batch_analyze", name), &faults, |b, f| {
            let mut cfg = PipelineConfig::production();
            if let Some(f) = f.clone() {
                cfg = cfg.with_faults(f);
            }
            let skynet = SkyNet::builder(scenario.topology()).config(cfg).build();
            b.iter(|| {
                let report = skynet.analyze(&run.alerts, &run.ping, SimTime::from_mins(60));
                black_box(report)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
