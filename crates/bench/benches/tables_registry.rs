//! Tables 1–3 bench: prints the registries, then times serde round-trips
//! of the uniform alert format (the Table-2 integration boundary).

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_bench::experiments::tables;
use skynet_model::{AlertKind, DataSource, LocationPath, RawAlert, SimTime};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());

    let alert = RawAlert::known(
        DataSource::Ping,
        SimTime::from_millis(123_456),
        LocationPath::parse("Region A|City a|Logic site 2|Site I").unwrap(),
        AlertKind::PacketLossIcmp,
    )
    .with_magnitude(0.15);
    c.bench_function("tables/raw_alert_json_round_trip", |b| {
        b.iter(|| {
            let json = serde_json::to_string(&alert).unwrap();
            let back: RawAlert = serde_json::from_str(&json).unwrap();
            black_box(back)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
