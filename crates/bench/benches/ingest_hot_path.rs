//! Ingest hot-path bench: the front half of the pipeline — classify,
//! guard, preprocess — at 1 and 4 lanes.
//!
//! Two comparisons lock the allocation-lean ingest work in:
//!
//! - `classify/{sym_striped,string_mutex}/{1,4}`: raw syslog
//!   classification through one shared classifier. `sym_striped` is the
//!   production path (symbol-interned matcher, lock-striped 128-bit
//!   fingerprint memo); `string_mutex` replays the previous design — the
//!   String-keyed oracle matcher behind a single global
//!   `Mutex<HashMap<u64, _>>` memo keyed by `DefaultHasher` — so the
//!   striping/interning win is measured against the real baseline.
//! - `ingest/{1,4}`: guard + preprocess end to end, one ingest worker per
//!   lane over equal slices of a §6.2-style severe flood, all lanes
//!   sharing one classifier behind an `Arc` exactly like the sharded
//!   streaming runtime does.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use skynet_bench::corpus::severe_cable_cut;
use skynet_core::{GuardConfig, IngestGuard, Preprocessor, PreprocessorConfig, SyslogClassifier};
use skynet_ftree::MatchScratch;
use skynet_model::{AlertBody, AlertKind, RawAlert};
use skynet_telemetry::tools::syslog::labeled_corpus;
use skynet_telemetry::{TelemetryConfig, TelemetrySuite};
use skynet_topology::GeneratorConfig;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

/// The previous classify-memo design, reconstructed as the baseline: one
/// global mutex, 64-bit `DefaultHasher` key, String-keyed oracle matcher
/// on miss.
struct GlobalMutexMemo {
    classifier: Arc<SyslogClassifier>,
    cache: Mutex<HashMap<u64, AlertKind>>,
}

impl GlobalMutexMemo {
    fn classify(&self, line: &str) -> AlertKind {
        let mut hasher = DefaultHasher::new();
        line.hash(&mut hasher);
        let key = hasher.finish();
        if let Some(&kind) = self.cache.lock().unwrap().get(&key) {
            return kind;
        }
        let kind = self.classifier.classify_oracle(line);
        let mut cache = self.cache.lock().unwrap();
        if cache.len() >= 4096 {
            cache.clear();
        }
        cache.insert(key, kind);
        kind
    }
}

fn chunked<T: Clone>(items: &[T], lanes: usize) -> Vec<Vec<T>> {
    let chunk = items.len().div_ceil(lanes);
    items.chunks(chunk).map(|c| c.to_vec()).collect()
}

fn bench(c: &mut Criterion) {
    let scenario = severe_cable_cut(GeneratorConfig::small(), 23);
    let cfg = TelemetryConfig {
        noise_per_hour: 60_000.0,
        ..TelemetryConfig::default()
    };
    let run = TelemetrySuite::standard(scenario.topology(), cfg).run(&scenario);
    let lines: Vec<String> = run
        .alerts
        .iter()
        .filter_map(|a| match &a.body {
            AlertBody::SyslogText(text) => Some(text.clone()),
            _ => None,
        })
        .collect();
    println!(
        "ingest_hot_path corpus: {} raw alerts, {} syslog lines",
        run.alerts.len(),
        lines.len()
    );
    let classifier = Arc::new(SyslogClassifier::train(&labeled_corpus(40, 7), 3, 8));
    let oracle =
        Arc::new(SyslogClassifier::train(&labeled_corpus(40, 7), 3, 8).with_string_oracle());

    let mut group = c.benchmark_group("classify");
    group.throughput(Throughput::Elements(lines.len() as u64));
    for threads in [1usize, 4] {
        let lanes = chunked(&lines, threads);
        group.bench_with_input(
            BenchmarkId::new("sym_striped", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for lane in &lanes {
                            let classifier = &classifier;
                            scope.spawn(move || {
                                let mut scratch = MatchScratch::new();
                                for line in lane {
                                    black_box(classifier.classify_memoized(line, &mut scratch));
                                }
                            });
                        }
                    });
                });
            },
        );
        let baseline = GlobalMutexMemo {
            classifier: Arc::clone(&oracle),
            cache: Mutex::new(HashMap::new()),
        };
        group.bench_with_input(
            BenchmarkId::new("string_mutex", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for lane in &lanes {
                            let baseline = &baseline;
                            scope.spawn(move || {
                                for line in lane {
                                    black_box(baseline.classify(line));
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(run.alerts.len() as u64));
    for lanes in [1usize, 4] {
        let slices: Vec<Vec<RawAlert>> = chunked(&run.alerts, lanes);
        group.bench_with_input(
            BenchmarkId::new("guard_preprocess", lanes),
            &lanes,
            |b, _| {
                b.iter_batched(
                    || slices.clone(),
                    |slices| {
                        std::thread::scope(|scope| {
                            for slice in slices {
                                let classifier = Arc::clone(&classifier);
                                let topo = scenario.topology();
                                scope.spawn(move || {
                                    let mut guard = IngestGuard::new(topo, GuardConfig::default());
                                    let mut pp = Preprocessor::new(
                                        PreprocessorConfig::default(),
                                        Some(classifier),
                                    );
                                    let mut admitted = Vec::new();
                                    guard.offer_batch(slice, &mut admitted);
                                    guard.flush(&mut admitted);
                                    let structured = pp.process_batch(&admitted);
                                    black_box(structured.len());
                                });
                            }
                        });
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
