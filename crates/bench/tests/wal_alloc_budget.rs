//! Allocation-budget regression gate for the WAL append hot path.
//!
//! A counting global allocator wraps `System`; counting is switched on only
//! around the measured region, so setup (topology generation, writer
//! creation, scratch warmup) is free. This binary holds a single `#[test]`
//! on purpose: the gate is a process-global flag, and a concurrently
//! running test would pollute the count.
//!
//! Budget (CI fails when exceeded): a steady-state append — sequence
//! lookup, frame encoding into the reusable scratch buffer, buffered
//! write, per-tenant watermark update — performs **zero** heap
//! allocations. This extends the ingest-path allocation budget to the
//! durability layer: an ack under flood costs no allocator traffic.

use skynet_core::serve::{FsyncPolicy, WalEvent, WalWriter};
use skynet_core::{ObsConfig, Observability, ServeConfig};
use skynet_model::{AlertKind, DataSource, RawAlert, SimTime};
use skynet_topology::{generate, GeneratorConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Counting;

static COUNTING_ON: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING_ON.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING_ON.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING_ON.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING_ON.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst))
}

#[test]
fn wal_append_steady_state_allocates_nothing() {
    let dir = std::env::temp_dir().join(format!("skynet-wal-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // A huge segment threshold keeps rotation (which legitimately
    // allocates a fresh file handle and path) off the measured path.
    let cfg = ServeConfig::new(&dir)
        .with_fsync(FsyncPolicy::Never)
        .with_segment_max_bytes(1 << 30);
    let obs = Observability::new(&ObsConfig::default());
    let mut wal = WalWriter::create(&cfg, &obs).expect("writer opens");

    let topo = generate(&GeneratorConfig::small());
    let event = WalEvent::Alert(
        RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(30),
            topo.devices()[0].location.clone(),
            AlertKind::PacketLossIcmp,
        )
        .with_magnitude(0.35),
    );

    // Warm pass: size the encode scratch and seat the per-tenant
    // sequence/watermark map entries.
    for _ in 0..64 {
        wal.append("flood", &event).expect("warm append");
    }

    let (_, allocs) = counted(|| {
        for _ in 0..512 {
            std::hint::black_box(
                wal.append("flood", std::hint::black_box(&event))
                    .expect("append"),
            );
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state WAL append allocated {allocs} times over 512 appends"
    );

    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}
