//! Allocation-budget regression gate for the classify hot path.
//!
//! A counting global allocator wraps `System`; counting is switched on only
//! around the measured region, so setup (corpus generation, training) is
//! free. This binary holds a single `#[test]` on purpose: the gate is a
//! process-global flag, and a concurrently running test would pollute the
//! count.
//!
//! Budgets (CI fails when exceeded):
//! - steady state (every line already memoized): **zero** heap
//!   allocations per line;
//! - cold path (fresh line, memo miss): at most
//!   [`COLD_ALLOCS_PER_LINE_BUDGET`] allocations per line on average —
//!   the stripe-map insert plus occasional rehash, nothing per-token.

use skynet_core::SyslogClassifier;
use skynet_ftree::MatchScratch;
use skynet_telemetry::tools::syslog::{labeled_corpus, render_message};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Committed cold-path budget, allocations per never-seen line.
const COLD_ALLOCS_PER_LINE_BUDGET: f64 = 8.0;

struct Counting;

static COUNTING_ON: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING_ON.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING_ON.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING_ON.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING_ON.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst))
}

#[test]
fn classify_hot_path_stays_within_allocation_budget() {
    let classifier = SyslogClassifier::train(&labeled_corpus(40, 7), 3, 8);
    let mut scratch = MatchScratch::new();

    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let corpus = labeled_corpus(30, 11);
    let warm: Vec<String> = corpus
        .iter()
        .take(64)
        .map(|(_, kind)| render_message(*kind, &mut rng))
        .collect();

    // Warm pass: populate the memo stripes and grow the scratch buffers.
    for line in &warm {
        classifier.classify_memoized(line, &mut scratch);
    }

    // Steady state: every line is already memoized — the fingerprint,
    // stripe lookup and return must not touch the heap at all.
    let (_, steady_allocs) = counted(|| {
        for _ in 0..50 {
            for line in &warm {
                std::hint::black_box(
                    classifier.classify_memoized(std::hint::black_box(line.as_str()), &mut scratch),
                );
            }
        }
    });
    assert_eq!(
        steady_allocs,
        0,
        "steady-state classify allocated {steady_allocs} times over {} warm lines",
        warm.len() * 50
    );

    // Cold path: fresh lines miss the memo and pay one stripe-map insert
    // (plus amortized rehash); the symbol matcher itself must stay
    // allocation-free per token.
    let cold: Vec<String> = (0..512)
        .map(|i| {
            format!(
                "never seen before flap event {i} on peer 10.0.{}.{}",
                i / 256,
                i % 256
            )
        })
        .collect();
    let (_, cold_allocs) = counted(|| {
        for line in &cold {
            std::hint::black_box(
                classifier.classify_memoized(std::hint::black_box(line.as_str()), &mut scratch),
            );
        }
    });
    let per_line = cold_allocs as f64 / cold.len() as f64;
    assert!(
        per_line <= COLD_ALLOCS_PER_LINE_BUDGET,
        "cold classify path averaged {per_line:.2} allocations per line \
         (budget {COLD_ALLOCS_PER_LINE_BUDGET}); total {cold_allocs} over {} lines",
        cold.len()
    );
    assert!(
        classifier.cache_misses() >= cold.len() as u64,
        "every cold line should miss the memo"
    );
}
