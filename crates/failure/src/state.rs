//! The dynamic network state at one instant.
//!
//! [`NetworkState::at`] folds every effect active at time `t` into a
//! snapshot the telemetry simulators can query: broken circuits, device
//! health, link load and loss, control-plane anomalies. Every query that
//! reflects a failure also returns the ground-truth [`FailureId`] so the
//! emitted alerts can carry provenance.

use crate::effect::{EffectKind, RouteAnomalyKind};
use crate::scenario::Scenario;
use skynet_model::{DeviceId, FailureId, LinkId, LocationPath, SimTime};
use skynet_topology::route::RoutePath;
use skynet_topology::Topology;
use std::collections::HashMap;

/// Snapshot of every failure-induced condition at one instant.
#[derive(Debug, Clone)]
pub struct NetworkState<'a> {
    topo: &'a Topology,
    /// Snapshot instant.
    pub t: SimTime,
    broken: HashMap<LinkId, (u32, FailureId)>,
    down: HashMap<DeviceId, FailureId>,
    degraded: HashMap<DeviceId, (f64, bool, FailureId)>,
    extra_load: HashMap<LinkId, (f64, FailureId)>,
    bgp_churn: HashMap<DeviceId, FailureId>,
    clock_drift: HashMap<DeviceId, FailureId>,
    cpu: HashMap<DeviceId, (f64, FailureId)>,
    route_anomalies: Vec<(LocationPath, RouteAnomalyKind, FailureId)>,
    /// Interned ids of the anomaly scopes, aligned with `route_anomalies`
    /// (`None` for scopes the topology interner cannot resolve).
    anomaly_scopes: Vec<Option<skynet_model::LocId>>,
}

impl<'a> NetworkState<'a> {
    /// Builds the snapshot for time `t`. When several failures hit the same
    /// element, the earliest-injected one wins the provenance tag (matches
    /// how operators would attribute it post-hoc).
    pub fn at(scenario: &'a Scenario, t: SimTime) -> Self {
        let mut s = NetworkState {
            topo: scenario.topology(),
            t,
            broken: HashMap::new(),
            down: HashMap::new(),
            degraded: HashMap::new(),
            extra_load: HashMap::new(),
            bgp_churn: HashMap::new(),
            clock_drift: HashMap::new(),
            cpu: HashMap::new(),
            route_anomalies: Vec::new(),
            anomaly_scopes: Vec::new(),
        };
        for event in scenario.events() {
            for effect in &event.effects {
                if !effect.active_at(t) {
                    continue;
                }
                let id = event.id;
                match &effect.kind {
                    EffectKind::CircuitBreaks { link, broken } => {
                        let entry = s.broken.entry(*link).or_insert((0, id));
                        // Concurrent cuts on the same set accumulate.
                        entry.0 = entry.0.saturating_add(*broken);
                    }
                    EffectKind::DeviceDown { device } => {
                        s.down.entry(*device).or_insert(id);
                    }
                    EffectKind::DeviceDegraded {
                        device,
                        loss,
                        device_aware,
                    } => {
                        s.degraded
                            .entry(*device)
                            .or_insert((*loss, *device_aware, id));
                    }
                    EffectKind::ExtraLoad { link, load } => {
                        let entry = s.extra_load.entry(*link).or_insert((0.0, id));
                        entry.0 += *load;
                    }
                    EffectKind::BgpChurn { device } => {
                        s.bgp_churn.entry(*device).or_insert(id);
                    }
                    EffectKind::RouteAnomaly { scope, anomaly } => {
                        s.anomaly_scopes.push(s.topo.interner().resolve(scope));
                        s.route_anomalies.push((scope.clone(), *anomaly, id));
                    }
                    EffectKind::ClockDrift { device } => {
                        s.clock_drift.entry(*device).or_insert(id);
                    }
                    EffectKind::ResourceExhaustion { device, cpu } => {
                        s.cpu.entry(*device).or_insert((*cpu, id));
                    }
                }
            }
        }
        s
    }

    /// The topology under the snapshot.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// Broken circuits on a link's set (clamped to the set size) with the
    /// causing failure, if any circuit is broken.
    pub fn broken_circuits(&self, link: LinkId) -> Option<(u32, FailureId)> {
        self.broken.get(&link).map(|&(n, id)| {
            let max = self.topo.link(link).circuit_set.circuits;
            (n.min(max), id)
        })
    }

    /// True when every circuit of the link's set is broken.
    pub fn link_down(&self, link: LinkId) -> Option<FailureId> {
        self.broken_circuits(link)
            .and_then(|(n, id)| (n >= self.topo.link(link).circuit_set.circuits).then_some(id))
    }

    /// Whole-device outage.
    pub fn device_down(&self, device: DeviceId) -> Option<FailureId> {
        self.down.get(&device).copied()
    }

    /// Gray failure on a device: `(loss fraction, device-aware?)`.
    pub fn device_degraded(&self, device: DeviceId) -> Option<(f64, bool, FailureId)> {
        self.degraded.get(&device).copied()
    }

    /// BGP sessions flapping on a device.
    pub fn bgp_churn(&self, device: DeviceId) -> Option<FailureId> {
        self.bgp_churn.get(&device).copied()
    }

    /// Clock drifting out of PTP sync.
    pub fn clock_drift(&self, device: DeviceId) -> Option<FailureId> {
        self.clock_drift.get(&device).copied()
    }

    /// CPU utilization in `[0, 1]`: failure-driven exhaustion if present,
    /// else a healthy baseline.
    pub fn device_cpu(&self, device: DeviceId) -> (f64, Option<FailureId>) {
        match self.cpu.get(&device) {
            Some(&(c, id)) => (c, Some(id)),
            None => (0.2, None),
        }
    }

    /// Control-plane anomalies whose scope intersects `location`.
    ///
    /// The query location is resolved against the topology interner once;
    /// when both it and an anomaly scope are on the topology the intersect
    /// test is two `O(1)` id probes. Either side being unresolvable (the
    /// hierarchy root, or a scope outside the topology) falls back to
    /// segment-wise path containment.
    pub fn route_anomalies_at(
        &self,
        location: &LocationPath,
    ) -> impl Iterator<Item = (&LocationPath, RouteAnomalyKind, FailureId)> + '_ {
        let interner = self.topo.interner();
        let loc_id = interner.resolve(location);
        let location = location.clone();
        self.route_anomalies
            .iter()
            .zip(self.anomaly_scopes.iter())
            .filter(
                move |&((scope, _, _), &scope_id)| match (scope_id, loc_id) {
                    (Some(s), Some(l)) => interner.contains(s, l) || interner.contains(l, s),
                    _ => scope.contains(&location) || location.contains(scope),
                },
            )
            .map(|((scope, kind, id), _)| (scope, *kind, *id))
    }

    /// All control-plane anomalies.
    pub fn route_anomalies(&self) -> &[(LocationPath, RouteAnomalyKind, FailureId)] {
        &self.route_anomalies
    }

    /// Steady-state offered rate on a link from the routed flows.
    pub fn base_rate_gbps(&self, link: LinkId) -> f64 {
        let cs = self.topo.link(link).circuit_set.id;
        self.topo
            .flows_on_circuit_set(cs)
            .iter()
            .map(|&i| self.topo.flows()[i].rate_gbps)
            .sum()
    }

    /// Offered rate including failure-driven extra load.
    pub fn offered_rate_gbps(&self, link: LinkId) -> (f64, Option<FailureId>) {
        let base = self.base_rate_gbps(link);
        match self.extra_load.get(&link) {
            Some(&(load, id)) => {
                let cap = self.topo.link(link).circuit_set.total_capacity_gbps();
                (base + load * cap, Some(id))
            }
            None => (base, None),
        }
    }

    /// Remaining capacity after circuit breaks.
    pub fn remaining_capacity_gbps(&self, link: LinkId) -> f64 {
        let cs = &self.topo.link(link).circuit_set;
        let broken = self.broken.get(&link).map_or(0, |&(n, _)| n);
        cs.remaining_capacity_gbps(broken)
    }

    /// Utilization of a link: offered / remaining capacity. Greater than 1
    /// means congestion; infinite when the link is fully down but still
    /// offered traffic.
    pub fn utilization(&self, link: LinkId) -> (f64, Option<FailureId>) {
        let (offered, load_cause) = self.offered_rate_gbps(link);
        let remaining = self.remaining_capacity_gbps(link);
        let break_cause = self.broken.get(&link).map(|&(_, id)| id);
        let cause = break_cause.or(load_cause);
        if remaining <= f64::EPSILON {
            if offered > 0.0 {
                (f64::INFINITY, cause)
            } else {
                (0.0, cause)
            }
        } else {
            (offered / remaining, cause)
        }
    }

    /// Loss fraction on a link from congestion/outage: the share of offered
    /// traffic that cannot fit the remaining capacity.
    pub fn link_loss(&self, link: LinkId) -> (f64, Option<FailureId>) {
        let (util, cause) = self.utilization(link);
        if util.is_infinite() {
            return (1.0, cause);
        }
        if util <= 1.0 {
            return (0.0, if util > 0.95 { cause } else { None });
        }
        (1.0 - 1.0 / util, cause)
    }

    /// Loss fraction introduced by a device for transit traffic.
    pub fn device_loss(&self, device: DeviceId) -> (f64, Option<FailureId>) {
        if let Some(id) = self.device_down(device) {
            return (1.0, Some(id));
        }
        if let Some((loss, _, id)) = self.device_degraded(device) {
            return (loss, Some(id));
        }
        (0.0, None)
    }

    /// End-to-end loss along a routed path: combines device and link loss
    /// multiplicatively. Returns the loss fraction and the provenance of
    /// the largest single contributor.
    pub fn path_loss(&self, route: &RoutePath) -> (f64, Option<FailureId>) {
        let mut pass = 1.0f64;
        let mut top: (f64, Option<FailureId>) = (0.0, None);
        for &d in &route.devices {
            let (loss, cause) = self.device_loss(d);
            pass *= 1.0 - loss;
            if loss > top.0 {
                top = (loss, cause);
            }
        }
        for &l in &route.links {
            let (loss, cause) = self.link_loss(l);
            pass *= 1.0 - loss;
            if loss > top.0 {
                top = (loss, cause);
            }
        }
        ((1.0 - pass).clamp(0.0, 1.0), top.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RootCauseCategory;
    use crate::effect::NetworkEffect;
    use crate::scenario::FailureEvent;
    use skynet_model::LocationPath;
    use skynet_topology::{generate, route, GeneratorConfig};
    use std::sync::Arc;

    fn scenario_with(effects: Vec<EffectKind>) -> Scenario {
        let topo = Arc::new(generate(&GeneratorConfig::small()));
        let events = effects
            .into_iter()
            .enumerate()
            .map(|(i, kind)| FailureEvent {
                id: FailureId::from_index(i),
                category: RootCauseCategory::DeviceHardware,
                description: format!("effect {i}"),
                epicenter: LocationPath::parse("Region-0").unwrap(),
                severe: true,
                customer_impacting: true,
                effects: vec![NetworkEffect::new(
                    SimTime::from_secs(10),
                    SimTime::from_secs(100),
                    kind,
                )],
            })
            .collect();
        Scenario::new(topo, events, SimTime::from_secs(200))
    }

    #[test]
    fn healthy_network_has_no_loss() {
        let s = scenario_with(vec![]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let clusters = state.topology().clusters();
        let r =
            route::route_between_clusters(state.topology(), &clusters[0], &clusters[3], 1).unwrap();
        let (loss, cause) = state.path_loss(&r);
        assert_eq!(loss, 0.0);
        assert!(cause.is_none());
    }

    #[test]
    fn device_down_blackholes_paths_through_it() {
        let s0 = scenario_with(vec![]);
        let topo = s0.topology().clone();
        let clusters = topo.clusters().to_vec();
        let r = route::route_between_clusters(&topo, &clusters[0], &clusters[3], 1).unwrap();
        let victim = r.devices[1];
        let s = scenario_with(vec![EffectKind::DeviceDown { device: victim }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (loss, cause) = state.path_loss(&r);
        assert_eq!(loss, 1.0);
        assert_eq!(cause, Some(FailureId(0)));
        // Before the effect starts, the path is clean.
        let before = NetworkState::at(&s, SimTime::from_secs(5));
        assert_eq!(before.path_loss(&r).0, 0.0);
    }

    #[test]
    fn partial_circuit_break_reduces_capacity_not_reachability() {
        let s0 = scenario_with(vec![]);
        let link = s0.topology().links()[0].id;
        let circuits = s0.topology().link(link).circuit_set.circuits;
        assert!(circuits >= 2);
        let s = scenario_with(vec![EffectKind::CircuitBreaks { link, broken: 1 }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (n, _) = state.broken_circuits(link).unwrap();
        assert_eq!(n, 1);
        assert!(state.link_down(link).is_none());
        assert!(state.remaining_capacity_gbps(link) > 0.0);
    }

    #[test]
    fn full_break_downs_the_link() {
        let s0 = scenario_with(vec![]);
        let link = s0.topology().links()[0].id;
        let circuits = s0.topology().link(link).circuit_set.circuits;
        let s = scenario_with(vec![EffectKind::CircuitBreaks {
            link,
            broken: circuits,
        }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        assert!(state.link_down(link).is_some());
        assert_eq!(state.remaining_capacity_gbps(link), 0.0);
    }

    #[test]
    fn concurrent_cuts_accumulate_and_clamp() {
        let s0 = scenario_with(vec![]);
        let link = s0.topology().links()[0].id;
        let circuits = s0.topology().link(link).circuit_set.circuits;
        let s = scenario_with(vec![
            EffectKind::CircuitBreaks {
                link,
                broken: circuits,
            },
            EffectKind::CircuitBreaks {
                link,
                broken: circuits,
            },
        ]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (n, id) = state.broken_circuits(link).unwrap();
        assert_eq!(n, circuits);
        assert_eq!(id, FailureId(0), "first injected failure wins provenance");
    }

    #[test]
    fn extra_load_congests_links() {
        let s0 = scenario_with(vec![]);
        // Pick a link with some base traffic if possible, else any link.
        let link = s0.topology().links()[0].id;
        let s = scenario_with(vec![EffectKind::ExtraLoad { link, load: 2.0 }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (util, cause) = state.utilization(link);
        assert!(util > 1.0);
        assert_eq!(cause, Some(FailureId(0)));
        let (loss, _) = state.link_loss(link);
        assert!(loss > 0.0 && loss < 1.0);
    }

    #[test]
    fn degraded_device_drops_a_fraction() {
        let s0 = scenario_with(vec![]);
        let topo = s0.topology().clone();
        let clusters = topo.clusters().to_vec();
        let r = route::route_between_clusters(&topo, &clusters[0], &clusters[1], 2).unwrap();
        let victim = r.devices[1];
        let s = scenario_with(vec![EffectKind::DeviceDegraded {
            device: victim,
            loss: 0.3,
            device_aware: false,
        }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (loss, cause) = state.path_loss(&r);
        assert!((loss - 0.3).abs() < 1e-9);
        assert_eq!(cause, Some(FailureId(0)));
    }

    #[test]
    fn route_anomaly_scoping() {
        let region = LocationPath::parse("Region-0").unwrap();
        let s = scenario_with(vec![EffectKind::RouteAnomaly {
            scope: region.clone(),
            anomaly: RouteAnomalyKind::Hijack,
        }]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let city = region.child("City-0");
        assert_eq!(state.route_anomalies_at(&city).count(), 1);
        let other = LocationPath::parse("Region-1").unwrap();
        assert_eq!(state.route_anomalies_at(&other).count(), 0);
    }

    #[test]
    fn cpu_defaults_to_healthy_baseline() {
        let s = scenario_with(vec![]);
        let state = NetworkState::at(&s, SimTime::from_secs(50));
        let (cpu, cause) = state.device_cpu(DeviceId(0));
        assert!(cpu < 0.5);
        assert!(cause.is_none());
    }
}
