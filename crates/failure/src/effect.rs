//! Concrete timed network conditions inflicted by failures.

use serde::{Deserialize, Serialize};
use skynet_model::{DeviceId, LinkId, LocationPath, SimTime};

/// What a network effect does while active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EffectKind {
    /// `broken` circuits of the link's circuit set are out of service. The
    /// link's capacity shrinks proportionally; with all circuits broken the
    /// link is down.
    CircuitBreaks {
        /// Affected link.
        link: LinkId,
        /// Number of broken circuits (clamped to the set size downstream).
        broken: u32,
    },
    /// The device is completely down (power loss, crash).
    DeviceDown {
        /// Affected device.
        device: DeviceId,
    },
    /// The device forwards but drops a fraction of packets (gray failure —
    /// ASIC fault, linecard error, silent loss).
    DeviceDegraded {
        /// Affected device.
        device: DeviceId,
        /// Packet-loss fraction in `[0, 1]` for traffic through the device.
        loss: f64,
        /// Whether the device itself notices and logs the fault (hardware
        /// errors usually do; silent loss does not — syslog coverage gap,
        /// §2.1).
        device_aware: bool,
    },
    /// Extra offered load on a link (DDoS, reroute spillover), as a
    /// fraction of the link's healthy capacity.
    ExtraLoad {
        /// Affected link.
        link: LinkId,
        /// Additional load as a fraction of healthy capacity (0.5 = +50%).
        load: f64,
    },
    /// The device's BGP sessions flap repeatedly.
    BgpChurn {
        /// Affected device.
        device: DeviceId,
    },
    /// Control-plane route anomaly scoped to a location.
    RouteAnomaly {
        /// Scope of the anomaly (usually a region or city).
        scope: LocationPath,
        /// What the route monitor would call it.
        anomaly: RouteAnomalyKind,
    },
    /// Device clock drifting out of PTP synchronization.
    ClockDrift {
        /// Affected device.
        device: DeviceId,
    },
    /// High CPU/RAM on a device (precursor or side effect of failures;
    /// also delays the device's own SNMP reporting, §4.2).
    ResourceExhaustion {
        /// Affected device.
        device: DeviceId,
        /// CPU utilization in `[0, 1]`.
        cpu: f64,
    },
}

/// Control-plane anomaly kinds seen by route monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteAnomalyKind {
    /// A more-specific prefix announced by the wrong origin.
    Hijack,
    /// Routes leaked beyond their intended scope.
    Leak,
    /// Loss of a default or aggregate route.
    DefaultRouteLoss,
}

/// A network effect active over `[start, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkEffect {
    /// When the condition begins.
    pub start: SimTime,
    /// When the condition clears.
    pub end: SimTime,
    /// The condition itself.
    pub kind: EffectKind,
}

impl NetworkEffect {
    /// Builds an effect over a half-open interval.
    pub fn new(start: SimTime, end: SimTime, kind: EffectKind) -> Self {
        debug_assert!(start <= end, "effect interval is inverted");
        NetworkEffect { start, end, kind }
    }

    /// True while the condition holds at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_interval() {
        let e = NetworkEffect::new(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            EffectKind::DeviceDown {
                device: DeviceId(0),
            },
        );
        assert!(!e.active_at(SimTime::from_secs(9)));
        assert!(e.active_at(SimTime::from_secs(10)));
        assert!(e.active_at(SimTime::from_millis(19_999)));
        assert!(!e.active_at(SimTime::from_secs(20)));
    }
}
