//! Failure events and scenarios (ground truth).

use crate::catalog::RootCauseCategory;
use crate::effect::NetworkEffect;
use serde::{Deserialize, Serialize};
use skynet_model::{FailureId, LocationPath, SimDuration, SimTime};
use skynet_topology::Topology;
use std::sync::Arc;

/// One injected failure: the ground-truth record the experiment harness
/// scores against, and the bundle of network effects the telemetry
/// simulators observe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Ground-truth identifier (alerts caused by this failure carry it as
    /// provenance).
    pub id: FailureId,
    /// Root-cause category (Fig. 1).
    pub category: RootCauseCategory,
    /// Human-readable description for reports.
    pub description: String,
    /// The deepest location that fully contains the failure — what a
    /// perfect locator would report.
    pub epicenter: LocationPath,
    /// Whether this is a *severe* failure (multi-device, flood-producing)
    /// or a minor one. Drives the expected-detection bookkeeping in the
    /// accuracy experiments.
    pub severe: bool,
    /// Whether the failure actually impacts customer traffic (the paper's
    /// high-availability design absorbs some root causes, §6.4). Harmless
    /// events that SkyNet reports are *not* false positives, but they are
    /// expected to be filtered by the evaluator's severity threshold.
    pub customer_impacting: bool,
    /// The concrete network conditions this failure creates.
    pub effects: Vec<NetworkEffect>,
}

impl FailureEvent {
    /// Start of the earliest effect.
    pub fn start(&self) -> SimTime {
        self.effects
            .iter()
            .map(|e| e.start)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// End of the latest effect.
    pub fn end(&self) -> SimTime {
        self.effects
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Duration from first effect start to last effect end.
    pub fn duration(&self) -> SimDuration {
        self.end().since(self.start())
    }

    /// True if any effect is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.effects.iter().any(|e| e.active_at(t))
    }
}

/// A topology plus a set of injected failures over a time horizon.
///
/// The topology is shared via `Arc`: scenarios, telemetry simulators and
/// the pipeline all hold references without cloning the network.
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: Arc<Topology>,
    events: Vec<FailureEvent>,
    horizon: SimTime,
}

impl Scenario {
    /// Builds a scenario. Events keep their insertion order; ids must be
    /// dense indexes into that order.
    ///
    /// # Panics
    /// Panics if event ids are not `0..n` in order (the injector guarantees
    /// this; manual construction must too).
    pub fn new(topology: Arc<Topology>, events: Vec<FailureEvent>, horizon: SimTime) -> Self {
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e.id.index(),
                i,
                "failure ids must be dense insertion indexes"
            );
        }
        Scenario {
            topology,
            events,
            horizon,
        }
    }

    /// The network under test.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Ground truth: every injected failure.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Looks up a failure by id.
    ///
    /// # Panics
    /// Panics on an id from a different scenario. Use [`Scenario::try_event`]
    /// when the id comes from untrusted provenance (e.g. replayed alert
    /// streams).
    pub fn event(&self, id: FailureId) -> &FailureEvent {
        &self.events[id.index()]
    }

    /// Looks up a failure by id, returning `None` for a foreign or stale id
    /// instead of panicking.
    pub fn try_event(&self, id: FailureId) -> Option<&FailureEvent> {
        self.events.get(id.index())
    }

    /// End of the simulated window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Failures with any effect active at `t`.
    pub fn active_at(&self, t: SimTime) -> impl Iterator<Item = &FailureEvent> {
        self.events.iter().filter(move |e| e.active_at(t))
    }

    /// Failures the accuracy experiments expect SkyNet to detect: severe
    /// or customer-impacting ones (minor absorbed glitches are not false
    /// negatives when missed, §6.4).
    pub fn must_detect(&self) -> impl Iterator<Item = &FailureEvent> {
        self.events
            .iter()
            .filter(|e| e.severe || e.customer_impacting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::EffectKind;
    use skynet_model::DeviceId;
    use skynet_topology::{generate, GeneratorConfig};

    fn event(id: u32, start: u64, end: u64) -> FailureEvent {
        FailureEvent {
            id: FailureId(id),
            category: RootCauseCategory::DeviceHardware,
            description: "test".into(),
            epicenter: LocationPath::parse("R").unwrap(),
            severe: id.is_multiple_of(2),
            customer_impacting: true,
            effects: vec![NetworkEffect::new(
                SimTime::from_secs(start),
                SimTime::from_secs(end),
                EffectKind::DeviceDown {
                    device: DeviceId(0),
                },
            )],
        }
    }

    #[test]
    fn event_time_bounds() {
        let mut e = event(0, 10, 50);
        e.effects.push(NetworkEffect::new(
            SimTime::from_secs(5),
            SimTime::from_secs(30),
            EffectKind::DeviceDown {
                device: DeviceId(1),
            },
        ));
        assert_eq!(e.start(), SimTime::from_secs(5));
        assert_eq!(e.end(), SimTime::from_secs(50));
        assert_eq!(e.duration(), SimDuration::from_secs(45));
        assert!(e.active_at(SimTime::from_secs(40)));
        assert!(!e.active_at(SimTime::from_secs(50)));
    }

    #[test]
    fn scenario_queries() {
        let topo = Arc::new(generate(&GeneratorConfig::small()));
        let s = Scenario::new(
            topo,
            vec![event(0, 0, 10), event(1, 20, 30)],
            SimTime::from_secs(60),
        );
        assert_eq!(s.active_at(SimTime::from_secs(5)).count(), 1);
        assert_eq!(s.active_at(SimTime::from_secs(15)).count(), 0);
        assert_eq!(s.active_at(SimTime::from_secs(25)).count(), 1);
        assert_eq!(s.must_detect().count(), 2);
        assert_eq!(s.event(FailureId(1)).id, FailureId(1));
        assert_eq!(s.try_event(FailureId(1)).map(|e| e.id), Some(FailureId(1)));
        assert_eq!(s.try_event(FailureId(99)), None);
    }

    #[test]
    #[should_panic(expected = "dense insertion indexes")]
    fn non_dense_ids_panic() {
        let topo = Arc::new(generate(&GeneratorConfig::small()));
        Scenario::new(topo, vec![event(3, 0, 1)], SimTime::from_secs(1));
    }
}
