//! Failure constructors and the Fig. 1-weighted random injector.
//!
//! Each constructor builds one [`FailureEvent`] with the network effects the
//! real-world failure would inflict, including *propagated* effects: a dead
//! aggregation device spills its traffic onto its ECMP siblings (the
//! congestion-follows-reroute dynamic behind the §2.2 war story), a DDoS
//! loads the victim's entry links, an infrastructure outage takes a whole
//! cluster down.

use crate::catalog::RootCauseCategory;
use crate::effect::{EffectKind, NetworkEffect, RouteAnomalyKind};
use crate::scenario::{FailureEvent, Scenario};
use rand::prelude::*;
use skynet_model::{
    DeviceId, FailureId, LinkId, LocationLevel, LocationPath, SimDuration, SimTime,
};
use skynet_topology::{DeviceRole, Topology};
use std::sync::Arc;

/// Accumulates failure events against a topology and finishes into a
/// [`Scenario`].
#[derive(Debug)]
pub struct Injector {
    topo: Arc<Topology>,
    events: Vec<FailureEvent>,
}

impl Injector {
    /// Starts injecting against a topology.
    pub fn new(topo: Arc<Topology>) -> Self {
        Injector {
            topo,
            events: Vec::new(),
        }
    }

    /// The topology under injection.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Number of events injected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes into a scenario covering `[0, horizon)`.
    pub fn finish(self, horizon: SimTime) -> Scenario {
        Scenario::new(self.topo, self.events, horizon)
    }

    fn push(&mut self, mut event: FailureEvent) -> FailureId {
        let id = FailureId::from_index(self.events.len());
        event.id = id;
        self.events.push(event);
        id
    }

    /// True if any customer flow rides a link of this device.
    fn impacts_customers(&self, device: DeviceId) -> bool {
        self.topo.links_of(device).iter().any(|&l| {
            !self
                .topo
                .flows_on_circuit_set(self.topo.link(l).circuit_set.id)
                .is_empty()
        })
    }

    /// Spillover effects: the base traffic of `device`'s links redistributed
    /// as [`EffectKind::ExtraLoad`] onto the parallel links of its ECMP
    /// siblings (devices of the same aggregation group).
    fn spillover(&self, device: DeviceId, start: SimTime, end: SimTime) -> Vec<NetworkEffect> {
        let dev = self.topo.device(device);
        let group_loc = dev.location.truncate_at(dev.role.serves_level());
        let siblings: Vec<DeviceId> = self
            .topo
            .agg_group(&group_loc)
            .iter()
            .copied()
            .filter(|&d| d != device)
            .collect();
        if siblings.is_empty() {
            return Vec::new();
        }
        let mut effects = Vec::new();
        for &link_id in self.topo.links_of(device) {
            let link = self.topo.link(link_id);
            let base: f64 = self
                .topo
                .flows_on_circuit_set(link.circuit_set.id)
                .iter()
                .map(|&i| self.topo.flows()[i].rate_gbps)
                .sum();
            if base <= 0.0 {
                continue;
            }
            let Some(peer) = link.other(device).and_then(|e| e.device()) else {
                continue;
            };
            // The peer re-hashes the displaced traffic across its links to
            // the surviving siblings.
            let sibling_links: Vec<LinkId> = siblings
                .iter()
                .filter_map(|&s| self.topo.link_between(peer, s))
                .collect();
            if sibling_links.is_empty() {
                continue;
            }
            let share = base / sibling_links.len() as f64;
            for sl in sibling_links {
                let cap = self.topo.link(sl).circuit_set.total_capacity_gbps();
                if cap <= 0.0 {
                    continue;
                }
                effects.push(NetworkEffect::new(
                    start,
                    end,
                    EffectKind::ExtraLoad {
                        link: sl,
                        load: share / cap,
                    },
                ));
            }
        }
        effects
    }

    /// Fig. 2a-style known failure: one device develops a hardware fault,
    /// dropping a fraction of transit packets. `device_aware` hardware
    /// errors also appear in the device's syslog.
    pub fn device_hardware(
        &mut self,
        device: DeviceId,
        start: SimTime,
        duration: SimDuration,
        loss: f64,
        device_aware: bool,
    ) -> FailureId {
        let end = start + duration;
        let dev = self.topo.device(device);
        let severe = dev.role != DeviceRole::Leaf;
        let epicenter = dev.location.clone();
        let customer_impacting = self.impacts_customers(device);
        let effects = vec![
            NetworkEffect::new(
                start,
                end,
                EffectKind::DeviceDegraded {
                    device,
                    loss,
                    device_aware,
                },
            ),
            NetworkEffect::new(
                start,
                end,
                EffectKind::ResourceExhaustion { device, cpu: 0.92 },
            ),
        ];
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::DeviceHardware,
            description: format!(
                "hardware fault on {} ({:.0}% loss)",
                dev.name(),
                loss * 100.0
            ),
            epicenter,
            severe,
            customer_impacting,
            effects,
        })
    }

    /// Whole-device outage with traffic spilling onto ECMP siblings.
    pub fn device_down(
        &mut self,
        device: DeviceId,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let dev = self.topo.device(device);
        let severe = dev.role != DeviceRole::Leaf;
        let epicenter = dev.location.clone();
        let customer_impacting = self.impacts_customers(device);
        let mut effects = vec![NetworkEffect::new(
            start,
            end,
            EffectKind::DeviceDown { device },
        )];
        effects.extend(self.spillover(device, start, end));
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::DeviceHardware,
            description: format!("device {} down", dev.name()),
            epicenter,
            severe,
            customer_impacting,
            effects,
        })
    }

    /// The §2.2 severe failure: a fraction of the circuits of *every*
    /// Internet entry link of a region break at once. The surviving
    /// capacity congests under the unchanged offered load.
    pub fn entry_cable_cut(
        &mut self,
        region: &LocationPath,
        fraction: f64,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let entries = self.topo.internet_entries(region).to_vec();
        assert!(
            !entries.is_empty(),
            "region {region} has no internet entries"
        );
        let effects: Vec<NetworkEffect> = entries
            .iter()
            .map(|&link| {
                let circuits = self.topo.link(link).circuit_set.circuits;
                let broken = ((f64::from(circuits) * fraction).round() as u32).min(circuits);
                NetworkEffect::new(start, end, EffectKind::CircuitBreaks { link, broken })
            })
            .collect();
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Link,
            description: format!(
                "{:.0}% of internet entry circuits of {region} cut",
                fraction * 100.0
            ),
            epicenter: region.clone(),
            severe: true,
            customer_impacting: true,
            effects,
        })
    }

    /// Breaks `broken` circuits of one link's set.
    pub fn link_cut(
        &mut self,
        link: LinkId,
        broken: u32,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let l = self.topo.link(link);
        let full = broken >= l.circuit_set.circuits;
        let epicenter = match (l.a.device(), l.b.device()) {
            (Some(a), Some(b)) => self
                .topo
                .device(a)
                .location
                .common_ancestor(&self.topo.device(b).location),
            (Some(d), None) | (None, Some(d)) => self
                .topo
                .device(d)
                .location
                .truncate_at(LocationLevel::Region),
            (None, None) => LocationPath::root(),
        };
        let customer_impacting =
            full && !self.topo.flows_on_circuit_set(l.circuit_set.id).is_empty();
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Link,
            description: format!("{broken} circuits of {link} cut"),
            epicenter,
            severe: full,
            customer_impacting,
            effects: vec![NetworkEffect::new(
                start,
                end,
                EffectKind::CircuitBreaks { link, broken },
            )],
        })
    }

    /// A DDoS attack on a cluster: its uplinks and its region's entry links
    /// are flooded with extra load (§5.1 "multiple scene detection" hit
    /// five locations at once — call this five times).
    pub fn ddos(
        &mut self,
        cluster: &LocationPath,
        load: f64,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let mut effects = Vec::new();
        // Uplinks of the victim cluster's leaves.
        for &leaf in self.topo.agg_group(cluster) {
            for &l in self.topo.links_of(leaf) {
                effects.push(NetworkEffect::new(
                    start,
                    end,
                    EffectKind::ExtraLoad { link: l, load },
                ));
            }
        }
        // The attack volume stays within the region's entry headroom (or
        // is scrubbed upstream): the victim's uplinks are the choke point.
        // This keeps simultaneous scenes *separate* incidents, as in the
        // paper's five-location DDoS (§5.1).
        assert!(!effects.is_empty(), "cluster {cluster} has no leaves");
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Security,
            description: format!("DDoS on {cluster} (+{:.0}% load)", load * 100.0),
            epicenter: cluster.clone(),
            severe: true,
            customer_impacting: true,
            effects,
        })
    }

    /// A failed network modification on a device: BGP churn plus a brief
    /// degradation while the bad change is live.
    pub fn modification_error(
        &mut self,
        device: DeviceId,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let dev = self.topo.device(device);
        let customer_impacting = self.impacts_customers(device);
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::NetworkModification,
            description: format!("modification failed on {}", dev.name()),
            epicenter: dev.location.clone(),
            severe: false,
            customer_impacting,
            effects: vec![
                NetworkEffect::new(start, end, EffectKind::BgpChurn { device }),
                NetworkEffect::new(
                    start,
                    end,
                    EffectKind::DeviceDegraded {
                        device,
                        loss: 0.05,
                        device_aware: true,
                    },
                ),
            ],
        })
    }

    /// A control-plane route error scoped to a location.
    pub fn route_error(
        &mut self,
        scope: &LocationPath,
        anomaly: RouteAnomalyKind,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Route,
            description: format!("route anomaly {anomaly:?} in {scope}"),
            epicenter: scope.clone(),
            severe: false,
            customer_impacting: matches!(anomaly, RouteAnomalyKind::DefaultRouteLoss),
            effects: vec![NetworkEffect::new(
                start,
                end,
                EffectKind::RouteAnomaly {
                    scope: scope.clone(),
                    anomaly,
                },
            )],
        })
    }

    /// A device software error (§2.4's case: runtime errors, reported to
    /// the vendor): device-aware degradation plus BGP churn and memory
    /// pressure.
    pub fn software_error(
        &mut self,
        device: DeviceId,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let dev = self.topo.device(device);
        let customer_impacting = self.impacts_customers(device);
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::DeviceSoftware,
            description: format!("software error on {}", dev.name()),
            epicenter: dev.location.clone(),
            severe: false,
            customer_impacting,
            effects: vec![
                NetworkEffect::new(
                    start,
                    end,
                    EffectKind::DeviceDegraded {
                        device,
                        loss: 0.10,
                        device_aware: true,
                    },
                ),
                NetworkEffect::new(start, end, EffectKind::BgpChurn { device }),
                NetworkEffect::new(
                    start,
                    end,
                    EffectKind::ResourceExhaustion { device, cpu: 0.97 },
                ),
            ],
        })
    }

    /// An infrastructure (power/cooling) outage taking down every device
    /// under a location.
    pub fn infrastructure_outage(
        &mut self,
        location: &LocationPath,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let victims: Vec<DeviceId> = self.topo.devices_under(location).map(|d| d.id).collect();
        assert!(!victims.is_empty(), "no devices under {location}");
        let customer_impacting = victims.iter().any(|&d| self.impacts_customers(d));
        let mut effects: Vec<NetworkEffect> = victims
            .iter()
            .map(|&device| NetworkEffect::new(start, end, EffectKind::DeviceDown { device }))
            .collect();
        for &v in &victims {
            effects.extend(self.spillover(v, start, end));
        }
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Infrastructure,
            description: format!("power outage under {location} ({} devices)", victims.len()),
            epicenter: location.clone(),
            severe: victims.len() > 1,
            customer_impacting,
            effects,
        })
    }

    /// A configuration error on a device: route leak out of its location
    /// plus BGP churn.
    pub fn config_error(
        &mut self,
        device: DeviceId,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let end = start + duration;
        let dev = self.topo.device(device);
        let scope = dev.location.truncate_at(LocationLevel::LogicSite);
        self.push(FailureEvent {
            id: FailureId(0),
            category: RootCauseCategory::Configuration,
            description: format!("configuration error on {}", dev.name()),
            epicenter: dev.location.clone(),
            severe: false,
            customer_impacting: false,
            effects: vec![
                NetworkEffect::new(start, end, EffectKind::BgpChurn { device }),
                NetworkEffect::new(
                    start,
                    end,
                    EffectKind::RouteAnomaly {
                        scope,
                        anomaly: RouteAnomalyKind::Leak,
                    },
                ),
            ],
        })
    }

    /// Injects one failure with a Fig. 1-weighted random category, a random
    /// target and the given time span. Used to build long-run corpora with
    /// the paper's root-cause mix.
    pub fn random<R: Rng>(
        &mut self,
        rng: &mut R,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let weights: Vec<f64> = RootCauseCategory::ALL
            .iter()
            .map(|c| c.paper_share())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut category = RootCauseCategory::DeviceHardware;
        for (c, w) in RootCauseCategory::ALL.iter().zip(&weights) {
            if pick < *w {
                category = *c;
                break;
            }
            pick -= *w;
        }
        self.random_of_category(rng, category, start, duration)
    }

    /// Injects one failure of the given category with a random target.
    pub fn random_of_category<R: Rng>(
        &mut self,
        rng: &mut R,
        category: RootCauseCategory,
        start: SimTime,
        duration: SimDuration,
    ) -> FailureId {
        let device = DeviceId::from_index(rng.gen_range(0..self.topo.devices().len()));
        match category {
            RootCauseCategory::DeviceHardware => {
                if rng.gen_bool(0.5) {
                    self.device_down(device, start, duration)
                } else {
                    let loss = rng.gen_range(0.05..0.6);
                    self.device_hardware(device, start, duration, loss, rng.gen_bool(0.7))
                }
            }
            RootCauseCategory::Link => {
                let link = self.topo.links()[rng.gen_range(0..self.topo.links().len())].id;
                let circuits = self.topo.link(link).circuit_set.circuits;
                let broken = rng.gen_range(1..=circuits);
                self.link_cut(link, broken, start, duration)
            }
            RootCauseCategory::NetworkModification => {
                self.modification_error(device, start, duration)
            }
            RootCauseCategory::DeviceSoftware => self.software_error(device, start, duration),
            RootCauseCategory::Infrastructure => {
                let clusters = self.topo.clusters();
                let cluster = clusters[rng.gen_range(0..clusters.len())].clone();
                self.infrastructure_outage(&cluster, start, duration)
            }
            RootCauseCategory::Route => {
                let scope = self
                    .topo
                    .device(device)
                    .location
                    .truncate_at(LocationLevel::City);
                let anomaly = match rng.gen_range(0..3) {
                    0 => RouteAnomalyKind::Hijack,
                    1 => RouteAnomalyKind::Leak,
                    _ => RouteAnomalyKind::DefaultRouteLoss,
                };
                self.route_error(&scope, anomaly, start, duration)
            }
            RootCauseCategory::Security => {
                let clusters = self.topo.clusters();
                let cluster = clusters[rng.gen_range(0..clusters.len())].clone();
                self.ddos(&cluster, rng.gen_range(1.0..4.0), start, duration)
            }
            RootCauseCategory::Configuration => self.config_error(device, start, duration),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NetworkState;
    use rand_chacha::ChaCha8Rng;
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    #[test]
    fn entry_cable_cut_congests_surviving_entries() {
        let topo = topo();
        let region = LocationPath::parse("Region-0").unwrap();
        let mut inj = Injector::new(topo.clone());
        inj.entry_cable_cut(
            &region,
            0.5,
            SimTime::from_secs(60),
            SimDuration::from_mins(30),
        );
        let s = inj.finish(SimTime::from_mins(60));
        let state = NetworkState::at(&s, SimTime::from_mins(5));
        for &entry in topo.internet_entries(&region) {
            let (n, _) = state.broken_circuits(entry).unwrap();
            assert_eq!(n, topo.link(entry).circuit_set.circuits / 2);
            // Remaining capacity halves, utilization doubles vs healthy.
            let healthy_cap = topo.link(entry).circuit_set.total_capacity_gbps();
            assert!((state.remaining_capacity_gbps(entry) - healthy_cap / 2.0).abs() < 1e-9);
        }
        let event = &s.events()[0];
        assert!(event.severe);
        assert_eq!(event.category, RootCauseCategory::Link);
        assert_eq!(event.epicenter, region);
    }

    #[test]
    fn device_down_spills_load_onto_siblings() {
        let topo = topo();
        // Pick a CSR that carries flows.
        let csr = topo
            .devices()
            .iter()
            .find(|d| {
                d.role == DeviceRole::Csr
                    && topo.links_of(d.id).iter().any(|&l| {
                        !topo
                            .flows_on_circuit_set(topo.link(l).circuit_set.id)
                            .is_empty()
                    })
            })
            .expect("some CSR carries flows")
            .id;
        let mut inj = Injector::new(topo.clone());
        inj.device_down(csr, SimTime::ZERO, SimDuration::from_mins(10));
        let s = inj.finish(SimTime::from_mins(20));
        let has_spillover = s.events()[0]
            .effects
            .iter()
            .any(|e| matches!(e.kind, EffectKind::ExtraLoad { .. }));
        assert!(has_spillover, "dead CSR must spill load onto siblings");
    }

    #[test]
    fn ddos_loads_cluster_uplinks_and_entries() {
        let topo = topo();
        let cluster = topo.clusters()[0].clone();
        let mut inj = Injector::new(topo.clone());
        inj.ddos(&cluster, 2.0, SimTime::ZERO, SimDuration::from_mins(5));
        let s = inj.finish(SimTime::from_mins(10));
        let state = NetworkState::at(&s, SimTime::from_secs(30));
        let leaf = topo.agg_group(&cluster)[0];
        let uplink = topo.links_of(leaf)[0];
        let (util, cause) = state.utilization(uplink);
        assert!(util > 1.0, "DDoS must congest uplinks, got {util}");
        assert_eq!(cause, Some(FailureId(0)));
    }

    #[test]
    fn random_injection_is_deterministic_and_well_formed() {
        let topo = topo();
        let make = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut inj = Injector::new(topo.clone());
            for i in 0..50 {
                inj.random(
                    &mut rng,
                    SimTime::from_mins(i * 10),
                    SimDuration::from_mins(5),
                );
            }
            inj.finish(SimTime::from_mins(600))
        };
        let a = make(1);
        let b = make(1);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 50);
        for e in a.events() {
            assert!(!e.effects.is_empty(), "{} has no effects", e.description);
        }
    }

    #[test]
    fn random_mix_approximates_figure1() {
        let topo = topo();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut inj = Injector::new(topo.clone());
        let n = 2000;
        for i in 0..n {
            inj.random(&mut rng, SimTime::from_secs(i), SimDuration::from_secs(10));
        }
        let s = inj.finish(SimTime::from_secs(3000));
        let hw = s
            .events()
            .iter()
            .filter(|e| e.category == RootCauseCategory::DeviceHardware)
            .count() as f64
            / n as f64;
        // 42.6% ± 4 points.
        assert!((hw - 0.426).abs() < 0.04, "hardware share {hw}");
    }

    #[test]
    fn infrastructure_outage_downs_every_cluster_device() {
        let topo = topo();
        let cluster = topo.clusters()[1].clone();
        let mut inj = Injector::new(topo.clone());
        inj.infrastructure_outage(&cluster, SimTime::ZERO, SimDuration::from_mins(5));
        let s = inj.finish(SimTime::from_mins(10));
        let state = NetworkState::at(&s, SimTime::from_secs(10));
        for d in topo.devices_under(&cluster) {
            assert!(state.device_down(d.id).is_some(), "{} alive", d.name());
        }
    }
}
