//! Root-cause taxonomy with the observed production mix of Fig. 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Root-cause category of a network failure, with the proportions the paper
/// reports for its production network (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RootCauseCategory {
    /// Device hardware error — 42.6% of failures.
    DeviceHardware,
    /// Link error (cable, optics) — 18.5%.
    Link,
    /// Network modification error (bad maintenance/config push) — 16.7%.
    NetworkModification,
    /// Device software error — 9.3%.
    DeviceSoftware,
    /// Infrastructure error (power, cooling, facility) — 9.3%.
    Infrastructure,
    /// Route error (control plane) — 1.9%.
    Route,
    /// Security incident (e.g. DDoS) — 1.9%.
    Security,
    /// Configuration error — 1.9%.
    Configuration,
}

impl RootCauseCategory {
    /// All categories, Fig. 1 order (largest share first).
    pub const ALL: [RootCauseCategory; 8] = [
        RootCauseCategory::DeviceHardware,
        RootCauseCategory::Link,
        RootCauseCategory::NetworkModification,
        RootCauseCategory::DeviceSoftware,
        RootCauseCategory::Infrastructure,
        RootCauseCategory::Route,
        RootCauseCategory::Security,
        RootCauseCategory::Configuration,
    ];

    /// The paper's observed share of failures in this category (Fig. 1).
    pub const fn paper_share(self) -> f64 {
        match self {
            RootCauseCategory::DeviceHardware => 0.426,
            RootCauseCategory::Link => 0.185,
            RootCauseCategory::NetworkModification => 0.167,
            RootCauseCategory::DeviceSoftware => 0.093,
            RootCauseCategory::Infrastructure => 0.093,
            RootCauseCategory::Route => 0.019,
            RootCauseCategory::Security => 0.019,
            RootCauseCategory::Configuration => 0.019,
        }
    }

    /// Display name matching Fig. 1's labels.
    pub const fn name(self) -> &'static str {
        match self {
            RootCauseCategory::DeviceHardware => "Device hardware error",
            RootCauseCategory::Link => "Link error",
            RootCauseCategory::NetworkModification => "Network modification error",
            RootCauseCategory::DeviceSoftware => "Device software error",
            RootCauseCategory::Infrastructure => "Infrastructure error",
            RootCauseCategory::Route => "Route error",
            RootCauseCategory::Security => "Security error",
            RootCauseCategory::Configuration => "Configuration error",
        }
    }
}

impl fmt::Display for RootCauseCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let sum: f64 = RootCauseCategory::ALL.iter().map(|c| c.paper_share()).sum();
        assert!((sum - 1.021).abs() < 1e-9, "Fig. 1 shares sum to {sum}");
        // (Fig. 1's printed percentages add to 102.1% due to rounding in
        // the paper; we keep the printed values and normalize on sampling.)
    }

    #[test]
    fn hardware_is_the_plurality() {
        for c in RootCauseCategory::ALL {
            assert!(RootCauseCategory::DeviceHardware.paper_share() >= c.paper_share());
        }
    }
}
