//! # skynet-failure
//!
//! Failure injection and propagation — the ground-truth generator standing
//! in for the paper's production incidents. A [`Scenario`] couples a
//! topology with a set of [`FailureEvent`]s; each event carries the
//! *network effects* it inflicts (circuit breaks, device loss, congestion,
//! BGP churn, …) over a time span. Telemetry simulators read the resulting
//! [`NetworkState`] snapshots to decide what alerts to emit, and the
//! experiment harness reads the events back as ground truth to score
//! SkyNet's false positives and negatives.
//!
//! - [`catalog`] — the root-cause taxonomy with Fig. 1's observed mix.
//! - [`effect`] — concrete timed network conditions.
//! - [`scenario`] — failure events, scenarios, ground-truth queries.
//! - [`state`] — the dynamic network state at an instant.
//! - [`inject`] — constructors for the paper's canonical failures plus a
//!   Fig. 1-weighted random sampler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod effect;
pub mod inject;
pub mod scenario;
pub mod state;

pub use catalog::RootCauseCategory;
pub use effect::NetworkEffect;
pub use inject::Injector;
pub use scenario::{FailureEvent, Scenario};
pub use state::NetworkState;
