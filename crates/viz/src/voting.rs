//! Alert-voting graphs over an incident's scope.

use serde::{Deserialize, Serialize};
use skynet_core::locator::Incident;
use skynet_model::{DeviceId, LinkId};
use skynet_topology::Topology;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// The voted device/link graph of one incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VotingGraph {
    /// Devices in scope with their vote counts.
    pub device_votes: Vec<(DeviceId, u32)>,
    /// Links in scope (both endpoints in scope) with their vote counts.
    pub link_votes: Vec<(LinkId, u32)>,
}

impl VotingGraph {
    /// Builds the graph: the scope is every device under the incident
    /// root; each alert votes for the devices its location covers and, via
    /// propagation, for their links and direct neighbours.
    pub fn build(topo: &Arc<Topology>, incident: &Incident) -> Self {
        let scope: Vec<DeviceId> = topo.devices_under(&incident.root).map(|d| d.id).collect();
        let in_scope: std::collections::HashSet<DeviceId> = scope.iter().copied().collect();
        let mut device_votes: HashMap<DeviceId, u32> = scope.iter().map(|&d| (d, 0)).collect();
        let mut link_votes: HashMap<LinkId, u32> = HashMap::new();
        for &d in &scope {
            for &l in topo.links_of(d) {
                let link = topo.link(l);
                let both_in = [link.a.device(), link.b.device()]
                    .into_iter()
                    .all(|e| e.is_none_or(|dev| in_scope.contains(&dev)));
                if both_in {
                    link_votes.entry(l).or_insert(0);
                }
            }
        }

        for alert in &incident.alerts {
            // Weight each alert once regardless of its consolidated count:
            // a storm of identical messages should not dominate the vote.
            let voters: Vec<DeviceId> = scope
                .iter()
                .copied()
                .filter(|&d| alert.location.contains(&topo.device(d).location))
                .collect();
            for d in voters {
                *device_votes.get_mut(&d).expect("scope device") += 1;
                for &l in topo.links_of(d) {
                    if let Some(v) = link_votes.get_mut(&l) {
                        *v += 1;
                        // The link passes the vote to its other endpoint.
                        if let Some(peer) = topo.link(l).other(d).and_then(|e| e.device()) {
                            if let Some(pv) = device_votes.get_mut(&peer) {
                                *pv += 1;
                            }
                        }
                    }
                }
            }
        }

        let mut device_votes: Vec<(DeviceId, u32)> = device_votes.into_iter().collect();
        device_votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut link_votes: Vec<(LinkId, u32)> = link_votes.into_iter().collect();
        link_votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        VotingGraph {
            device_votes,
            link_votes,
        }
    }

    /// The device with the most votes, if any device is in scope.
    pub fn top_device(&self) -> Option<(DeviceId, u32)> {
        self.device_votes.first().copied()
    }

    /// Graphviz DOT rendering: node shade scales with votes (the Fig. 11
    /// highlighting).
    pub fn to_dot(&self, topo: &Topology) -> String {
        let max = self
            .device_votes
            .first()
            .map(|&(_, v)| v.max(1))
            .unwrap_or(1);
        let mut s = String::from("graph incident {\n  node [style=filled];\n");
        for &(d, votes) in &self.device_votes {
            let dev = topo.device(d);
            let shade = 100 - (votes * 60 / max).min(60); // 100 = white, 40 = dark
            let _ = writeln!(
                s,
                "  \"{}\" [label=\"{}\\n{} ({votes})\", fillcolor=\"gray{shade}\"];",
                dev.name(),
                dev.role,
                dev.name(),
            );
        }
        for &(l, votes) in &self.link_votes {
            let link = topo.link(l);
            let (Some(a), Some(b)) = (link.a.device(), link.b.device()) else {
                continue;
            };
            let width = 1 + (votes * 4 / max.max(1)).min(4);
            let _ = writeln!(
                s,
                "  \"{}\" -- \"{}\" [penwidth={width}];",
                topo.device(a).name(),
                topo.device(b).name(),
            );
        }
        s.push_str("}\n");
        s
    }

    /// ASCII vote table, highest first.
    pub fn render(&self, topo: &Topology, top: usize) -> String {
        let mut s = String::from("votes  device\n");
        for &(d, votes) in self.device_votes.iter().take(top) {
            let dev = topo.device(d);
            let _ = writeln!(s, "{votes:>5}  {} [{}]", dev.location, dev.role);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{
        AlertKind, DataSource, IncidentId, LocationPath, RawAlert, SimTime, StructuredAlert,
    };
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn salert(kind: AlertKind, location: LocationPath, count: u32) -> StructuredAlert {
        let raw = RawAlert::known(DataSource::Syslog, SimTime::ZERO, location, kind);
        let mut s = StructuredAlert::from_raw(&raw, kind);
        s.count = count;
        s
    }

    fn incident(topo: &Topology, device: DeviceId) -> Incident {
        let loc = topo.device(device).location.clone();
        Incident {
            id: IncidentId(0),
            root: loc.truncate_at(skynet_model::LocationLevel::Site),
            first_seen: SimTime::ZERO,
            last_seen: SimTime::from_secs(60),
            alerts: vec![
                salert(AlertKind::HardwareError, loc.clone(), 1),
                salert(AlertKind::PortDown, loc, 400),
            ],
        }
    }

    #[test]
    fn single_device_alerts_vote_device_and_neighbours_equally() {
        let t = topo();
        // A leaf inside some cluster.
        let leaf = t.agg_group(&t.clusters()[0])[0];
        let i = incident(&t, leaf);
        let g = VotingGraph::build(&t, &i);
        let leaf_votes = g
            .device_votes
            .iter()
            .find(|&&(d, _)| d == leaf)
            .map(|&(_, v)| v)
            .unwrap();
        // Two alerts → two self-votes; paper voting is equal-weight, so
        // the uplink CSRs tie with the leaf. Storm count (400) must not
        // multiply the vote.
        assert_eq!(leaf_votes, 2);
        assert_eq!(g.top_device().unwrap().1, 2);
    }

    #[test]
    fn shared_neighbour_aggregates_votes_like_the_reflector_case() {
        let t = topo();
        // Every leaf of one cluster alerts (a cluster-wide failure whose
        // common element is the aggregation layer — the §7.1 situation).
        let cluster = t.clusters()[0].clone();
        let leaves = t.agg_group(&cluster).to_vec();
        assert!(leaves.len() >= 2);
        let alerts: Vec<StructuredAlert> = leaves
            .iter()
            .map(|&l| salert(AlertKind::PortDown, t.device(l).location.clone(), 1))
            .collect();
        let i = Incident {
            id: IncidentId(0),
            root: cluster.truncate_at(skynet_model::LocationLevel::Site),
            first_seen: SimTime::ZERO,
            last_seen: SimTime::from_secs(60),
            alerts,
        };
        let g = VotingGraph::build(&t, &i);
        let (top, votes) = g.top_device().unwrap();
        // The CSRs receive one propagated vote per alerting leaf and beat
        // any single leaf (1 self-vote each).
        assert_eq!(t.device(top).role, skynet_topology::DeviceRole::Csr);
        assert_eq!(votes as usize, leaves.len());
    }

    #[test]
    fn dot_output_is_well_formed() {
        let t = topo();
        let leaf = t.agg_group(&t.clusters()[0])[0];
        let g = VotingGraph::build(&t, &incident(&t, leaf));
        let dot = g.to_dot(&t);
        assert!(dot.starts_with("graph incident {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("--"));
        assert!(dot.contains(t.device(leaf).name()));
    }

    #[test]
    fn render_lists_top_devices() {
        let t = topo();
        let leaf = t.agg_group(&t.clusters()[0])[0];
        let g = VotingGraph::build(&t, &incident(&t, leaf));
        let text = g.render(&t, 3);
        assert!(text.lines().count() <= 4);
        assert!(text.contains("LEAF") || text.contains("CSR"));
    }

    #[test]
    fn empty_incident_graph_is_safe() {
        let t = topo();
        let i = Incident {
            id: IncidentId(0),
            root: LocationPath::parse("NoSuchRegion").unwrap(),
            first_seen: SimTime::ZERO,
            last_seen: SimTime::ZERO,
            alerts: vec![],
        };
        let g = VotingGraph::build(&t, &i);
        assert!(g.top_device().is_none());
        assert!(g.to_dot(&t).contains("graph incident"));
    }
}
