//! The metrics registry: atomic counters, gauges and fixed-bucket
//! histograms behind cloneable handles.
//!
//! Handles are `Arc`-shared atomics, so the hot path never takes the
//! registry lock — registration happens once per stage construction and
//! is idempotent (re-registering a name returns the existing handle, which
//! is how supervisor restarts keep accumulating into the same counters).
//! Export happens through [`MetricsRegistry::snapshot`], a single pass
//! under one read lock, feeding the [`export`](crate::obs::export)
//! formatters.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere) — useful for tests and
    /// for stages running without observability.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in one atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default histogram buckets for stage latencies in seconds: 1 µs … 10 s,
/// roughly ×4 per step.
pub const LATENCY_BUCKETS: [f64; 10] = [
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 0.25, 10.0,
];

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive, Prometheus `le` semantics), strictly
    /// increasing. Values above the last bound land in the implicit
    /// `+Inf` bucket.
    bounds: Box<[f64]>,
    /// Per-bucket observation counts (NOT cumulative; one slot per bound
    /// plus the final `+Inf` slot).
    buckets: Box<[AtomicU64]>,
    /// Sum of observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram. Observation is lock-free: a linear probe over
/// the (small, fixed) bound array plus one relaxed `fetch_add`.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A histogram over the given inclusive upper bounds. Bounds must be
    /// finite and strictly increasing; an implicit `+Inf` bucket is always
    /// appended.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.into(),
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// A detached latency histogram (not registered anywhere).
    pub fn detached() -> Self {
        Histogram::new(&LATENCY_BUCKETS)
    }

    /// Records one observation. `NaN` observations are dropped.
    #[inline]
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let inner = &*self.0;
        let slot = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[slot].fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.0.bounds.to_vec(),
            counts,
            sum: self.sum(),
        }
    }
}

/// One histogram's exported state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (the implicit `+Inf` bucket is `counts`'
    /// extra final entry).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative counts per bound, Prometheus `le` style (the final entry
    /// is the `+Inf` total).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// The exported value of one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's buckets and sum.
    Histogram(HistogramSnapshot),
}

/// One metric in a snapshot: family name, optional single label pair, help
/// text and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// The metric family name (e.g. `skynet_ingest_rejected_total`).
    pub name: String,
    /// An optional `(key, value)` label distinguishing series of one
    /// family (e.g. `("reason", "stale-timestamp")`).
    pub label: Option<(String, String)>,
    /// One-line help text.
    pub help: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The full series name, label included, as exporters print it.
    pub fn series(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
            None => self.name.clone(),
        }
    }
}

/// A one-pass, consistent-ordering snapshot of every registered metric,
/// sorted by family name then label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Every metric, in stable export order.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Looks one series up by family name and optional label value.
    pub fn get(&self, name: &str, label: Option<&str>) -> Option<&MetricSnapshot> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.label.as_ref().map(|(_, v)| v.as_str()) == label)
    }

    /// A counter's value, `0` if absent.
    pub fn counter(&self, name: &str, label: Option<&str>) -> u64 {
        match self.get(name, label).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's value, `0.0` if absent.
    pub fn gauge(&self, name: &str, label: Option<&str>) -> f64 {
        match self.get(name, label).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Registered {
    help: String,
    metric: Metric,
}

/// Key: `(family, label_value)` — the registry supports at most one label
/// key per family, which covers every SkyNet series and keeps exporters
/// simple.
type SeriesKey = (String, Option<(String, String)>);

/// The registry every pipeline stage registers its metrics into.
///
/// Cloning is cheap (shared state); the pipeline, its shards and worker
/// restarts all feed one registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<BTreeMap<SeriesKey, Registered>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register_with(&self, key: SeriesKey, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.write();
        inner
            .entry(key)
            .or_insert_with(|| Registered {
                help: help.to_string(),
                metric: make(),
            })
            .metric
            .clone()
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.labeled_counter(name, None, help)
    }

    /// Registers (or retrieves) a counter with one `(key, value)` label.
    pub fn labeled_counter(&self, name: &str, label: Option<(&str, &str)>, help: &str) -> Counter {
        let key = (
            name.to_string(),
            label.map(|(k, v)| (k.to_string(), v.to_string())),
        );
        match self.register_with(key, help, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let key = (name.to_string(), None);
        match self.register_with(key, help, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a histogram with one `(key, value)` label
    /// and the given bucket bounds.
    pub fn histogram(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        bounds: &[f64],
        help: &str,
    ) -> Histogram {
        let key = (
            name.to_string(),
            label.map(|(k, v)| (k.to_string(), v.to_string())),
        );
        match self.register_with(key, help, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Reads every metric in one pass under one lock, in stable
    /// (family, label) order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.read();
        let metrics = inner
            .iter()
            .map(|((name, label), reg)| MetricSnapshot {
                name: name.clone(),
                label: label.clone(),
                help: reg.help.clone(),
                value: match &reg.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        RegistrySnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("skynet_test_total", "a test counter");
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying series.
        let again = reg.counter("skynet_test_total", "a test counter");
        again.inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("skynet_test_gauge", "a test gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.labeled_counter("skynet_rej_total", Some(("reason", "stale")), "rejects");
        let b = reg.labeled_counter("skynet_rej_total", Some(("reason", "corrupt")), "rejects");
        a.inc();
        a.inc();
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("skynet_rej_total", Some("stale")), 2);
        assert_eq!(snap.counter("skynet_rej_total", Some("corrupt")), 1);
        assert_eq!(snap.counter("skynet_rej_total", Some("missing")), 0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bound's bucket (`le` semantics).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        // Strictly between bounds lands in the next bucket up.
        h.observe(1.5);
        // Below the first bound lands in the first bucket.
        h.observe(0.0);
        h.observe(-3.0);
        // Above the last bound lands in the +Inf bucket.
        h.observe(4.000001);
        h.observe(f64::INFINITY);
        // NaN is dropped.
        h.observe(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![4, 1, 1, 2]);
        assert_eq!(snap.cumulative(), vec![4, 5, 6, 8]);
        assert_eq!(snap.count(), 8);
        assert_eq!(h.count(), 8);
        assert!(h.sum().is_infinite());
    }

    #[test]
    fn histogram_sum_accumulates() {
        let h = Histogram::new(&[10.0]);
        for v in [1.0, 2.5, 3.5] {
            h.observe(v);
        }
        assert_eq!(h.sum(), 7.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("skynet_x", "x");
        let _ = reg.gauge("skynet_x", "x");
    }

    #[test]
    fn snapshot_is_ordered_and_serializable() {
        let reg = MetricsRegistry::new();
        reg.counter("skynet_b_total", "b").inc();
        reg.counter("skynet_a_total", "a").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["skynet_a_total", "skynet_b_total"]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("skynet_par_total", "parallel");
        let h = reg.histogram("skynet_par_seconds", None, &LATENCY_BUCKETS, "parallel");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        h.observe(1e-5);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
        assert!((h.sum() - 0.4).abs() < 1e-9);
    }
}
