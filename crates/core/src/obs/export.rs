//! Snapshot exporters: Prometheus text format, a JSON document, and a
//! human-readable table.
//!
//! All three render a [`RegistrySnapshot`], so one consistent read feeds
//! every format; handles expose them through the
//! [`Exporter`](super::Exporter) trait rather than re-implementing them.
//! The JSON exporter writes the document by hand — it predates the serving
//! layer's `serde_json` dependency and its output shape is pinned by a
//! round-trip test through a real parser in the workspace test suite.

use super::metrics::{HistogramSnapshot, MetricSnapshot, MetricValue, RegistrySnapshot};
use std::fmt::Write as _;

/// Formats a finite `f64` the way Prometheus and JSON both accept
/// (`Display` on `f64` is the shortest round-trip decimal form).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn prometheus_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        fmt_f64(v)
    }
}

fn series_suffix(m: &MetricSnapshot) -> String {
    match &m.label {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        None => String::new(),
    }
}

fn histogram_prometheus(out: &mut String, name: &str, m: &MetricSnapshot, h: &HistogramSnapshot) {
    let cumulative = h.cumulative();
    let extra = m
        .label
        .as_ref()
        .map(|(k, v)| format!("{k}=\"{v}\","))
        .unwrap_or_default();
    for (bound, cum) in h.bounds.iter().zip(&cumulative) {
        let _ = writeln!(
            out,
            "{name}_bucket{{{extra}le=\"{}\"}} {cum}",
            prometheus_value(*bound)
        );
    }
    let total = cumulative.last().copied().unwrap_or(0);
    let _ = writeln!(out, "{name}_bucket{{{extra}le=\"+Inf\"}} {total}");
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        series_suffix(m),
        prometheus_value(h.sum)
    );
    let _ = writeln!(out, "{name}_count{} {total}", series_suffix(m));
}

/// Renders the snapshot in the Prometheus text exposition format:
/// `# HELP`/`# TYPE` headers once per family, then one line per series,
/// in stable (family, label) order.
pub fn prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for m in &snapshot.metrics {
        if last_family != Some(m.name.as_str()) {
            if last_family.is_some() {
                out.push('\n');
            }
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(out, "# TYPE {} {kind}", m.name);
            last_family = Some(m.name.as_str());
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", m.name, series_suffix(m));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    m.name,
                    series_suffix(m),
                    prometheus_value(*v)
                );
            }
            MetricValue::Histogram(h) => histogram_prometheus(&mut out, &m.name, m, h),
        }
    }
    out
}

/// Escapes a string for a JSON string literal (without the quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number token; non-finite values (invalid JSON) become `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as one JSON document:
///
/// ```json
/// {"metrics":[{"name":"...","label":{"reason":"stale-timestamp"},
///              "help":"...","type":"counter","value":41}, ...]}
/// ```
///
/// Histograms carry `"buckets":[{"le":1.0,"count":3},...]` (cumulative,
/// the final entry with `"le":null` being `+Inf`), plus `"sum"` and
/// `"count"`.
pub fn json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, m) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",", json_escape(&m.name));
        match &m.label {
            Some((k, v)) => {
                let _ = write!(
                    out,
                    "\"label\":{{\"{}\":\"{}\"}},",
                    json_escape(k),
                    json_escape(v)
                );
            }
            None => out.push_str("\"label\":null,"),
        }
        let _ = write!(out, "\"help\":\"{}\",", json_escape(&m.help));
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"type\":\"gauge\",\"value\":{}}}", json_number(*v));
            }
            MetricValue::Histogram(h) => {
                out.push_str("\"type\":\"histogram\",\"buckets\":[");
                let cumulative = h.cumulative();
                for (j, (bound, cum)) in h.bounds.iter().zip(&cumulative).enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"le\":{},\"count\":{cum}}}", json_number(*bound));
                }
                if !h.bounds.is_empty() {
                    out.push(',');
                }
                let total = cumulative.last().copied().unwrap_or(0);
                let _ = write!(out, "{{\"le\":null,\"count\":{total}}}");
                let _ = write!(out, "],\"sum\":{},\"count\":{total}}}", json_number(h.sum));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders the snapshot as an aligned human-readable table, one series per
/// row (histograms show `count / sum / p-buckets` condensed).
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let rows: Vec<(String, String)> = snapshot
        .metrics
        .iter()
        .map(|m| {
            let value = match &m.value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => prometheus_value(*v),
                MetricValue::Histogram(h) => {
                    format!("count={} sum={}", h.count(), prometheus_value(h.sum))
                }
            };
            (m.series(), value)
        })
        .collect();
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(6);
    let mut out = String::new();
    let _ = writeln!(out, "{:<width$}  value", "metric", width = width);
    let _ = writeln!(out, "{:-<width$}  -----", "", width = width);
    for (name, value) in rows {
        let _ = writeln!(out, "{name:<width$}  {value}", width = width);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::metrics::MetricsRegistry;

    fn sample() -> RegistrySnapshot {
        let reg = MetricsRegistry::new();
        reg.labeled_counter(
            "skynet_ingest_rejected_total",
            Some(("reason", "stale-timestamp")),
            "rejected",
        )
        .add(3);
        reg.labeled_counter(
            "skynet_ingest_rejected_total",
            Some(("reason", "duplicate")),
            "rejected",
        )
        .add(2);
        reg.counter("skynet_ingest_accepted_total", "accepted")
            .add(41);
        reg.gauge("skynet_watermark_seconds", "watermark").set(12.5);
        let h = reg.histogram(
            "skynet_stage_seconds",
            Some(("stage", "locate")),
            &[0.001, 0.01],
            "stage latency",
        );
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(5.0);
        reg.snapshot()
    }

    #[test]
    fn prometheus_format_is_stable() {
        let text = prometheus(&sample());
        assert_eq!(
            text,
            "\
# HELP skynet_ingest_accepted_total accepted
# TYPE skynet_ingest_accepted_total counter
skynet_ingest_accepted_total 41

# HELP skynet_ingest_rejected_total rejected
# TYPE skynet_ingest_rejected_total counter
skynet_ingest_rejected_total{reason=\"duplicate\"} 2
skynet_ingest_rejected_total{reason=\"stale-timestamp\"} 3

# HELP skynet_stage_seconds stage latency
# TYPE skynet_stage_seconds histogram
skynet_stage_seconds_bucket{stage=\"locate\",le=\"0.001\"} 1
skynet_stage_seconds_bucket{stage=\"locate\",le=\"0.01\"} 2
skynet_stage_seconds_bucket{stage=\"locate\",le=\"+Inf\"} 3
skynet_stage_seconds_sum{stage=\"locate\"} 5.0055
skynet_stage_seconds_count{stage=\"locate\"} 3

# HELP skynet_watermark_seconds watermark
# TYPE skynet_watermark_seconds gauge
skynet_watermark_seconds 12.5
"
        );
    }

    #[test]
    fn json_is_valid_and_complete() {
        let doc = json(&sample());
        let parsed: serde_json::Value =
            serde_json::from_str(&doc).expect("exporter emits valid JSON");
        let metrics = parsed["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 5);
        let accepted = metrics
            .iter()
            .find(|m| m["name"] == "skynet_ingest_accepted_total")
            .unwrap();
        assert_eq!(accepted["value"], 41);
        assert_eq!(accepted["type"], "counter");
        let hist = metrics
            .iter()
            .find(|m| m["name"] == "skynet_stage_seconds")
            .unwrap();
        assert_eq!(hist["count"], 3);
        let buckets = hist["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[2]["le"], serde_json::Value::Null);
        assert_eq!(buckets[2]["count"], 3);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn render_is_aligned_and_lists_every_series() {
        let table = render(&sample());
        assert!(table.contains("skynet_ingest_rejected_total{reason=\"duplicate\"}  2"));
        assert!(table.contains("count=3 sum=5.0055"));
        assert_eq!(table.lines().count(), 2 + 5);
    }

    #[test]
    fn non_finite_gauges_export_safely() {
        let reg = MetricsRegistry::new();
        reg.gauge("skynet_g", "g").set(f64::INFINITY);
        let snap = reg.snapshot();
        assert!(prometheus(&snap).contains("skynet_g +Inf"));
        let parsed: serde_json::Value = serde_json::from_str(&json(&snap)).unwrap();
        assert_eq!(parsed["metrics"][0]["value"], serde_json::Value::Null);
    }
}
