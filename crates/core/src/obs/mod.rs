//! The unified observability layer: metrics registry, per-alert stage
//! tracing, and exporters.
//!
//! SkyNet's operational claim (§4, §6) is that operators can trust a 10×
//! consolidated alert stream because every drop, dedup, shard hop and
//! score is accountable. This module is that accounting surface:
//!
//! - [`metrics`] — a [`MetricsRegistry`] of atomic counters, gauges and
//!   fixed-bucket histograms. Every stage registers its series once at
//!   construction; the hot path is relaxed atomic increments, lock-free.
//! - [`trace`] — per-alert stage tracing. The guard assigns each accepted
//!   alert a dense [`TraceId`](skynet_model::TraceId) and each stage
//!   records `Copy` [`TraceEvent`]s into a bounded ring, so
//!   "where did alert X go?" has an answer ([`Observability::explain`]).
//! - [`export`] — Prometheus text, JSON and human-table renderings of one
//!   consistent [`RegistrySnapshot`], surfaced uniformly through the
//!   [`Exporter`] trait on every handle that owns a registry.
//!
//! An [`Observability`] handle is shared by the whole pipeline (batch
//! stages, region shards, streaming workers across supervisor restarts);
//! build one with [`Observability::new`] or let
//! [`SkyNet::builder`](crate::SkyNet::builder) do it.

pub mod export;
pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
    RegistrySnapshot, LATENCY_BUCKETS,
};
pub use trace::{DropReason, Stage, StageTracer, TraceEvent, TraceRecorder};

use serde::{Deserialize, Serialize};
use skynet_model::TraceId;
use std::fmt::Write as _;
use std::sync::Arc;

/// Observability knobs.
///
/// `#[non_exhaustive]`: construct via [`ObsConfig::default`] and the
/// fluent `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
#[non_exhaustive]
pub struct ObsConfig {
    /// Whether per-alert stage tracing is recorded at all. Metrics are
    /// always on (they are atomic increments); tracing costs one short
    /// mutex hold per stage event.
    pub tracing: bool,
    /// Ring capacity of the trace recorder — the newest this-many events
    /// survive a sustained flood.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            tracing: true,
            trace_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// Enables or disables stage tracing.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Sets the trace ring capacity (events retained).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// The one metrics-export surface, shared by every handle that owns (or
/// borrows) a metrics registry: [`SkyNet`](crate::SkyNet), the streaming
/// and service handles, and [`Observability`] itself.
///
/// Implementors provide [`Exporter::metrics_snapshot`]; the three render
/// methods are defaults over that one consistent read, so no handle ever
/// re-implements (or drifts from) the export formats.
///
/// ```
/// use skynet_core::obs::{Exporter, Observability, ObsConfig};
///
/// let obs = Observability::new(&ObsConfig::default());
/// obs.registry().counter("skynet_x_total", "x").inc();
/// assert!(obs.prometheus().contains("skynet_x_total 1"));
/// assert!(obs.json().contains("skynet_x_total"));
/// assert!(obs.table().contains("skynet_x_total"));
/// ```
pub trait Exporter {
    /// One consistent pass over every registered metric.
    fn metrics_snapshot(&self) -> RegistrySnapshot;

    /// The snapshot in Prometheus text exposition format.
    fn prometheus(&self) -> String {
        export::prometheus(&self.metrics_snapshot())
    }

    /// The snapshot as one JSON document.
    fn json(&self) -> String {
        export::json(&self.metrics_snapshot())
    }

    /// The snapshot as an aligned human-readable table.
    fn table(&self) -> String {
        export::render(&self.metrics_snapshot())
    }
}

/// The shared observability handle: one metrics registry plus (optionally)
/// one trace recorder. Cloning shares state — the pipeline, its shards and
/// restarted streaming workers all feed the same instance.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    registry: MetricsRegistry,
    recorder: Option<Arc<TraceRecorder>>,
}

impl Observability {
    /// Builds the handle from knobs.
    pub fn new(cfg: &ObsConfig) -> Self {
        Observability {
            registry: MetricsRegistry::new(),
            recorder: cfg
                .tracing
                .then(|| Arc::new(TraceRecorder::new(cfg.trace_capacity))),
        }
    }

    /// The metrics registry stages register into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A cheap per-stage tracing handle (a no-op one when tracing is off).
    pub fn tracer(&self) -> StageTracer {
        match &self.recorder {
            Some(r) => StageTracer::new(r.clone()),
            None => StageTracer::disabled(),
        }
    }

    /// The trace recorder, when tracing is enabled.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.recorder.as_ref()
    }

    /// One consistent pass over every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Every retained trace event of one alert, oldest first (empty when
    /// tracing is off, the id never entered the ring, or the flood
    /// overwrote it).
    pub fn explain(&self, trace: TraceId) -> Vec<TraceEvent> {
        match &self.recorder {
            Some(r) => r.for_trace(trace),
            None => Vec::new(),
        }
    }

    /// The retained events of a set of alerts (an incident's constituents),
    /// in recording order.
    pub fn explain_all(&self, traces: &[TraceId]) -> Vec<TraceEvent> {
        match &self.recorder {
            Some(r) => {
                let mut events = r.events();
                events.retain(|e| traces.contains(&e.trace));
                events
            }
            None => Vec::new(),
        }
    }

    /// Renders a trace as one line per step:
    /// `trace7  @42s  guard:admitted`.
    pub fn render_trace(&self, trace: TraceId) -> String {
        let mut out = String::new();
        for e in self.explain(trace) {
            let _ = writeln!(out, "{}  @{}  {}", e.trace, e.at, e.stage.label());
        }
        out
    }
}

impl Exporter for Observability {
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::SimTime;

    #[test]
    fn disabled_tracing_yields_empty_explanations() {
        let obs = Observability::new(&ObsConfig::default().with_tracing(false));
        assert!(obs.recorder().is_none());
        assert!(!obs.tracer().is_enabled());
        assert!(obs.explain(TraceId(1)).is_empty());
        assert!(obs.explain_all(&[TraceId(1)]).is_empty());
    }

    #[test]
    fn explain_reconstructs_a_trace() {
        let obs = Observability::new(&ObsConfig::default().with_trace_capacity(16));
        let t = obs.tracer();
        t.record(TraceId(1), SimTime::from_secs(1), Stage::GuardAdmitted);
        t.record(TraceId(2), SimTime::from_secs(2), Stage::GuardAdmitted);
        t.record(TraceId(1), SimTime::from_secs(3), Stage::GuardReleased);
        assert_eq!(obs.explain(TraceId(1)).len(), 2);
        assert_eq!(obs.explain_all(&[TraceId(1), TraceId(2)]).len(), 3);
        let rendered = obs.render_trace(TraceId(1));
        assert!(rendered.contains("trace1"));
        assert!(rendered.contains("guard:released"));
    }

    #[test]
    fn clones_share_state() {
        let obs = Observability::new(&ObsConfig::default());
        let clone = obs.clone();
        clone
            .registry()
            .counter("skynet_shared_total", "shared")
            .inc();
        assert_eq!(obs.snapshot().counter("skynet_shared_total", None), 1);
        clone
            .tracer()
            .record(TraceId(9), SimTime::ZERO, Stage::LocateInserted);
        assert_eq!(obs.explain(TraceId(9)).len(), 1);
    }

    #[test]
    fn exporters_run_end_to_end() {
        let obs = Observability::new(&ObsConfig::default());
        obs.registry().counter("skynet_x_total", "x").add(7);
        assert!(obs.prometheus().contains("skynet_x_total 7"));
        assert!(obs.json().contains("\"value\":7"));
        assert!(obs.table().contains("skynet_x_total"));
    }
}
