//! Per-alert stage tracing: "where did alert X go?".
//!
//! The ingestion guard assigns each accepted [`RawAlert`] a dense
//! [`TraceId`]; every stage that touches the alert afterwards records a
//! `Copy` [`TraceEvent`] into a bounded ring buffer. Events are tiny (id +
//! sim-timestamp + stage tag), recording is one short mutex hold with zero
//! allocation, and the ring overwrites its oldest entries under sustained
//! floods — the newest events always survive, which is the window an
//! operator asks about.
//!
//! [`RawAlert`]: skynet_model::RawAlert

use crate::error::RejectReason;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use skynet_model::{AlertClass, IncidentId, SimTime, TraceId};
use std::fmt;
use std::sync::Arc;

/// Why the preprocessor dropped (or absorbed) an alert instead of emitting
/// a structured alert for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Absorbed into an open identical-alert group (stage 1 consolidation).
    Consolidated,
    /// Suppressed as a related surge ripple — another surge already
    /// represents the site (stage 2b).
    SurgeDuplicate,
    /// Held by the persistence gate and never reached the threshold
    /// (stage 2a).
    Sporadic,
    /// A traffic drop that found no corroborating alert in its window
    /// (stage 3).
    Uncorroborated,
}

impl DropReason {
    /// Stable lowercase label for exports and rendered traces.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Consolidated => "consolidated",
            DropReason::SurgeDuplicate => "surge-duplicate",
            DropReason::Sporadic => "sporadic",
            DropReason::Uncorroborated => "uncorroborated",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One step of an alert's life, recorded by the stage that performed it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// The guard accepted the alert into the re-sequencing window.
    GuardAdmitted,
    /// The guard refused the alert (it went to the dead-letter queue).
    GuardRejected(RejectReason),
    /// The guard released the alert, time-ordered, to the preprocessor.
    GuardReleased,
    /// The streaming producer shed the alert under load before the guard.
    Shed(AlertClass),
    /// The preprocessor dropped or absorbed the alert.
    PreprocessDropped(DropReason),
    /// The preprocessor emitted a structured alert for this group.
    PreprocessEmitted,
    /// The router assigned the structured alert to a region shard.
    ShardRouted(u16),
    /// The locator inserted the alert into its alert trees.
    LocateInserted,
    /// The locator completed an incident containing this alert.
    IncidentCompleted(IncidentId),
    /// The evaluator scored the incident containing this alert.
    Scored(IncidentId),
    /// A fault-injection rule fired at this stage boundary while the alert
    /// (or its incident) was in flight.
    FaultInjected(crate::faultinject::InjectionSite),
    /// A supervisor restarted the panicked worker on this lane (shard
    /// index, or 0 for the unsharded worker) that was carrying the alert.
    WorkerRestarted(u16),
}

impl Stage {
    /// Short human label used by rendered traces.
    pub fn label(&self) -> String {
        match self {
            Stage::GuardAdmitted => "guard:admitted".to_string(),
            Stage::GuardRejected(r) => format!("guard:rejected({r})"),
            Stage::GuardReleased => "guard:released".to_string(),
            Stage::Shed(class) => format!("shed({class})"),
            Stage::PreprocessDropped(r) => format!("preprocess:dropped({r})"),
            Stage::PreprocessEmitted => "preprocess:emitted".to_string(),
            Stage::ShardRouted(s) => format!("shard:routed({s})"),
            Stage::LocateInserted => "locate:inserted".to_string(),
            Stage::IncidentCompleted(id) => format!("locate:completed({id})"),
            Stage::Scored(id) => format!("evaluate:scored({id})"),
            Stage::FaultInjected(site) => format!("fault:injected({site})"),
            Stage::WorkerRestarted(lane) => format!("worker:restarted({lane})"),
        }
    }
}

/// One recorded trace step. `Copy` and allocation-free on purpose: the ring
/// holds these inline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The alert this step belongs to.
    pub trace: TraceId,
    /// Pipeline (simulated) time of the step.
    pub at: SimTime,
    /// What happened.
    pub stage: Stage,
}

struct Ring {
    /// Preallocated storage; fills to capacity then wraps.
    slots: Vec<TraceEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total events ever recorded (≥ `slots.len()`).
    recorded: u64,
}

/// A bounded, mutex-guarded ring of [`TraceEvent`]s.
///
/// The ring keeps the newest `capacity` events; older events are
/// overwritten. Each writer's surviving events preserve its own write
/// order, and the newest event of every writer survives until `capacity`
/// further events arrive.
pub struct TraceRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl TraceRecorder {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                recorded: 0,
            }),
            capacity,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().recorded
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        let ring = self.ring.lock();
        ring.recorded - ring.slots.len() as u64
    }

    /// Appends one event, overwriting the oldest if full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock();
        ring.recorded += 1;
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
        } else {
            let head = ring.head;
            ring.slots[head] = event;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// Discards every retained event (used when a restarted streaming
    /// worker re-issues trace ids from 1).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.slots.clear();
        ring.head = 0;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let (wrapped, recent) = ring.slots.split_at(ring.head);
        recent.iter().chain(wrapped.iter()).copied().collect()
    }

    /// The retained events of one trace id, oldest first.
    pub fn for_trace(&self, trace: TraceId) -> Vec<TraceEvent> {
        let mut events = self.events();
        events.retain(|e| e.trace == trace);
        events
    }
}

/// The cheap per-stage handle: a cloneable, possibly-disabled recorder
/// reference. When tracing is off this is a `None` and every call is a
/// no-op branch.
#[derive(Debug, Clone, Default)]
pub struct StageTracer(Option<Arc<TraceRecorder>>);

impl StageTracer {
    /// A tracer feeding the given recorder.
    pub fn new(recorder: Arc<TraceRecorder>) -> Self {
        StageTracer(Some(recorder))
    }

    /// The disabled tracer.
    pub fn disabled() -> Self {
        StageTracer(None)
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one step for `trace` (no-op when disabled or when the alert
    /// carries no trace id).
    #[inline]
    pub fn record(&self, trace: TraceId, at: SimTime, stage: Stage) {
        if let Some(recorder) = &self.0 {
            if trace.is_some() {
                recorder.record(TraceEvent { trace, at, stage });
            }
        }
    }

    /// The underlying recorder, if enabled.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.0.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, at: u64, stage: Stage) -> TraceEvent {
        TraceEvent {
            trace: TraceId(trace),
            at: SimTime::from_secs(at),
            stage,
        }
    }

    #[test]
    fn ring_keeps_newest_events() {
        let rec = TraceRecorder::new(3);
        for i in 0..5 {
            rec.record(ev(i, i, Stage::GuardAdmitted));
        }
        let events: Vec<u64> = rec.events().iter().map(|e| e.trace.0).collect();
        assert_eq!(events, vec![2, 3, 4]);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.capacity(), 3);
    }

    #[test]
    fn for_trace_filters_in_order() {
        let rec = TraceRecorder::new(16);
        rec.record(ev(1, 0, Stage::GuardAdmitted));
        rec.record(ev(2, 1, Stage::GuardAdmitted));
        rec.record(ev(1, 2, Stage::GuardReleased));
        rec.record(ev(1, 3, Stage::PreprocessEmitted));
        let steps: Vec<String> = rec
            .for_trace(TraceId(1))
            .iter()
            .map(|e| e.stage.label())
            .collect();
        assert_eq!(
            steps,
            vec!["guard:admitted", "guard:released", "preprocess:emitted"]
        );
    }

    #[test]
    fn clear_resets_retention_not_totals() {
        let rec = TraceRecorder::new(4);
        rec.record(ev(1, 0, Stage::GuardAdmitted));
        rec.record(ev(2, 0, Stage::GuardAdmitted));
        rec.clear();
        assert!(rec.events().is_empty());
        assert_eq!(rec.recorded(), 2);
        rec.record(ev(3, 1, Stage::GuardAdmitted));
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = StageTracer::disabled();
        assert!(!t.is_enabled());
        t.record(TraceId(1), SimTime::ZERO, Stage::GuardAdmitted);
        assert!(t.recorder().is_none());
    }

    #[test]
    fn tracer_skips_none_ids() {
        let rec = Arc::new(TraceRecorder::new(8));
        let t = StageTracer::new(rec.clone());
        t.record(TraceId::NONE, SimTime::ZERO, Stage::GuardAdmitted);
        t.record(TraceId(5), SimTime::ZERO, Stage::GuardAdmitted);
        assert_eq!(rec.events().len(), 1);
        assert!(t.is_enabled());
    }

    #[test]
    fn stage_labels_are_descriptive() {
        assert_eq!(
            Stage::GuardRejected(RejectReason::StaleTimestamp).label(),
            "guard:rejected(stale-timestamp)"
        );
        assert_eq!(
            Stage::PreprocessDropped(DropReason::Sporadic).label(),
            "preprocess:dropped(sporadic)"
        );
        assert_eq!(Stage::ShardRouted(3).label(), "shard:routed(3)");
        assert_eq!(
            Stage::Scored(IncidentId(2)).label(),
            "evaluate:scored(incident2)"
        );
        assert_eq!(
            Stage::FaultInjected(crate::faultinject::InjectionSite::LocateWorker).label(),
            "fault:injected(locate-worker)"
        );
        assert_eq!(Stage::WorkerRestarted(2).label(), "worker:restarted(2)");
    }

    #[test]
    fn events_round_trip_serde() {
        let e = ev(9, 4, Stage::IncidentCompleted(IncidentId(1)));
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
