//! Ingestion guard: validation, watermarked reordering and quarantine.
//!
//! The streaming deployment ingests alerts from twelve independently-clocked
//! tools (§4.1), so the feed arrives dirty: corrupt syslog bytes, probes
//! reporting locations that left the topology, retransmitting sources, and
//! out-of-order delivery. The guard sits in front of the preprocessor and
//! enforces three invariants the downstream stages rely on:
//!
//! 1. **Validity** — every admitted alert is structurally well-formed
//!    ([`RawAlert::structural_defect`]) and attributed to a location on the
//!    monitored topology.
//! 2. **Order** — admitted alerts are released in non-decreasing timestamp
//!    order. A *watermark* trails the maximum event time seen by a
//!    configurable skew window; alerts inside the window are buffered and
//!    re-sequenced, alerts behind the watermark are dropped as late.
//! 3. **Accountability** — nothing disappears silently. Every reject is
//!    counted per [`RejectReason`] and stored (bounded) in a
//!    [`DeadLetterQueue`] for operator inspection.

use crate::error::RejectReason;
use crate::faultinject::{self, FaultAction, FaultArm};
use crate::obs::{Counter, Gauge, Observability, Stage, StageTracer};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertBody, DataSource, LocId, LocationInterner, RawAlert, SimDuration, SimTime, TraceId,
};
use skynet_topology::Topology;
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Ingestion-guard knobs.
///
/// `#[non_exhaustive]`: construct via [`GuardConfig::default`] and the
/// fluent `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct GuardConfig {
    /// How far behind the maximum seen event time the watermark trails.
    /// Alerts arriving out of order within this window are re-sequenced;
    /// older ones are late-dropped. Covers the tool delays of §4.1 (SNMP
    /// lags up to ~2 min on CPU-starved devices, so the production locator
    /// tolerates lateness at the *node* level; the guard window only needs
    /// to absorb transport-level jitter).
    pub skew_window: SimDuration,
    /// How far ahead of the trusted clock (the latest `Tick`) an alert
    /// timestamp may claim to be before it is rejected as clock skew.
    /// Inactive until the first tick arrives.
    pub max_future_skew: SimDuration,
    /// Maximum dead letters retained; older entries are evicted (counters
    /// keep the full totals).
    pub dead_letter_capacity: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            skew_window: SimDuration::from_secs(30),
            max_future_skew: SimDuration::from_mins(60),
            dead_letter_capacity: 1024,
        }
    }
}

impl GuardConfig {
    /// Sets the re-sequencing skew window.
    pub fn with_skew_window(mut self, window: SimDuration) -> Self {
        self.skew_window = window;
        self
    }

    /// Sets the maximum tolerated future clock skew.
    pub fn with_max_future_skew(mut self, skew: SimDuration) -> Self {
        self.max_future_skew = skew;
        self
    }

    /// Sets the dead-letter queue capacity.
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> Self {
        self.dead_letter_capacity = capacity;
        self
    }
}

/// A rejected alert plus why the guard refused it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The alert as received.
    pub alert: RawAlert,
    /// The rejection reason.
    pub reason: RejectReason,
}

/// Bounded quarantine for rejected alerts.
///
/// Holds the most recent `capacity` rejects for inspection; per-reason
/// counters cover the full history even after eviction.
#[derive(Debug)]
pub struct DeadLetterQueue {
    letters: VecDeque<DeadLetter>,
    capacity: usize,
    evicted: u64,
    counts: [u64; RejectReason::ALL.len()],
}

impl Default for DeadLetterQueue {
    fn default() -> Self {
        DeadLetterQueue::new(GuardConfig::default().dead_letter_capacity)
    }
}

impl DeadLetterQueue {
    /// An empty queue retaining at most `capacity` letters.
    pub fn new(capacity: usize) -> Self {
        DeadLetterQueue {
            letters: VecDeque::new(),
            capacity,
            evicted: 0,
            counts: [0; RejectReason::ALL.len()],
        }
    }

    fn slot(reason: RejectReason) -> usize {
        match reason {
            RejectReason::OffTopology => 0,
            RejectReason::StaleTimestamp => 1,
            RejectReason::FutureTimestamp => 2,
            RejectReason::Duplicate => 3,
            RejectReason::CorruptBody => 4,
            RejectReason::FaultInjected => 5,
        }
    }

    /// Quarantines one reject, evicting the oldest letter when full.
    pub fn push(&mut self, alert: RawAlert, reason: RejectReason) {
        self.counts[Self::slot(reason)] += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.letters.len() == self.capacity {
            self.letters.pop_front();
            self.evicted += 1;
        }
        self.letters.push_back(DeadLetter { alert, reason });
    }

    /// Retained letters, oldest first.
    pub fn letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.letters.iter()
    }

    /// Number of retained letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Total rejects for one reason (including evicted letters).
    pub fn count(&self, reason: RejectReason) -> u64 {
        self.counts[Self::slot(reason)]
    }

    /// Total rejects across all reasons (including evicted letters).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Letters dropped to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serializes the queue (letters and full-history counters) for a
    /// service snapshot.
    pub fn snapshot_state(&self) -> DeadLetterState {
        DeadLetterState {
            letters: self.letters.iter().cloned().collect(),
            evicted: self.evicted,
            counts: self.counts.to_vec(),
        }
    }

    /// Restores queue contents captured by
    /// [`DeadLetterQueue::snapshot_state`]; the capacity stays whatever
    /// this queue was built with.
    pub fn restore_state(&mut self, state: DeadLetterState) {
        self.letters = state.letters.into();
        self.evicted = state.evicted;
        self.counts = [0; RejectReason::ALL.len()];
        for (slot, v) in self.counts.iter_mut().zip(&state.counts) {
            *slot = *v;
        }
    }
}

/// Serialized [`DeadLetterQueue`] contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterState {
    /// Retained letters, oldest first.
    pub letters: Vec<DeadLetter>,
    /// Letters dropped to stay within capacity.
    pub evicted: u64,
    /// Per-reason full-history totals, indexed like [`RejectReason::ALL`].
    pub counts: Vec<u64>,
}

/// Ingestion counters, published alongside [`PreprocessStats`]
/// (Fig. 8b-style accounting for the layer *in front of* preprocessing).
///
/// [`PreprocessStats`]: crate::preprocess::PreprocessStats
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Alerts admitted past every check.
    pub accepted: u64,
    /// Admitted alerts that arrived behind the maximum seen event time and
    /// were re-sequenced by the reordering buffer.
    pub reordered: u64,
    /// Rejects: location (or peer) not on the monitored topology.
    pub rejected_off_topology: u64,
    /// Rejects: arrived behind the watermark (late drops).
    pub rejected_stale: u64,
    /// Rejects: timestamp absurdly ahead of the trusted clock.
    pub rejected_future: u64,
    /// Rejects: exact duplicate of an already-admitted alert.
    pub rejected_duplicate: u64,
    /// Rejects: structurally corrupt body.
    pub rejected_corrupt: u64,
    /// Rejects: intercepted by an injected fault at a guard site.
    #[serde(default)]
    pub rejected_injected: u64,
    /// The watermark when this snapshot was taken.
    pub watermark: SimTime,
}

impl IngestStats {
    /// Total rejects across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_off_topology
            + self.rejected_stale
            + self.rejected_future
            + self.rejected_duplicate
            + self.rejected_corrupt
            + self.rejected_injected
    }

    /// The counter for one rejection reason.
    pub fn count_for(&self, reason: RejectReason) -> u64 {
        match reason {
            RejectReason::OffTopology => self.rejected_off_topology,
            RejectReason::StaleTimestamp => self.rejected_stale,
            RejectReason::FutureTimestamp => self.rejected_future,
            RejectReason::Duplicate => self.rejected_duplicate,
            RejectReason::CorruptBody => self.rejected_corrupt,
            RejectReason::FaultInjected => self.rejected_injected,
        }
    }

    /// Folds counters from a later snapshot segment into this one (used by
    /// the supervisor to accumulate across worker restarts). Counters add;
    /// the watermark takes the maximum.
    pub fn merge(&mut self, other: &IngestStats) {
        self.accepted += other.accepted;
        self.reordered += other.reordered;
        self.rejected_off_topology += other.rejected_off_topology;
        self.rejected_stale += other.rejected_stale;
        self.rejected_future += other.rejected_future;
        self.rejected_duplicate += other.rejected_duplicate;
        self.rejected_corrupt += other.rejected_corrupt;
        self.rejected_injected += other.rejected_injected;
        self.watermark = self.watermark.max_of(other.watermark);
    }
}

/// Identity of an alert for exact-duplicate suppression: everything a tool
/// would retransmit verbatim. Locations enter as interned [`LocId`]s (the
/// validity check already resolved them, so no paths are cloned or
/// re-hashed per offer). Magnitude enters as raw bits so only bit-identical
/// retransmissions collide (NaNs never get here — they are rejected as
/// corrupt first).
type DupKey = (DataSource, AlertBody, LocId, Option<LocId>, SimTime, u64);

#[derive(Debug)]
struct Buffered {
    at: SimTime,
    seq: u64,
    alert: RawAlert,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One duplicate-suppression signature in serialized (path) form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SeenEntry {
    source: DataSource,
    body: AlertBody,
    location: skynet_model::LocationPath,
    peer: Option<skynet_model::LocationPath>,
    timestamp: SimTime,
    magnitude_bits: u64,
    admitted_at: SimTime,
}

/// Serialized [`IngestGuard`] state for service snapshots — everything
/// behind the watermark semantics, with locations widened back to paths so
/// the snapshot survives re-interning on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardState {
    buffered: Vec<(u64, RawAlert)>,
    seq: u64,
    max_seen: SimTime,
    trusted_now: Option<SimTime>,
    seen: Vec<SeenEntry>,
    stats: IngestStats,
    next_trace: u64,
    dead: DeadLetterState,
}

/// The guard's registered metric handles (detached no-op handles when the
/// pipeline runs without observability).
#[derive(Debug, Clone, Default)]
struct GuardObs {
    accepted: Counter,
    reordered: Counter,
    rejected: [Counter; RejectReason::ALL.len()],
    watermark: Gauge,
    tracer: StageTracer,
}

impl GuardObs {
    fn registered(obs: &Observability) -> Self {
        let reg = obs.registry();
        GuardObs {
            accepted: reg.counter(
                "skynet_ingest_accepted_total",
                "alerts admitted past every guard check",
            ),
            reordered: reg.counter(
                "skynet_ingest_reordered_total",
                "admitted alerts re-sequenced by the reordering buffer",
            ),
            rejected: RejectReason::ALL.map(|r| {
                reg.labeled_counter(
                    "skynet_ingest_rejected_total",
                    Some(("reason", r.label())),
                    "alerts refused by the ingestion guard, by reason",
                )
            }),
            watermark: reg.gauge(
                "skynet_ingest_watermark_seconds",
                "current release watermark (simulated seconds)",
            ),
            tracer: obs.tracer(),
        }
    }
}

/// The ingestion guard. See the module docs for the invariants it enforces.
#[derive(Debug)]
pub struct IngestGuard {
    cfg: GuardConfig,
    /// The topology's location interner. Every location an alert may
    /// legitimately be attributed to — the ancestor chain of every device
    /// path (tools attribute to the device or to a serving-level prefix,
    /// §4.1) — resolves to an id here; anything else (including the bare
    /// hierarchy root) is off-topology.
    interner: Arc<LocationInterner>,
    buffer: BinaryHeap<Reverse<Buffered>>,
    seq: u64,
    /// Maximum event time admitted so far; the watermark trails it.
    max_seen: SimTime,
    /// Trusted processing-time clock from `Tick`s; arms the future check.
    trusted_now: Option<SimTime>,
    /// Admission time of each recent alert signature, pruned by watermark.
    seen: HashMap<DupKey, SimTime>,
    stats: IngestStats,
    dead: Arc<Mutex<DeadLetterQueue>>,
    /// Last trace id issued; ids are dense, starting at 1, unique within
    /// this guard incarnation.
    next_trace: u64,
    obs: GuardObs,
    /// Fault-injection arms for the guard's two sites (`None` = free).
    offer_fault: Option<FaultArm>,
    validate_fault: Option<FaultArm>,
}

impl IngestGuard {
    /// A guard for `topo` with a fresh dead-letter queue.
    pub fn new(topo: &Topology, cfg: GuardConfig) -> Self {
        let dead = Arc::new(Mutex::new(DeadLetterQueue::new(cfg.dead_letter_capacity)));
        Self::with_dead_letters(topo, cfg, dead)
    }

    /// A guard reusing an existing dead-letter queue — how the supervisor
    /// keeps quarantined alerts across worker restarts.
    pub fn with_dead_letters(
        topo: &Topology,
        cfg: GuardConfig,
        dead: Arc<Mutex<DeadLetterQueue>>,
    ) -> Self {
        IngestGuard {
            cfg,
            interner: Arc::clone(topo.interner()),
            buffer: BinaryHeap::new(),
            seq: 0,
            max_seen: SimTime::ZERO,
            trusted_now: None,
            seen: HashMap::new(),
            stats: IngestStats::default(),
            dead,
            next_trace: 0,
            obs: GuardObs::default(),
            offer_fault: None,
            validate_fault: None,
        }
    }

    /// Attaches the guard to a shared [`Observability`] handle: per-reason
    /// reject counters, the watermark gauge and per-alert stage tracing all
    /// start feeding it. Metric registration is idempotent, so restarted
    /// workers keep accumulating into the same series.
    pub fn with_observability(mut self, obs: &Observability) -> Self {
        self.obs = GuardObs::registered(obs);
        self
    }

    /// Arms the guard's fault-injection sites
    /// ([`GuardOffer`](crate::faultinject::InjectionSite::GuardOffer) and
    /// [`GuardValidate`](crate::faultinject::InjectionSite::GuardValidate)).
    /// An intercepted alert is preserved in the dead-letter queue as
    /// [`RejectReason::FaultInjected`] — even when the action is a panic,
    /// so chaos runs never lose evidence.
    pub fn with_faults(mut self, offer: Option<FaultArm>, validate: Option<FaultArm>) -> Self {
        self.offer_fault = offer;
        self.validate_fault = validate;
        self
    }

    /// Checks one guard fault arm for `raw`; dead-letters on error *and*
    /// panic actions (the panic is raised after the letter is written).
    fn check_fault(&mut self, arm: &FaultArm, raw: &RawAlert) -> bool {
        match arm.check(raw.trace, raw.timestamp) {
            None => false,
            Some(FaultAction::Error) => true,
            Some(FaultAction::Latency(ms)) => {
                faultinject::sleep_ms(ms);
                false
            }
            Some(FaultAction::Panic) => {
                self.reject(raw.clone(), RejectReason::FaultInjected);
                arm.panic_now()
            }
        }
    }

    /// The current watermark: releases and late-drop decisions happen
    /// against this.
    pub fn watermark(&self) -> SimTime {
        SimTime::from_millis(
            self.max_seen
                .as_millis()
                .saturating_sub(self.cfg.skew_window.as_millis()),
        )
    }

    /// Counters so far (watermark field refreshed on read).
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            watermark: self.watermark(),
            ..self.stats
        }
    }

    /// The shared dead-letter queue.
    pub fn dead_letters(&self) -> Arc<Mutex<DeadLetterQueue>> {
        Arc::clone(&self.dead)
    }

    /// Alerts currently held in the reordering buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Serializes everything a warm restart needs to resume this guard
    /// mid-flood: the reordering buffer, watermark clocks, duplicate
    /// signatures (in path form — [`LocId`]s are re-interned on restore),
    /// counters, the dense trace cursor and the dead-letter queue.
    pub fn snapshot_state(&self) -> GuardState {
        let mut buffered: Vec<(u64, RawAlert)> = self
            .buffer
            .iter()
            .map(|Reverse(b)| (b.seq, b.alert.clone()))
            .collect();
        buffered.sort_by_key(|(seq, _)| *seq);
        let seen = self
            .seen
            .iter()
            .map(|(key, &at)| SeenEntry {
                source: key.0,
                body: key.1.clone(),
                location: self.interner.path(key.2).clone(),
                peer: key.3.map(|p| self.interner.path(p).clone()),
                timestamp: key.4,
                magnitude_bits: key.5,
                admitted_at: at,
            })
            .collect();
        GuardState {
            buffered,
            seq: self.seq,
            max_seen: self.max_seen,
            trusted_now: self.trusted_now,
            seen,
            stats: self.stats,
            next_trace: self.next_trace,
            dead: self.dead.lock().snapshot_state(),
        }
    }

    /// Restores state captured by [`IngestGuard::snapshot_state`] onto a
    /// freshly built guard over the same topology. Duplicate signatures
    /// whose locations no longer resolve (a topology change between
    /// snapshot and restore) are dropped — the alerts they guarded against
    /// would be rejected as off-topology anyway.
    pub fn restore_state(&mut self, state: GuardState) {
        self.buffer = state
            .buffered
            .into_iter()
            .map(|(seq, alert)| {
                Reverse(Buffered {
                    at: alert.timestamp,
                    seq,
                    alert,
                })
            })
            .collect();
        self.seq = state.seq;
        self.max_seen = state.max_seen;
        self.trusted_now = state.trusted_now;
        self.seen = state
            .seen
            .into_iter()
            .filter_map(|e| {
                let loc = self.interner.resolve(&e.location)?;
                let peer = match &e.peer {
                    Some(p) => Some(self.interner.resolve(p)?),
                    None => None,
                };
                let key: DupKey = (e.source, e.body, loc, peer, e.timestamp, e.magnitude_bits);
                Some((key, e.admitted_at))
            })
            .collect();
        self.stats = state.stats;
        self.next_trace = state.next_trace;
        self.dead.lock().restore_state(state.dead);
    }

    /// Validates one alert, returning the interned ids of its location and
    /// peer so admission never resolves (or clones) a path twice.
    fn validate(&self, raw: &RawAlert) -> Result<(LocId, Option<LocId>), RejectReason> {
        if raw.structural_defect().is_some() {
            return Err(RejectReason::CorruptBody);
        }
        let Some(loc) = self.interner.resolve(&raw.location) else {
            return Err(RejectReason::OffTopology);
        };
        let peer = match &raw.peer {
            Some(peer) => match self.interner.resolve(peer) {
                Some(id) => Some(id),
                None => return Err(RejectReason::OffTopology),
            },
            None => None,
        };
        if let Some(now) = self.trusted_now {
            if raw.timestamp > now.saturating_add(self.cfg.max_future_skew) {
                return Err(RejectReason::FutureTimestamp);
            }
        }
        if raw.timestamp < self.watermark() {
            return Err(RejectReason::StaleTimestamp);
        }
        Ok((loc, peer))
    }

    fn reject(&mut self, raw: RawAlert, reason: RejectReason) -> RejectReason {
        match reason {
            RejectReason::OffTopology => self.stats.rejected_off_topology += 1,
            RejectReason::StaleTimestamp => self.stats.rejected_stale += 1,
            RejectReason::FutureTimestamp => self.stats.rejected_future += 1,
            RejectReason::Duplicate => self.stats.rejected_duplicate += 1,
            RejectReason::CorruptBody => self.stats.rejected_corrupt += 1,
            RejectReason::FaultInjected => self.stats.rejected_injected += 1,
        }
        self.obs.rejected[DeadLetterQueue::slot(reason)].inc();
        self.obs
            .tracer
            .record(raw.trace, raw.timestamp, Stage::GuardRejected(reason));
        self.dead.lock().push(raw, reason);
        reason
    }

    /// Offers one alert. Admitted alerts enter the reordering buffer;
    /// anything the advancing watermark releases is appended to `out` in
    /// non-decreasing timestamp order. Rejects are quarantined and counted.
    ///
    /// The guard is also where per-alert tracing begins: every offered
    /// alert that does not already carry a [`TraceId`] is assigned the next
    /// dense id (starting at 1) in intake order, rejects included, so the
    /// dead-letter queue stays explainable too.
    pub fn offer(
        &mut self,
        mut raw: RawAlert,
        out: &mut Vec<RawAlert>,
    ) -> Result<(), RejectReason> {
        if raw.trace.is_none() {
            self.next_trace += 1;
            raw.trace = TraceId(self.next_trace);
        }
        if let Some(arm) = self.offer_fault.clone() {
            if self.check_fault(&arm, &raw) {
                return Err(self.reject(raw, RejectReason::FaultInjected));
            }
        }
        let (loc, peer) = match self.validate(&raw) {
            Ok(ids) => ids,
            Err(reason) => return Err(self.reject(raw, reason)),
        };
        if let Some(arm) = self.validate_fault.clone() {
            if self.check_fault(&arm, &raw) {
                return Err(self.reject(raw, RejectReason::FaultInjected));
            }
        }
        let key: DupKey = (
            raw.source,
            raw.body.clone(),
            loc,
            peer,
            raw.timestamp,
            raw.magnitude.to_bits(),
        );
        match self.seen.entry(key) {
            Entry::Occupied(_) => {
                return Err(self.reject(raw, RejectReason::Duplicate));
            }
            Entry::Vacant(v) => {
                v.insert(raw.timestamp);
            }
        }
        self.stats.accepted += 1;
        self.obs.accepted.inc();
        if raw.timestamp < self.max_seen {
            self.stats.reordered += 1;
            self.obs.reordered.inc();
        }
        self.obs
            .tracer
            .record(raw.trace, raw.timestamp, Stage::GuardAdmitted);
        let at = raw.timestamp;
        self.buffer.push(Reverse(Buffered {
            at,
            seq: self.seq,
            alert: raw,
        }));
        self.seq += 1;
        self.max_seen = self.max_seen.max_of(at);
        self.release(out);
        Ok(())
    }

    /// Offers a whole recorded feed, taking ownership so nothing is cloned
    /// on the hot path, and appends everything released. Rejects are
    /// quarantined and counted exactly as by per-alert [`offer`] calls.
    ///
    /// [`offer`]: IngestGuard::offer
    pub fn offer_batch(&mut self, alerts: Vec<RawAlert>, out: &mut Vec<RawAlert>) {
        for alert in alerts {
            let _ = self.offer(alert, out);
        }
    }

    /// Advances the trusted clock (from a `Tick`), releasing everything the
    /// new watermark passes.
    pub fn advance(&mut self, now: SimTime, out: &mut Vec<RawAlert>) {
        self.trusted_now = Some(self.trusted_now.map_or(now, |t| t.max_of(now)));
        self.max_seen = self.max_seen.max_of(now);
        self.release(out);
    }

    /// End of stream: releases every buffered alert regardless of the
    /// watermark.
    pub fn flush(&mut self, out: &mut Vec<RawAlert>) {
        while let Some(Reverse(b)) = self.buffer.pop() {
            self.obs
                .tracer
                .record(b.alert.trace, b.at, Stage::GuardReleased);
            out.push(b.alert);
        }
        self.seen.clear();
    }

    fn release(&mut self, out: &mut Vec<RawAlert>) {
        let watermark = self.watermark();
        self.obs.watermark.set(watermark.as_millis() as f64 / 1e3);
        loop {
            match self.buffer.peek() {
                Some(Reverse(top)) if top.at <= watermark => {}
                _ => break,
            }
            if let Some(Reverse(b)) = self.buffer.pop() {
                self.obs
                    .tracer
                    .record(b.alert.trace, b.at, Stage::GuardReleased);
                out.push(b.alert);
            }
        }
        // Duplicate suppression only needs signatures the stale check would
        // not already catch, i.e. admission times at or above the watermark.
        if self.seen.len() > 64 {
            self.seen.retain(|_, &mut at| at >= watermark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{AlertKind, DataSource, LocationPath};
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Topology {
        generate(&GeneratorConfig::small())
    }

    fn alert(topo: &Topology, secs: u64) -> RawAlert {
        RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(secs),
            topo.devices()[0].location.clone(),
            AlertKind::PacketLossIcmp,
        )
        .with_magnitude(0.1)
    }

    #[test]
    fn well_formed_alerts_pass_in_order() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        for s in 0..100 {
            guard.offer(alert(&t, s), &mut out).unwrap();
        }
        guard.flush(&mut out);
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        let stats = guard.stats();
        assert_eq!(stats.accepted, 100);
        assert_eq!(stats.rejected(), 0);
        assert!(guard.dead_letters().lock().is_empty());
    }

    #[test]
    fn bounded_skew_is_resequenced_and_counted() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        // 100, 90, 110: the 90 s alert is 10 s out of order — inside the
        // 30 s window, so it must come out between the other two.
        for s in [100, 90, 110] {
            guard.offer(alert(&t, s), &mut out).unwrap();
        }
        guard.flush(&mut out);
        let times: Vec<u64> = out.iter().map(|a| a.timestamp.as_secs()).collect();
        assert_eq!(times, vec![90, 100, 110]);
        assert_eq!(guard.stats().reordered, 1);
        assert_eq!(guard.stats().rejected(), 0);
    }

    #[test]
    fn late_alerts_behind_the_watermark_are_dropped() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        guard.offer(alert(&t, 100), &mut out).unwrap();
        // 100 s - 30 s window = watermark 70 s; 50 s is hopelessly late.
        let err = guard.offer(alert(&t, 50), &mut out).unwrap_err();
        assert_eq!(err, RejectReason::StaleTimestamp);
        let stats = guard.stats();
        assert_eq!(stats.rejected_stale, 1);
        assert_eq!(stats.watermark, SimTime::from_secs(70));
        let dlq = guard.dead_letters();
        let dlq = dlq.lock();
        assert_eq!(dlq.count(RejectReason::StaleTimestamp), 1);
        assert_eq!(
            dlq.letters().next().unwrap().reason,
            RejectReason::StaleTimestamp
        );
    }

    #[test]
    fn future_check_arms_on_first_tick() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        // Without a tick there is no trusted clock: any timestamp passes.
        guard.offer(alert(&t, 10_000), &mut out).unwrap();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        guard.advance(SimTime::from_secs(60), &mut out);
        let err = guard.offer(alert(&t, 60 + 3601), &mut out).unwrap_err();
        assert_eq!(err, RejectReason::FutureTimestamp);
        // Just inside the allowance passes.
        guard.offer(alert(&t, 60 + 3600), &mut out).unwrap();
        assert_eq!(guard.stats().rejected_future, 1);
    }

    #[test]
    fn off_topology_and_corrupt_alerts_are_quarantined() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        let foreign = RawAlert::known(
            DataSource::Ping,
            SimTime::from_secs(1),
            LocationPath::parse("Atlantis|Lost City").unwrap(),
            AlertKind::PacketLossIcmp,
        );
        assert_eq!(
            guard.offer(foreign, &mut out).unwrap_err(),
            RejectReason::OffTopology
        );
        let bad_peer = alert(&t, 1).with_peer(LocationPath::parse("Nowhere").unwrap());
        assert_eq!(
            guard.offer(bad_peer, &mut out).unwrap_err(),
            RejectReason::OffTopology
        );
        let corrupt = RawAlert::syslog(
            SimTime::from_secs(1),
            t.devices()[0].location.clone(),
            "garbage \u{0} bytes",
        );
        assert_eq!(
            guard.offer(corrupt, &mut out).unwrap_err(),
            RejectReason::CorruptBody
        );
        let nan = alert(&t, 1).with_magnitude(f64::NAN);
        assert_eq!(
            guard.offer(nan, &mut out).unwrap_err(),
            RejectReason::CorruptBody
        );
        let dlq = guard.dead_letters();
        let dlq = dlq.lock();
        assert_eq!(dlq.count(RejectReason::OffTopology), 2);
        assert_eq!(dlq.count(RejectReason::CorruptBody), 2);
        assert_eq!(dlq.total(), 4);
    }

    #[test]
    fn exact_duplicates_are_rejected_but_new_observations_pass() {
        let t = topo();
        let mut guard = IngestGuard::new(&t, GuardConfig::default());
        let mut out = Vec::new();
        guard.offer(alert(&t, 10), &mut out).unwrap();
        let err = guard.offer(alert(&t, 10), &mut out).unwrap_err();
        assert_eq!(err, RejectReason::Duplicate);
        // Same shape, later observation: a genuine new data point.
        guard.offer(alert(&t, 12), &mut out).unwrap();
        // Same time but different magnitude: not an exact retransmission.
        guard
            .offer(alert(&t, 10).with_magnitude(0.7), &mut out)
            .unwrap();
        assert_eq!(guard.stats().rejected_duplicate, 1);
        assert_eq!(guard.stats().accepted, 3);
    }

    #[test]
    fn dead_letter_queue_is_bounded_but_counters_are_not() {
        let mut dlq = DeadLetterQueue::new(2);
        let t = topo();
        for s in 0..5 {
            dlq.push(alert(&t, s), RejectReason::Duplicate);
        }
        assert_eq!(dlq.len(), 2);
        assert_eq!(dlq.count(RejectReason::Duplicate), 5);
        assert_eq!(dlq.evicted(), 3);
        // The retained letters are the most recent ones.
        let kept: Vec<u64> = dlq.letters().map(|l| l.alert.timestamp.as_secs()).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn guard_assigns_dense_trace_ids_and_feeds_observability() {
        use crate::obs::{ObsConfig, Observability};
        let t = topo();
        let obs = Observability::new(&ObsConfig::default());
        let mut guard = IngestGuard::new(&t, GuardConfig::default()).with_observability(&obs);
        let mut out = Vec::new();
        guard.offer(alert(&t, 1), &mut out).unwrap();
        guard.offer(alert(&t, 2), &mut out).unwrap();
        // A duplicate still receives a trace id (and a rejected event).
        let _ = guard.offer(alert(&t, 1), &mut out);
        guard.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|a| a.trace.0).collect();
        assert_eq!(ids, vec![1, 2], "dense ids in intake order");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("skynet_ingest_accepted_total", None), 2);
        assert_eq!(
            snap.counter("skynet_ingest_rejected_total", Some("duplicate")),
            1
        );
        // trace3 was rejected, traces 1-2 admitted and released.
        let steps: Vec<String> = obs
            .explain(skynet_model::TraceId(3))
            .iter()
            .map(|e| e.stage.label())
            .collect();
        assert_eq!(steps, vec!["guard:rejected(duplicate)"]);
        let steps: Vec<String> = obs
            .explain(skynet_model::TraceId(1))
            .iter()
            .map(|e| e.stage.label())
            .collect();
        assert_eq!(steps, vec!["guard:admitted", "guard:released"]);
    }

    #[test]
    fn guard_state_round_trips_mid_flood() {
        let t = topo();
        let mut live = IngestGuard::new(&t, GuardConfig::default());
        let mut live_out = Vec::new();
        for s in [100, 90, 110, 130, 125] {
            let _ = live.offer(alert(&t, s), &mut live_out);
        }
        live.advance(SimTime::from_secs(140), &mut live_out);

        let state = live.snapshot_state();
        let json = serde_json::to_string(&state).unwrap();
        let state: GuardState = serde_json::from_str(&json).unwrap();
        let mut restored = IngestGuard::new(&t, GuardConfig::default());
        restored.restore_state(state);
        assert_eq!(restored.buffered(), live.buffered());
        assert_eq!(restored.stats(), live.stats());

        // The tail of the flood must play out identically: a duplicate of a
        // pre-snapshot alert is still rejected, new alerts release in the
        // same order, and trace ids continue from the same cursor.
        let mut r_out = Vec::new();
        let tail = [125u64, 150, 145, 200];
        for s in tail {
            let _ = restored.offer(alert(&t, s), &mut r_out);
        }
        restored.flush(&mut r_out);
        let mut l_tail = Vec::new();
        for s in tail {
            let _ = live.offer(alert(&t, s), &mut l_tail);
        }
        live.flush(&mut l_tail);
        assert_eq!(r_out, l_tail);
        assert_eq!(restored.stats(), live.stats());
        assert_eq!(
            restored.dead_letters().lock().total(),
            live.dead_letters().lock().total()
        );
    }

    #[test]
    fn stats_merge_accumulates_across_restarts() {
        let mut a = IngestStats {
            accepted: 10,
            rejected_stale: 2,
            watermark: SimTime::from_secs(50),
            ..IngestStats::default()
        };
        let b = IngestStats {
            accepted: 5,
            rejected_corrupt: 1,
            watermark: SimTime::from_secs(40),
            ..IngestStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accepted, 15);
        assert_eq!(a.rejected(), 3);
        assert_eq!(a.watermark, SimTime::from_secs(50));
    }
}
