//! # skynet-core
//!
//! The paper's contribution: the SkyNet analysis pipeline that turns an
//! alert flood into a short, ranked list of incidents (§3–§4).
//!
//! ```text
//!  raw alerts ──▶ Preprocessor ──▶ structured alerts ──▶ Locator ──▶ incidents
//!   (12 tools)     (§4.1)                                  (§4.2)       │
//!                  classify / dedup /                      alert trees  ▼
//!                  consolidate                           Evaluator (§4.3)
//!                                                        severity + zoom-in
//! ```
//!
//! - [`preprocess`] — uniform-format normalization, FT-tree syslog
//!   classification, three-stage consolidation (identical / single-source /
//!   cross-source).
//! - [`locator`] — the hierarchical main alert tree and incident trees
//!   (Algorithms 1–3), type-distinct counting, the `A/B+C/D` thresholds,
//!   topology-connectivity grouping. The production [`Locator`] runs on an
//!   interned-id arena; [`locator::PathLocator`] keeps the path-keyed
//!   implementation as a differential oracle and benchmark baseline.
//! - [`evaluator`] — severity scoring (Equations 1–3, Table 3), the
//!   reachability-matrix / sFlow / INT location zoom-in, and the severity
//!   filter.
//! - [`sop`] — the heuristic-rule engine handling *known* failures with
//!   automatic standard operating procedures (§7.2, §7.3).
//! - [`guard`] — the fault-tolerant ingestion boundary: validation,
//!   watermark-based re-sequencing, and the dead-letter queue.
//! - [`error`] — the [`SkyNetError`] taxonomy surfaced by the streaming
//!   runtime instead of panics.
//! - [`shard`] — region-affine shard routing: every location maps to its
//!   region's shard in O(1), which is what lets the locate/evaluate stages
//!   run in parallel without ever splitting an incident.
//! - [`par`] — the minimal order-preserving parallel map the sharded
//!   stages run on, backed by a persistent [`par::WorkerPool`] (std
//!   threads; no runtime dependency, no per-batch thread spawning).
//! - [`pipeline`] — the assembled system: batch analysis and a supervised,
//!   channel-based streaming mode, both optionally region-sharded via
//!   [`StreamingConfig::shards`].
//! - [`obs`] — the unified observability layer: the metrics registry every
//!   stage registers into, per-alert stage tracing, and the Prometheus /
//!   JSON / table exporters.
//! - [`faultinject`] — seeded, replayable fault injection at every stage
//!   boundary, plus the post-incident degradation report. Disabled by
//!   default and zero-cost when off.
//! - [`serve`] — the always-on multi-tenant ingest service: a TCP/JSON
//!   front door with per-tenant backpressure, a segmented replayable
//!   write-ahead log, and snapshot/restore warm restarts.
//!
//! Build a pipeline with [`SkyNet::builder`]; pull the common surface in
//! one line with `use skynet_core::prelude::*`.

// `deny`, not `forbid`: the worker pool in `par` needs one fenced unsafe
// block (lifetime erasure of scoped jobs) behind a scoped `allow`; every
// other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod evaluator;
pub mod faultinject;
pub mod guard;
pub mod locator;
pub mod obs;
pub mod par;
pub mod pipeline;
pub mod preprocess;
pub mod serve;
pub mod shard;
pub mod sop;

pub use error::{RejectReason, SkyNetError};
pub use evaluator::{Evaluator, EvaluatorConfig, ScoredIncident};
pub use faultinject::{
    DegradationReport, FaultAction, FaultConfig, FaultRule, FaultTrigger, InjectedFault,
    InjectionSite,
};
pub use guard::{DeadLetter, DeadLetterQueue, GuardConfig, IngestGuard, IngestStats};
pub use locator::{CountingMode, Incident, Locator, LocatorConfig, MaintenanceMode, Thresholds};
pub use obs::{Exporter, ObsConfig, Observability};
#[allow(deprecated)]
pub use pipeline::spawn_streaming;
pub use pipeline::{
    AnalysisReport, Handle, HealthReport, IngestSnapshot, PipelineConfig, SkyNet, SkyNetBuilder,
    StreamEvent, StreamIncident, StreamingConfig, StreamingHandle,
};
pub use preprocess::{Preprocessor, PreprocessorConfig, SyslogClassifier};
pub use serve::{replay_wal, BatchAck, ServeConfig, ServeError, ServiceHandle, TenantHealth};
pub use sop::{SopAction, SopEngine, SopPlan, SopRule};

/// The curated one-line import for building and driving a pipeline.
///
/// ```
/// use skynet_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::error::{RejectReason, SkyNetError};
    pub use crate::evaluator::ScoredIncident;
    pub use crate::faultinject::{
        DegradationReport, FaultAction, FaultConfig, FaultRule, InjectionSite,
    };
    pub use crate::locator::Incident;
    pub use crate::obs::{Exporter, ObsConfig, Observability, Stage, TraceEvent};
    #[allow(deprecated)]
    pub use crate::pipeline::spawn_streaming;
    pub use crate::pipeline::{
        AnalysisReport, Handle, PipelineConfig, SkyNet, SkyNetBuilder, StreamEvent, StreamIncident,
        StreamingConfig, StreamingHandle,
    };
    pub use crate::serve::{replay_wal, BatchAck, ServeConfig, ServiceHandle, TenantHealth};
    pub use skynet_model::{RawAlert, SimTime, TraceId};
}

/// Implementation details re-exported for benchmarks, differential tests
/// and extensions — **not** a stable API surface.
pub mod internals {
    pub use crate::evaluator::{MatrixMemo, MatrixMemoStats};
    pub use crate::locator::PathLocator;
    pub use crate::par::{parallel_map, shared_pool, WorkerPool};
    pub use crate::shard::{ShardRouter, FALLBACK_SHARD};
}
