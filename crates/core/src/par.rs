//! Order-preserving parallel map on a persistent worker pool.
//!
//! The pipeline's parallel stages (per-shard location, batched incident
//! evaluation, streaming ticks) are CPU-bound and deterministic; what they
//! need from a thread pool is *nothing but* index-stable fan-out. Earlier
//! revisions spawned fresh scoped threads on every [`parallel_map`] call,
//! which put an OS thread creation on every batch and every streaming
//! tick. The [`WorkerPool`] keeps one set of workers alive for the life of
//! the process instead: jobs are chunks of a map call, fed through a
//! queue, with results written to index-stable slots so the output stays
//! byte-identical to the sequential map at any worker count.
//!
//! [`parallel_map`] is a thin facade over the process-wide
//! [`shared_pool`]: it keeps the exact chunking of the scoped-thread
//! version (contiguous chunks of `ceil(n / workers)` items, concatenated
//! in input order), so every existing call site keeps byte-identical
//! output ordering. Panics in the mapped closure propagate to the caller
//! after the call's remaining chunks have finished, and the workers
//! survive to serve the next call.
//!
//! Everything here is std-only — no runtime dependency — but the pool
//! needs one carefully-fenced `unsafe` block to erase the borrow lifetime
//! of a chunk job before it rides the `'static` queue (see
//! [`WorkerPool::run`] for the guarantee that makes it sound), which is
//! why `skynet-core` downgraded `#![forbid(unsafe_code)]` to
//! `#![deny(unsafe_code)]` with a scoped `allow` in this module.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A queued unit of work: one chunk of a [`WorkerPool::run`] call,
/// lifetime-erased so it can sit in the pool's `'static` queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, ignoring poisoning: the pool's shared state (a job
/// queue, completion counters, a panic slot) stays consistent across a
/// panicking job because jobs run outside the lock and are wrapped in
/// `catch_unwind`.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
}

/// Per-call completion latch: counts finished chunks and carries the first
/// panic payload, if any, back to the submitting thread.
struct Latch {
    done: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete(&self) {
        *lock(&self.done) += 1;
        self.all_done.notify_all();
    }

    fn poison(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.panic).take()
    }

    fn wait_for(&self, n: usize) {
        let mut done = lock(&self.done);
        while *done < n {
            done = self
                .all_done
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Blocks until every submitted chunk of one `run` call has completed —
/// on the normal path *and* while unwinding. This drop-wait is what makes
/// the lifetime erasure in [`WorkerPool::run`] sound: the borrowed
/// closure, slots and latch cannot be deallocated while a worker might
/// still touch them.
struct SubmitGuard<'a> {
    latch: &'a Latch,
    submitted: usize,
}

impl Drop for SubmitGuard<'_> {
    fn drop(&mut self) {
        self.latch.wait_for(self.submitted);
    }
}

thread_local! {
    /// Set inside pool workers so a nested [`WorkerPool::run`] (a mapped
    /// closure that itself calls into the pool) degrades to the sequential
    /// map instead of deadlocking on the already-busy queue.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn worker_loop(shared: &PoolShared, jobs_completed: &AtomicU64) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        job();
        jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A persistent pool of worker threads executing chunked, order-preserving
/// map calls. Created once (see [`shared_pool`]) and reused by every batch
/// `parallel_map`, the evaluator's 3-phase prebuild and streaming ticks —
/// no per-call thread spawning.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    jobs_completed: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("jobs_completed", &self.jobs_completed())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `threads` workers (clamped to at least 1). Workers are
    /// spawned eagerly and live until the pool is dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let jobs_completed = Arc::new(AtomicU64::new(0));
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let completed = Arc::clone(&jobs_completed);
                std::thread::Builder::new()
                    .name(format!("skynet-pool-{i}"))
                    .spawn(move || worker_loop(&shared, &completed))
                    .expect("spawning a worker-pool thread")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            jobs_completed,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk jobs executed by the pool so far (across all map calls).
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Maps `f` over `items` on the pool's persistent workers, preserving
    /// input order. The input is split into contiguous chunks of
    /// `ceil(n / max_chunks)` items — the same boundaries the old
    /// scoped-thread `parallel_map` used — and results are written to
    /// index-stable slots, so the output is byte-identical to the
    /// sequential map regardless of pool size or execution interleaving.
    ///
    /// `max_chunks <= 1` (or a single item) degenerates to the plain
    /// sequential map on the calling thread, as does a nested call from
    /// inside a pool worker (which would otherwise deadlock waiting for
    /// itself). A panic in `f` propagates to the caller once the call's
    /// remaining chunks have drained; the workers survive for the next
    /// call.
    pub fn run<T, U, F>(&self, items: Vec<T>, max_chunks: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        let max_chunks = max_chunks.clamp(1, n.max(1));
        if max_chunks <= 1 || IN_POOL_WORKER.with(|flag| flag.get()) {
            return items.into_iter().map(f).collect();
        }

        // Contiguous chunks keep results index-stable under concatenation;
        // the chunk length must stay identical to the scoped-thread
        // implementation for byte-identical chunk boundaries.
        let chunk_len = n.div_ceil(max_chunks);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(max_chunks);
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }

        let slots: Vec<Mutex<Option<Vec<U>>>> =
            (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new();
        let submitted = chunks.len();
        let f = &f;
        let slots_ref = &slots;
        let latch_ref = &latch;
        let mut jobs: Vec<Job> = Vec::with_capacity(submitted);
        for (i, chunk) in chunks.into_iter().enumerate() {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                }));
                match result {
                    Ok(mapped) => *lock(&slots_ref[i]) = Some(mapped),
                    Err(payload) => latch_ref.poison(payload),
                }
                latch_ref.complete();
            });
            // SAFETY: the job borrows `f`, `slots` and `latch`, all of
            // which outlive it: every erased job counts the latch up
            // exactly once (also on the panic path, via `catch_unwind`),
            // and `SubmitGuard` below blocks — on the normal path and
            // during unwinding — until the count reaches `submitted`, so
            // this stack frame cannot be left while any job is pending.
            #[allow(unsafe_code)]
            let job: Job = unsafe { erase_job(job) };
            jobs.push(job);
        }

        // From here on the guard guarantees we wait for every job before
        // returning or unwinding out of this frame.
        let guard = SubmitGuard {
            latch: &latch,
            submitted,
        };
        {
            let mut queue = lock(&self.shared.queue);
            queue.jobs.extend(jobs);
        }
        self.shared.work_ready.notify_all();
        drop(guard); // blocks until all chunks have completed

        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        let mut out: Vec<U> = Vec::with_capacity(n);
        for slot in slots {
            let mapped = lock(&slot).take().expect("completed chunk left no result");
            out.extend(mapped);
        }
        out
    }
}

/// Erases the borrow lifetime of a chunk job so it can ride the pool's
/// `'static` queue. See the SAFETY comment at the call site in
/// [`WorkerPool::run`].
#[allow(unsafe_code)]
unsafe fn erase_job(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    // SAFETY: deferred to the caller — the job must be executed (or the
    // queue never drained) while the borrowed data is still live, which
    // `SubmitGuard`'s drop-wait enforces.
    unsafe { std::mem::transmute(job) }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool behind [`parallel_map`]: created on first use,
/// sized to the machine's available parallelism, and reused by every
/// parallel stage for the life of the process.
pub fn shared_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Maps `f` over `items` on up to `workers` pool workers, preserving input
/// order. `workers <= 1` (or a single item) degenerates to the plain
/// sequential map on the calling thread. A panic in any chunk propagates
/// to the caller. The output — ordering and chunk boundaries — is
/// byte-identical to the sequential map and to the earlier scoped-thread
/// implementation at any worker count.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if workers.clamp(1, n.max(1)) <= 1 {
        return items.into_iter().map(f).collect();
    }
    shared_pool().run(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [0, 1, 2, 3, 7, 16, 2000] {
            let got = parallel_map(items.clone(), workers, |x| x * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(vec![1u32, 2, 3, 4], 2, |x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicking_call() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![1u32, 2, 3, 4], 4, |x| {
                assert!(x != 3, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The same workers serve the next call.
        let got = pool.run((0..100u64).collect(), 4, |x| x + 1);
        assert_eq!(got, (1..=100u64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reuses_threads_across_calls() {
        let pool = WorkerPool::new(3);
        let seen: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        for _ in 0..20 {
            let out = pool.run((0..60u32).collect(), 3, |x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x * 2
            });
            assert_eq!(out, (0..60u32).map(|x| x * 2).collect::<Vec<_>>());
        }
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct <= 3,
            "pool grew threads across calls: {distinct} distinct ids"
        );
        assert!(pool.jobs_completed() >= 20);
    }

    #[test]
    fn nested_calls_run_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(2);
        let pool_ref = &pool;
        let out = pool_ref.run(vec![10u64, 20], 2, |base| {
            let inner = pool_ref.run((0..5u64).collect(), 2, move |x| x + base);
            inner.iter().sum::<u64>()
        });
        assert_eq!(out, vec![10 + 11 + 12 + 13 + 14, 20 + 21 + 22 + 23 + 24]);
    }

    #[test]
    fn facade_matches_sequential_map_for_strings() {
        let items: Vec<String> = (0..257).map(|i| format!("line-{i}")).collect();
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        for workers in [2, 4, 5] {
            let got = parallel_map(items.clone(), workers, |s| s.len());
            assert_eq!(got, expected);
        }
    }
}
