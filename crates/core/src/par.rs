//! Order-preserving parallel map on scoped OS threads.
//!
//! The pipeline's parallel stages (per-shard location, batched incident
//! evaluation) are CPU-bound and deterministic; what they need from a
//! thread pool is *nothing but* index-stable fan-out. [`parallel_map`]
//! splits the input into contiguous chunks, runs one scoped thread per
//! chunk and concatenates the results in input order, so the output is
//! byte-identical to the sequential map at any worker count.

/// Maps `f` over `items` on up to `workers` scoped threads, preserving
/// input order. `workers <= 1` (or a single item) degenerates to the plain
/// sequential map on the calling thread. A panic in any worker propagates
/// to the caller.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks keep results index-stable under concatenation.
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mapped) => out.extend(mapped),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [0, 1, 2, 3, 7, 16, 2000] {
            let got = parallel_map(items.clone(), workers, |x| x * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(vec![1u32, 2, 3, 4], 2, |x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
