//! The locator (§4.2): hierarchical alert trees and incident discovery.
//!
//! A *main tree* indexed by location accumulates every structured alert
//! (Algorithm 1). Periodically (Algorithm 3) expired alerts are dropped —
//! the 5-minute node timeout absorbs the ~4-minute worst-case alert delay —
//! and incident generation (Algorithm 2) runs: alerting nodes are grouped
//! into *connected components* (two nodes connect when one's location
//! contains the other's, or the topology has a direct link between them —
//! "network alerts often propagate through topological links"), each
//! component's alerts are counted **once per type** (the false-positive fix
//! of §4.2), and a component crossing the `A/B+C/D` thresholds becomes an
//! *incident tree* rooted at the deepest location covering a quorum of the
//! component's alert types (DESIGN.md; plain deepest-common-ancestor at
//! `root_quorum = 1.0`). Incident trees absorb matching new alerts, grow
//! upward by replacing contained incidents, and finalize after 15 idle
//! minutes.

//!
//! ## Interned hot path
//!
//! The main tree is an index-addressed arena: every location is resolved to
//! a dense [`LocId`] exactly once, when its alert enters [`Locator::insert`],
//! and Algorithms 1–3 then run entirely on `Copy` ids — containment is two
//! array probes, adjacency one canonical-ordered pair lookup, and no
//! [`LocationPath`] is cloned or re-hashed per alert. Paths reappear only on
//! finished [`Incident`]s (the serde/API boundary). The previous path-keyed
//! implementation survives as [`reference::PathLocator`], the differential
//! test oracle and benchmark baseline.

pub mod incident;
pub mod reference;
pub mod thresholds;

pub use incident::Incident;
pub use reference::PathLocator;
pub use thresholds::Thresholds;

use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertClass, AlertType, IncidentId, LocId, LocationInterner, LocationLevel, LocationPath,
    SimDuration, SimTime, StructuredAlert,
};
use skynet_topology::Topology;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How alerts under a node are counted against the thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountingMode {
    /// Alerts of the same type count once regardless of location — the
    /// production setting ("we consolidate alarms of the same type from
    /// different devices into a single alert", §4.2).
    TypeDistinct,
    /// Alerts of the same type at different locations count separately —
    /// Fig. 9's `type+location` baseline (false positives jump to ~70%).
    TypeAndLocation,
}

/// Locator knobs. Defaults are the paper's production values.
///
/// `#[non_exhaustive]`: construct via [`LocatorConfig::default`] and the
/// fluent `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct LocatorConfig {
    /// Incident-generation thresholds (`2/1+2/5` in production).
    pub thresholds: Thresholds,
    /// Counting mode (type-distinct in production).
    pub counting: CountingMode,
    /// Main-tree alert expiry — 5 minutes: longer than the worst-case
    /// ~4-minute alert delay, as short as possible beyond that (§4.2).
    pub node_timeout: SimDuration,
    /// Incident-tree idle timeout — 15 minutes ("timeliness is not
    /// critical here", §4.2).
    pub incident_timeout: SimDuration,
    /// How often Algorithms 2–3 run.
    pub check_interval: SimDuration,
    /// Use topology links when grouping alerting nodes (disabling leaves
    /// only hierarchical containment — an ablation knob).
    pub use_topology_connectivity: bool,
    /// Incident roots are placed at the deepest location covering at least
    /// this fraction of the component's distinct alert types, so a single
    /// stray alert at a broad location (a noise blip on a border router)
    /// cannot flatten the incident to the network root. `1.0` reduces to
    /// the plain deepest-common-ancestor (an ablation knob).
    pub root_quorum: f64,
}

impl Default for LocatorConfig {
    fn default() -> Self {
        LocatorConfig {
            thresholds: Thresholds::PRODUCTION,
            counting: CountingMode::TypeDistinct,
            node_timeout: SimDuration::from_mins(5),
            incident_timeout: SimDuration::from_mins(15),
            check_interval: SimDuration::from_secs(10),
            use_topology_connectivity: true,
            root_quorum: 0.8,
        }
    }
}

impl LocatorConfig {
    /// Sets the incident-generation thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the counting mode.
    pub fn with_counting(mut self, counting: CountingMode) -> Self {
        self.counting = counting;
        self
    }

    /// Sets the main-tree alert expiry.
    pub fn with_node_timeout(mut self, timeout: SimDuration) -> Self {
        self.node_timeout = timeout;
        self
    }

    /// Sets the incident-tree idle timeout.
    pub fn with_incident_timeout(mut self, timeout: SimDuration) -> Self {
        self.incident_timeout = timeout;
        self
    }

    /// Sets how often Algorithms 2–3 run.
    pub fn with_check_interval(mut self, interval: SimDuration) -> Self {
        self.check_interval = interval;
        self
    }

    /// Enables or disables topology-connectivity grouping.
    pub fn with_topology_connectivity(mut self, enabled: bool) -> Self {
        self.use_topology_connectivity = enabled;
        self
    }

    /// Sets the root-quorum fraction.
    pub fn with_root_quorum(mut self, quorum: f64) -> Self {
        self.root_quorum = quorum;
        self
    }
}

/// One location's live alerts, keyed by type: a repeat of the same type
/// *updates* the stored alert rather than adding a new one (§4.1's
/// "updates the timestamp of the initial alert").
#[derive(Debug, Clone, Default)]
struct Node {
    alerts: HashMap<AlertType, StructuredAlert>,
}

impl Node {
    fn add(&mut self, alert: &StructuredAlert) {
        self.alerts
            .entry(alert.ty)
            .and_modify(|existing| existing.absorb(alert))
            .or_insert_with(|| alert.clone());
    }
}

#[derive(Debug, Clone)]
struct OpenIncident {
    id: IncidentId,
    root: LocId,
    nodes: HashMap<LocId, Node>,
    update_time: SimTime,
}

impl OpenIncident {
    fn add(&mut self, loc: LocId, alert: &StructuredAlert) {
        self.nodes.entry(loc).or_default().add(alert);
        self.update_time = self.update_time.max_of(alert.last_seen);
    }

    fn into_incident(self, interner: &LocationInterner) -> Incident {
        let mut alerts: Vec<StructuredAlert> = self
            .nodes
            .into_values()
            .flat_map(|n| n.alerts.into_values())
            .collect();
        alerts.sort_by(|a, b| {
            a.first_seen
                .cmp(&b.first_seen)
                .then_with(|| a.location.cmp(&b.location))
                .then_with(|| a.ty.cmp(&b.ty))
        });
        let first_seen = alerts
            .iter()
            .map(|a| a.first_seen)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last_seen = alerts
            .iter()
            .map(|a| a.last_seen)
            .max()
            .unwrap_or(SimTime::ZERO);
        Incident {
            id: self.id,
            root: interner.path(self.root).clone(),
            first_seen,
            last_seen,
            alerts,
        }
    }
}

/// A canonical-ordered location pair: adjacency stores each linked pair
/// once, queried from either direction without cloning anything.
fn pair(a: LocId, b: LocId) -> (LocId, LocId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The locator: feed it time-ordered structured alerts, collect finished
/// incidents.
pub struct Locator {
    cfg: LocatorConfig,
    /// The topology's interner, extended in place with any off-topology
    /// locations the flood mentions (e.g. probe pseudo-devices).
    interner: LocationInterner,
    /// The main alert tree as an arena indexed by `LocId`.
    main: Vec<Node>,
    /// Ids of main-tree nodes that currently hold alerts (no duplicates;
    /// pruned on expiry).
    active: Vec<LocId>,
    open: Vec<OpenIncident>,
    completed: Vec<Incident>,
    next_check: SimTime,
    next_id: u32,
    /// Location-prefix pairs directly connected by a topology link, stored
    /// once in canonical id order.
    adjacency: HashSet<(LocId, LocId)>,
}

impl std::fmt::Debug for Locator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locator")
            .field("main_nodes", &self.active.len())
            .field("open_incidents", &self.open.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl Locator {
    /// Builds a locator over a topology (used for link-connectivity
    /// grouping).
    pub fn new(topo: &Arc<Topology>, cfg: LocatorConfig) -> Self {
        let interner = (**topo.interner()).clone();
        let mut adjacency = HashSet::new();
        if cfg.use_topology_connectivity {
            for link in topo.links() {
                let (Some(da), Some(db)) = (link.a.device(), link.b.device()) else {
                    continue;
                };
                let la = topo.device_loc(da);
                let lb = topo.device_loc(db);
                // Adjacency grouping is scoped within a region: failures
                // are reported per region (the paper's five-region DDoS
                // produced five incidents, §5.1), so inter-region WAN
                // links do not merge incident scopes.
                if interner.ancestor_at_depth(la, 1) != interner.ancestor_at_depth(lb, 1) {
                    continue;
                }
                for pa in interner.ancestors(la) {
                    for pb in interner.ancestors(lb) {
                        if pa != pb {
                            adjacency.insert(pair(pa, pb));
                        }
                    }
                }
            }
        }
        let main = vec![Node::default(); interner.len()];
        Locator {
            cfg,
            interner,
            main,
            active: Vec::new(),
            open: Vec::new(),
            completed: Vec::new(),
            next_check: SimTime::ZERO,
            next_id: 0,
            adjacency,
        }
    }

    /// Algorithm 1: routes an alert into any covering incident tree, and
    /// always into the main tree. Advances the clock to the alert's time
    /// *before* inserting, so pending expiry checks never see alerts from
    /// their future. The alert's location is resolved to a [`LocId`] here,
    /// once; everything downstream runs on ids.
    ///
    /// # Panics
    /// Panics on an alert located at the network root — the ingestion guard
    /// rejects those as off-topology before they can reach the locator.
    pub fn insert(&mut self, alert: &StructuredAlert) {
        self.advance(alert.last_seen);
        let loc = self.interner.intern(&alert.location);
        for incident in &mut self.open {
            if self.interner.contains(incident.root, loc) {
                incident.add(loc, alert);
                break;
            }
        }
        if self.main.len() < self.interner.len() {
            self.main.resize_with(self.interner.len(), Node::default);
        }
        let node = &mut self.main[loc.index()];
        let was_empty = node.alerts.is_empty();
        node.add(alert);
        if was_empty {
            self.active.push(loc);
        }
    }

    /// Runs any due Algorithm 2/3 checks up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        // A zero interval (from a hand-written config) must not loop
        // forever; clamp to the finest representable cadence.
        let step = self.cfg.check_interval.max(SimDuration::from_millis(1));
        while self.next_check <= now {
            let at = self.next_check;
            self.check_trees(at);
            self.generate_trees(at);
            self.next_check += step;
        }
    }

    /// Algorithm 3: expire main-tree alerts and finalize idle incidents.
    fn check_trees(&mut self, now: SimTime) {
        let timeout = self.cfg.node_timeout;
        let main = &mut self.main;
        self.active.retain(|&id| {
            let node = &mut main[id.index()];
            node.alerts.retain(|_, a| now.since(a.last_seen) <= timeout);
            !node.alerts.is_empty()
        });

        let idle = self.cfg.incident_timeout;
        let interner = &self.interner;
        let completed = &mut self.completed;
        let mut still_open = Vec::new();
        for incident in self.open.drain(..) {
            if now.since(incident.update_time) > idle {
                completed.push(incident.into_incident(interner));
            } else {
                still_open.push(incident);
            }
        }
        self.open = still_open;
    }

    /// True when two alerting locations belong to the same failure scope:
    /// one contains the other, they are close siblings (devices of one
    /// cluster, clusters of one site, sites of one logic site — they share
    /// local fabric), or the topology has a direct link between them.
    /// Siblings above the site level (cities, regions) are *not*
    /// auto-connected, and neither are cross-branch locations without a
    /// link — Fig. 5c's device-n isolation.
    fn connected(&self, a: LocId, b: LocId) -> bool {
        self.interner.contains(a, b)
            || self.interner.contains(b, a)
            || (self.interner.depth(a) >= LocationLevel::Site.depth()
                && self.interner.parent(a) == self.interner.parent(b))
            || self.adjacency.contains(&pair(a, b))
    }

    /// Counts `(failure_types, all_types)` for a set of nodes under the
    /// configured counting mode.
    fn count_component(&self, locations: &[LocId]) -> (u32, u32) {
        match self.cfg.counting {
            CountingMode::TypeDistinct => {
                let mut types: HashSet<AlertType> = HashSet::new();
                for &loc in locations {
                    types.extend(self.main[loc.index()].alerts.keys().copied());
                }
                let failure = types
                    .iter()
                    .filter(|t| t.class() == AlertClass::Failure)
                    .count() as u32;
                (failure, types.len() as u32)
            }
            CountingMode::TypeAndLocation => {
                let mut failure = 0u32;
                let mut all = 0u32;
                for &loc in locations {
                    let node = &self.main[loc.index()];
                    all += node.alerts.len() as u32;
                    failure += node
                        .alerts
                        .keys()
                        .filter(|t| t.class() == AlertClass::Failure)
                        .count() as u32;
                }
                (failure, all)
            }
        }
    }

    /// Algorithm 2: group alerting nodes into connected components and turn
    /// threshold-crossing components into incident trees.
    fn generate_trees(&mut self, _now: SimTime) {
        let locations: Vec<LocId> = self.active.clone();
        if locations.is_empty() {
            return;
        }

        // Union-find over alerting nodes.
        let n = locations.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut i = i;
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.connected(locations[i], locations[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            components.entry(r).or_default().push(i);
        }

        let mut component_list: Vec<Vec<usize>> = components.into_values().collect();
        // Deterministic order: by each component's first location in path
        // order (id order is interning order, not path order).
        let interner = &self.interner;
        let min_loc = |c: &Vec<usize>| -> LocId {
            c.iter()
                .map(|&i| locations[i])
                .min_by(|&x, &y| interner.cmp(x, y))
                .expect("components are non-empty")
        };
        component_list.sort_by(|a, b| interner.cmp(min_loc(a), min_loc(b)));

        for component in component_list {
            let mut remaining: Vec<LocId> = component.iter().map(|&i| locations[i]).collect();
            // A component may host several incidents once quorum rooting
            // excludes outliers (e.g. two attacked sites bridged by a
            // shared parent): keep carving incidents out of the remainder
            // until the leftovers stop meeting the thresholds.
            loop {
                let (failure, all) = self.count_component(&remaining);
                if remaining.is_empty() || !self.cfg.thresholds.is_met(failure, all) {
                    break;
                }
                let root = self.quorum_root(&remaining);
                // Only nodes under the root join this incident; quorum
                // outliers stay for the next carve (or expire) — Fig. 5c's
                // device-n separation.
                let locs: Vec<LocId> = remaining
                    .iter()
                    .copied()
                    .filter(|&l| self.interner.contains(root, l))
                    .collect();
                let before = remaining.len();
                let interner = &self.interner;
                remaining.retain(|&l| !interner.contains(root, l));
                if remaining.len() == before {
                    break; // no progress; defensive
                }
                // Skip roots already covered by an open incident (their
                // alerts were routed there by Algorithm 1).
                if self
                    .open
                    .iter()
                    .any(|i| self.interner.contains(i.root, root))
                {
                    continue;
                }
                self.create_incident(root, &locs);
            }
        }
    }

    /// Creates one incident tree rooted at `root` over the given alerting
    /// locations, absorbing any open incidents strictly inside the root.
    fn create_incident(&mut self, root: LocId, locs: &[LocId]) {
        // Growth upward: absorb open incidents strictly inside us.
        let mut nodes: HashMap<LocId, Node> = HashMap::new();
        let mut update_time = SimTime::ZERO;
        let mut absorbed_ids = Vec::new();
        let interner = &self.interner;
        self.open.retain_mut(|i| {
            if interner.contains(root, i.root) {
                for (loc, node) in i.nodes.drain() {
                    let target = nodes.entry(loc).or_default();
                    for alert in node.alerts.values() {
                        target.add(alert);
                    }
                }
                update_time = update_time.max_of(i.update_time);
                absorbed_ids.push(i.id);
                false
            } else {
                true
            }
        });
        // Replicate the component's subtree from the main tree
        // ("the subtree beneath the node is replicated").
        for &loc in locs {
            let node = &self.main[loc.index()];
            let target = nodes.entry(loc).or_default();
            for alert in node.alerts.values() {
                target.add(alert);
                update_time = update_time.max_of(alert.last_seen);
            }
        }
        let id = absorbed_ids.into_iter().min().unwrap_or_else(|| {
            let id = IncidentId(self.next_id);
            self.next_id += 1;
            id
        });
        self.open.push(OpenIncident {
            id,
            root,
            nodes,
            update_time,
        });
    }

    /// The deepest prefix covering at least `root_quorum` of the
    /// component's distinct alert types while still meeting the incident
    /// thresholds; the component's deepest common ancestor always
    /// qualifies, so this is total.
    fn quorum_root(&self, locs: &[LocId]) -> LocId {
        let (&first, rest) = locs.split_first().expect("quorum_root needs members");
        let mut dca = first;
        for &l in rest {
            // Connectivity is region-scoped, so every component shares a
            // region and the fold can never reach the network root.
            dca = self
                .interner
                .common_ancestor(dca, l)
                .expect("components never span regions");
        }
        let type_sets: Vec<(LocId, HashSet<AlertType>)> = locs
            .iter()
            .map(|&l| {
                let types = self.main[l.index()].alerts.keys().copied().collect();
                (l, types)
            })
            .collect();
        let total: HashSet<AlertType> = type_sets
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        let needed = ((total.len() as f64) * self.cfg.root_quorum).ceil() as usize;

        let mut candidates: Vec<LocId> = locs
            .iter()
            .flat_map(|&l| self.interner.ancestors(l))
            .filter(|&c| self.interner.contains(dca, c))
            .collect();
        candidates.sort_by(|&a, &b| {
            self.interner
                .depth(b)
                .cmp(&self.interner.depth(a))
                .then_with(|| self.interner.cmp(a, b))
        });
        candidates.dedup();

        for candidate in candidates {
            let covered: HashSet<AlertType> = type_sets
                .iter()
                .filter(|&&(l, _)| self.interner.contains(candidate, l))
                .flat_map(|(_, t)| t.iter().copied())
                .collect();
            if covered.len() < needed {
                continue;
            }
            let covered_locs: Vec<LocId> = locs
                .iter()
                .copied()
                .filter(|&l| self.interner.contains(candidate, l))
                .collect();
            let (failure, all) = self.count_component(&covered_locs);
            if self.cfg.thresholds.is_met(failure, all) {
                return candidate;
            }
        }
        dca
    }

    /// Flushes everything: finalizes all open incidents (used at end of a
    /// batch run).
    pub fn finish(&mut self) {
        let interner = &self.interner;
        let completed = &mut self.completed;
        for incident in self.open.drain(..) {
            completed.push(incident.into_incident(interner));
        }
        for &id in &self.active {
            self.main[id.index()].alerts.clear();
        }
        self.active.clear();
    }

    /// Takes the finished incidents accumulated so far.
    pub fn take_completed(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.completed)
    }

    /// Number of currently open incident trees.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Roots of the currently open incident trees.
    pub fn open_roots(&self) -> Vec<LocationPath> {
        self.open
            .iter()
            .map(|i| self.interner.path(i.root).clone())
            .collect()
    }

    /// Convenience: run a whole time-ordered batch through Algorithms 1–3
    /// and return every incident.
    pub fn process_batch(&mut self, alerts: &[StructuredAlert], horizon: SimTime) -> Vec<Incident> {
        for alert in alerts {
            self.insert(alert);
        }
        self.advance(horizon);
        self.finish();
        let mut incidents = self.take_completed();
        incidents.sort_by_key(|i| (i.first_seen, i.id));
        incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{AlertKind, DataSource, RawAlert};
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn alert(
        source: DataSource,
        kind: AlertKind,
        secs: u64,
        location: &LocationPath,
    ) -> StructuredAlert {
        let raw = RawAlert::known(source, SimTime::from_secs(secs), location.clone(), kind);
        StructuredAlert::from_raw(&raw, kind)
    }

    fn site(t: &Topology) -> LocationPath {
        t.clusters()[0].parent()
    }

    #[test]
    fn two_failure_types_make_an_incident() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(40));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(loc.open_roots()[0], s);
    }

    #[test]
    fn one_failure_type_repeated_does_not_trigger() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        for i in 0..20 {
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, i, &s));
        }
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 0, "same type counts once");
    }

    #[test]
    fn type_and_location_mode_counts_locations_separately() {
        let t = topo();
        let cfg = LocatorConfig {
            counting: CountingMode::TypeAndLocation,
            ..LocatorConfig::default()
        };
        let mut loc = Locator::new(&t, cfg);
        // A buggy probe raises the same single kind on five sibling devices
        // of one cluster (the §4.2 false-alarm anecdote).
        let cluster = t.clusters()[0].clone();
        let devices: Vec<LocationPath> = t
            .agg_group(&cluster)
            .iter()
            .map(|&d| t.device(d).location.clone())
            .chain([cluster.child("probe-1"), cluster.child("probe-2")])
            .take(5)
            .collect();
        assert_eq!(devices.len(), 5);
        for (i, d) in devices.iter().enumerate() {
            loc.insert(&alert(DataSource::Snmp, AlertKind::HighCpu, i as u64, d));
        }
        loc.advance(SimTime::from_secs(60));
        // Five (type, location) pairs cross the any-5 threshold even though
        // it is a single type — the false-positive mode of Fig. 9.
        assert!(loc.open_count() >= 1);

        let mut strict = Locator::new(&t, LocatorConfig::default());
        for (i, d) in devices.iter().enumerate() {
            strict.insert(&alert(DataSource::Snmp, AlertKind::HighCpu, i as u64, d));
        }
        strict.advance(SimTime::from_secs(60));
        assert_eq!(strict.open_count(), 0, "type-distinct counting resists");
    }

    #[test]
    fn disconnected_groups_become_separate_incidents() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        // Group 1 in Region-0, group 2 in Region-1: never connected.
        let s1 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-0")
            .unwrap()
            .clone();
        let s2 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-1")
            .unwrap()
            .clone();
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Ping, *kind, i as u64 * 5, &s1));
            loc.insert(&alert(DataSource::Ping, *kind, i as u64 * 5 + 1, &s2));
        }
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 2, "roots: {:?}", loc.open_roots());
        let roots = loc.open_roots();
        assert!(roots.contains(&s1));
        assert!(roots.contains(&s2));
    }

    #[test]
    fn incident_root_is_deepest_common_ancestor() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        // Alerts at two clusters of the same site plus the site itself.
        let c1 = t.clusters()[0].clone();
        let c2 = t.clusters()[1].clone();
        assert_eq!(c1.parent(), c2.parent(), "test expects same-site clusters");
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 1, &c1));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 2, &c2));
        loc.insert(&alert(
            DataSource::Snmp,
            AlertKind::LinkDown,
            3,
            &c1.parent(),
        ));
        loc.advance(SimTime::from_secs(30));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(loc.open_roots()[0], c1.parent());
    }

    #[test]
    fn incidents_grow_upward_absorbing_contained_ones() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let c1 = t.clusters()[0].clone();
        // First a cluster-level incident.
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 1, &c1));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 2, &c1));
        loc.advance(SimTime::from_secs(20));
        assert_eq!(loc.open_roots(), vec![c1.clone()]);
        // Then the failure spreads: a sibling cluster and the site's
        // aggregation layer start alerting, bridging the component, and the
        // incident re-roots at the site.
        let c2 = t.clusters()[1].clone();
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketBitFlip, 30, &c2));
        loc.insert(&alert(
            DataSource::Snmp,
            AlertKind::LinkDown,
            31,
            &c1.parent(),
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1, "roots: {:?}", loc.open_roots());
        assert_eq!(loc.open_roots()[0], c1.parent());
    }

    #[test]
    fn expired_alerts_leave_the_main_tree() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 0, &s));
        // 6 minutes later (past the 5-minute node timeout) a second failure
        // type arrives; the first has expired, so no incident forms.
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 360, &s));
        loc.advance(SimTime::from_secs(400));
        assert_eq!(loc.open_count(), 0);
    }

    #[test]
    fn idle_incidents_finalize_after_timeout() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        // 15 idle minutes later the incident closes.
        loc.advance(SimTime::from_mins(17));
        assert_eq!(loc.open_count(), 0);
        let done = loc.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, s);
        assert_eq!(done[0].alerts.len(), 2);
    }

    #[test]
    fn new_alerts_keep_incidents_alive_and_inside() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(60));
        // Feed one alert every 10 minutes — under the 15-minute timeout.
        for k in 1..5u64 {
            loc.insert(&alert(
                DataSource::Snmp,
                AlertKind::TrafficCongestion,
                60 + k * 600,
                &s,
            ));
        }
        assert_eq!(loc.open_count(), 1, "kept alive by fresh alerts");
        loc.finish();
        let done = loc.take_completed();
        assert_eq!(done.len(), 1);
        // All alerts routed into the single incident.
        assert!(done[0].alerts.len() >= 3);
    }

    #[test]
    fn quorum_rooting_excludes_single_stray_broad_alerts() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let cluster = t.clusters()[0].clone();
        // A rich cluster-scoped incident...
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
            AlertKind::TrafficCongestion,
            AlertKind::HardwareError,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Snmp, *kind, i as u64, &cluster));
        }
        // ...plus one stray abnormal alert at the whole region.
        let region = cluster.truncate_at(skynet_model::LocationLevel::Region);
        loc.insert(&alert(
            DataSource::Ping,
            AlertKind::LatencyJitter,
            6,
            &region,
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(
            loc.open_roots()[0],
            cluster,
            "one stray broad alert must not flatten the root to the region"
        );
    }

    #[test]
    fn dca_rooting_ablation_widens_the_root() {
        let t = topo();
        let cfg = LocatorConfig {
            root_quorum: 1.0,
            ..LocatorConfig::default()
        };
        let mut loc = Locator::new(&t, cfg);
        let cluster = t.clusters()[0].clone();
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
            AlertKind::TrafficCongestion,
            AlertKind::HardwareError,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Snmp, *kind, i as u64, &cluster));
        }
        let region = cluster.truncate_at(skynet_model::LocationLevel::Region);
        loc.insert(&alert(
            DataSource::Ping,
            AlertKind::LatencyJitter,
            6,
            &region,
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(
            loc.open_roots()[0],
            region,
            "quorum 1.0 reduces to plain deepest-common-ancestor rooting"
        );
    }

    #[test]
    fn process_batch_runs_end_to_end() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        let alerts = vec![
            alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s),
            alert(DataSource::Ping, AlertKind::PacketLossTcp, 12, &s),
            alert(DataSource::Syslog, AlertKind::HardwareError, 15, &s),
        ];
        let incidents = loc.process_batch(&alerts, SimTime::from_mins(30));
        assert_eq!(incidents.len(), 1);
        assert!(incidents[0].has_class(AlertClass::Failure));
        assert!(incidents[0].has_class(AlertClass::RootCause));
    }
}
