//! The locator (§4.2): hierarchical alert trees and incident discovery.
//!
//! A *main tree* indexed by location accumulates every structured alert
//! (Algorithm 1). Periodically (Algorithm 3) expired alerts are dropped —
//! the 5-minute node timeout absorbs the ~4-minute worst-case alert delay —
//! and incident generation (Algorithm 2) runs: alerting nodes are grouped
//! into *connected components* (two nodes connect when one's location
//! contains the other's, or the topology has a direct link between them —
//! "network alerts often propagate through topological links"), each
//! component's alerts are counted **once per type** (the false-positive fix
//! of §4.2), and a component crossing the `A/B+C/D` thresholds becomes an
//! *incident tree* rooted at the deepest location covering a quorum of the
//! component's alert types (DESIGN.md; plain deepest-common-ancestor at
//! `root_quorum = 1.0`). Incident trees absorb matching new alerts, grow
//! upward by replacing contained incidents, and finalize after 15 idle
//! minutes.

//!
//! ## Interned hot path
//!
//! The main tree is an index-addressed arena: every location is resolved to
//! a dense [`LocId`] exactly once, when its alert enters [`Locator::insert`],
//! and Algorithms 1–3 then run entirely on `Copy` ids — containment is two
//! array probes, adjacency one canonical-ordered pair lookup, and no
//! [`LocationPath`] is cloned or re-hashed per alert. Paths reappear only on
//! finished [`Incident`]s (the serde/API boundary). The previous path-keyed
//! implementation survives as [`reference::PathLocator`], the differential
//! test oracle and benchmark baseline.

pub mod incident;
pub mod reference;
pub mod thresholds;

pub use incident::Incident;
pub use reference::PathLocator;
pub use thresholds::Thresholds;

use crate::obs::{Counter, Observability};
use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertClass, AlertType, IncidentId, LocId, LocationInterner, LocationLevel, LocationPath,
    SimDuration, SimTime, StructuredAlert,
};
use skynet_topology::Topology;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// How alerts under a node are counted against the thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountingMode {
    /// Alerts of the same type count once regardless of location — the
    /// production setting ("we consolidate alarms of the same type from
    /// different devices into a single alert", §4.2).
    TypeDistinct,
    /// Alerts of the same type at different locations count separately —
    /// Fig. 9's `type+location` baseline (false positives jump to ~70%).
    TypeAndLocation,
}

/// How Algorithm 3 maintains the main tree between checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MaintenanceMode {
    /// Delta-per-event: alert expiry runs off an expiry wheel (O(evictions)
    /// per tick instead of O(active)), per-region alert counts are
    /// maintained incrementally on insert/expiry, component grouping uses
    /// linear ancestor/sibling/adjacency probes, and incident generation is
    /// skipped entirely on ticks where nothing structural changed. Produces
    /// byte-identical incidents to [`MaintenanceMode::Rescan`].
    #[default]
    Incremental,
    /// Rebuild-per-tick: the original full `retain` scans and pairwise
    /// connectivity checks. Kept as the differential oracle (and the
    /// benchmark baseline) for the incremental path.
    Rescan,
}

/// Locator knobs. Defaults are the paper's production values.
///
/// `#[non_exhaustive]`: construct via [`LocatorConfig::default`] and the
/// fluent `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct LocatorConfig {
    /// Incident-generation thresholds (`2/1+2/5` in production).
    pub thresholds: Thresholds,
    /// Counting mode (type-distinct in production).
    pub counting: CountingMode,
    /// Main-tree alert expiry — 5 minutes: longer than the worst-case
    /// ~4-minute alert delay, as short as possible beyond that (§4.2).
    pub node_timeout: SimDuration,
    /// Incident-tree idle timeout — 15 minutes ("timeliness is not
    /// critical here", §4.2).
    pub incident_timeout: SimDuration,
    /// How often Algorithms 2–3 run.
    pub check_interval: SimDuration,
    /// Use topology links when grouping alerting nodes (disabling leaves
    /// only hierarchical containment — an ablation knob).
    pub use_topology_connectivity: bool,
    /// Incident roots are placed at the deepest location covering at least
    /// this fraction of the component's distinct alert types, so a single
    /// stray alert at a broad location (a noise blip on a border router)
    /// cannot flatten the incident to the network root. `1.0` reduces to
    /// the plain deepest-common-ancestor (an ablation knob).
    pub root_quorum: f64,
    /// Main-tree maintenance strategy (incremental in production; the
    /// rescan oracle is a differential-testing knob). `serde(default)` so
    /// configs written before this knob existed still deserialize.
    #[serde(default)]
    pub maintenance: MaintenanceMode,
}

impl Default for LocatorConfig {
    fn default() -> Self {
        LocatorConfig {
            thresholds: Thresholds::PRODUCTION,
            counting: CountingMode::TypeDistinct,
            node_timeout: SimDuration::from_mins(5),
            incident_timeout: SimDuration::from_mins(15),
            check_interval: SimDuration::from_secs(10),
            use_topology_connectivity: true,
            root_quorum: 0.8,
            maintenance: MaintenanceMode::Incremental,
        }
    }
}

impl LocatorConfig {
    /// Sets the incident-generation thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the counting mode.
    pub fn with_counting(mut self, counting: CountingMode) -> Self {
        self.counting = counting;
        self
    }

    /// Sets the main-tree alert expiry.
    pub fn with_node_timeout(mut self, timeout: SimDuration) -> Self {
        self.node_timeout = timeout;
        self
    }

    /// Sets the incident-tree idle timeout.
    pub fn with_incident_timeout(mut self, timeout: SimDuration) -> Self {
        self.incident_timeout = timeout;
        self
    }

    /// Sets how often Algorithms 2–3 run.
    pub fn with_check_interval(mut self, interval: SimDuration) -> Self {
        self.check_interval = interval;
        self
    }

    /// Enables or disables topology-connectivity grouping.
    pub fn with_topology_connectivity(mut self, enabled: bool) -> Self {
        self.use_topology_connectivity = enabled;
        self
    }

    /// Sets the root-quorum fraction.
    pub fn with_root_quorum(mut self, quorum: f64) -> Self {
        self.root_quorum = quorum;
        self
    }

    /// Sets the main-tree maintenance strategy.
    pub fn with_maintenance(mut self, maintenance: MaintenanceMode) -> Self {
        self.maintenance = maintenance;
        self
    }
}

/// One location's live alerts, keyed by type: a repeat of the same type
/// *updates* the stored alert rather than adding a new one (§4.1's
/// "updates the timestamp of the initial alert").
#[derive(Debug, Clone, Default)]
struct Node {
    alerts: HashMap<AlertType, StructuredAlert>,
}

impl Node {
    fn add(&mut self, alert: &StructuredAlert) {
        self.alerts
            .entry(alert.ty)
            .and_modify(|existing| existing.absorb(alert))
            .or_insert_with(|| alert.clone());
    }
}

#[derive(Debug, Clone)]
struct OpenIncident {
    id: IncidentId,
    root: LocId,
    nodes: HashMap<LocId, Node>,
    update_time: SimTime,
}

impl OpenIncident {
    fn add(&mut self, loc: LocId, alert: &StructuredAlert) {
        self.nodes.entry(loc).or_default().add(alert);
        self.update_time = self.update_time.max_of(alert.last_seen);
    }

    fn into_incident(self, interner: &LocationInterner) -> Incident {
        let mut alerts: Vec<StructuredAlert> = self
            .nodes
            .into_values()
            .flat_map(|n| n.alerts.into_values())
            .collect();
        alerts.sort_by(|a, b| {
            a.first_seen
                .cmp(&b.first_seen)
                .then_with(|| a.location.cmp(&b.location))
                .then_with(|| a.ty.cmp(&b.ty))
        });
        let first_seen = alerts
            .iter()
            .map(|a| a.first_seen)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last_seen = alerts
            .iter()
            .map(|a| a.last_seen)
            .max()
            .unwrap_or(SimTime::ZERO);
        Incident {
            id: self.id,
            root: interner.path(self.root).clone(),
            first_seen,
            last_seen,
            alerts,
        }
    }
}

/// One main-tree node's alerts in a [`LocatorState`], sorted by type so
/// identical states serialize identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeState {
    loc: u32,
    alerts: Vec<StructuredAlert>,
}

/// One open incident tree in a [`LocatorState`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OpenIncidentState {
    id: IncidentId,
    root: u32,
    nodes: Vec<NodeState>,
    update_time: SimTime,
}

/// Serializable mid-flood locator state for warm restarts.
///
/// Captures the arena's live alerts (in `active` order), open and
/// completed incidents, the check grid position and the id counter.
/// Location ids are stored as raw indices: the snapshot also records the
/// paths the locator interned *beyond* its topology base, in id order, so
/// a restored locator built over the same topology re-interns them and
/// reproduces the identical id space. The expiry wheel, region tallies
/// and active index are derived state and are rebuilt on restore; stale
/// wheel entries from pre-snapshot refreshes are deliberately not carried
/// over — the drain skips them by re-checking live timestamps, so their
/// absence changes neither evictions nor incidents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocatorState {
    base_locs: usize,
    extra_paths: Vec<LocationPath>,
    active: Vec<u32>,
    main: Vec<NodeState>,
    open: Vec<OpenIncidentState>,
    completed: Vec<Incident>,
    next_check: SimTime,
    next_id: u32,
    dirty: bool,
}

impl LocatorState {
    /// The number of topology-interned locations this state was captured
    /// over. [`Locator::restore_state`] requires a locator built over the
    /// same base; callers restoring untrusted state check this first.
    pub fn base_locs(&self) -> usize {
        self.base_locs
    }
}

/// A canonical-ordered location pair: adjacency stores each linked pair
/// once, queried from either direction without cloning anything.
fn pair(a: LocId, b: LocId) -> (LocId, LocId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Union-find root lookup with path halving.
fn find(parent: &mut [usize], i: usize) -> usize {
    let mut i = i;
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

/// Groups indices by union-find root, in index order within each group.
fn collect_components(parent: &mut [usize]) -> Vec<Vec<usize>> {
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..parent.len() {
        let r = find(parent, i);
        components.entry(r).or_default().push(i);
    }
    components.into_values().collect()
}

/// Delta-maintained per-region alert tallies. Connectivity never crosses a
/// region, so a component's type set is always a subset of its region's —
/// and [`Thresholds::is_met`] is monotone in the joint (failure, other)
/// counts — which makes these counts a sound gate: a region that cannot
/// meet the thresholds cannot contain a threshold-crossing component.
#[derive(Debug, Clone, Default)]
struct RegionCounts {
    /// How many active (location, type) pairs carry each alert type.
    type_refs: HashMap<AlertType, u32>,
    /// Distinct active types in the region.
    distinct_all: u32,
    /// Distinct active Failure-class types in the region.
    distinct_failure: u32,
    /// Active (location, type) pairs in the region.
    pair_all: u32,
    /// Active Failure-class (location, type) pairs in the region.
    pair_failure: u32,
}

impl RegionCounts {
    fn add(&mut self, ty: AlertType) {
        let failure = ty.class() == AlertClass::Failure;
        self.pair_all += 1;
        self.pair_failure += u32::from(failure);
        let refs = self.type_refs.entry(ty).or_insert(0);
        *refs += 1;
        if *refs == 1 {
            self.distinct_all += 1;
            self.distinct_failure += u32::from(failure);
        }
    }

    fn remove(&mut self, ty: AlertType) {
        let failure = ty.class() == AlertClass::Failure;
        self.pair_all -= 1;
        self.pair_failure -= u32::from(failure);
        let refs = self
            .type_refs
            .get_mut(&ty)
            .expect("removing a counted type");
        *refs -= 1;
        if *refs == 0 {
            self.type_refs.remove(&ty);
            self.distinct_all -= 1;
            self.distinct_failure -= u32::from(failure);
        }
    }

    fn is_empty(&self) -> bool {
        self.pair_all == 0
    }

    /// Upper-bound threshold check for any component inside the region.
    fn could_meet(&self, thresholds: &Thresholds, counting: CountingMode) -> bool {
        match counting {
            CountingMode::TypeDistinct => {
                thresholds.is_met(self.distinct_failure, self.distinct_all)
            }
            CountingMode::TypeAndLocation => thresholds.is_met(self.pair_failure, self.pair_all),
        }
    }
}

/// The locator: feed it time-ordered structured alerts, collect finished
/// incidents.
pub struct Locator {
    cfg: LocatorConfig,
    /// The topology's interner, extended in place with any off-topology
    /// locations the flood mentions (e.g. probe pseudo-devices).
    interner: LocationInterner,
    /// How many ids the interner held at construction (the topology base);
    /// ids at or beyond this are stream growth that snapshots must carry.
    base_locs: usize,
    /// The main alert tree as an arena indexed by `LocId`.
    main: Vec<Node>,
    /// Ids of main-tree nodes that currently hold alerts (no duplicates;
    /// pruned on expiry).
    active: Vec<LocId>,
    open: Vec<OpenIncident>,
    completed: Vec<Incident>,
    next_check: SimTime,
    next_id: u32,
    /// Location-prefix pairs directly connected by a topology link, stored
    /// once in canonical id order.
    adjacency: HashSet<(LocId, LocId)>,
    /// Adjacency as per-location neighbor lists, for the incremental
    /// grouping pass (linear probes instead of pairwise checks).
    adjacency_neighbors: HashMap<LocId, Vec<LocId>>,
    /// Position of each active id in `active` — O(1) membership probes and
    /// swap-removal for the expiry wheel.
    active_index: HashMap<LocId, usize>,
    /// Expiry wheel: (location, type) entries bucketed by the tick-time at
    /// which they expire (`last_seen + node_timeout`). A refreshed alert is
    /// re-bucketed on insert; earlier buckets then hold stale entries that
    /// the drain skips by re-checking the live timestamp.
    wheel: BTreeMap<SimTime, Vec<(LocId, AlertType)>>,
    /// Delta-maintained per-region tallies gating incident generation.
    region_counts: HashMap<LocId, RegionCounts>,
    /// Set when the active alert set changed structurally (new type,
    /// activation, eviction) or an incident finalized — the only events
    /// that can change what Algorithm 2 produces. Unchanged ticks skip
    /// incident generation entirely.
    dirty: bool,
    /// Expiry-wheel evictions, when wired to an observability registry.
    evictions: Option<Counter>,
}

impl std::fmt::Debug for Locator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locator")
            .field("main_nodes", &self.active.len())
            .field("open_incidents", &self.open.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl Locator {
    /// Builds a locator over a topology (used for link-connectivity
    /// grouping).
    pub fn new(topo: &Arc<Topology>, cfg: LocatorConfig) -> Self {
        let interner = (**topo.interner()).clone();
        let mut adjacency = HashSet::new();
        let mut adjacency_neighbors: HashMap<LocId, Vec<LocId>> = HashMap::new();
        if cfg.use_topology_connectivity {
            for link in topo.links() {
                let (Some(da), Some(db)) = (link.a.device(), link.b.device()) else {
                    continue;
                };
                let la = topo.device_loc(da);
                let lb = topo.device_loc(db);
                // Adjacency grouping is scoped within a region: failures
                // are reported per region (the paper's five-region DDoS
                // produced five incidents, §5.1), so inter-region WAN
                // links do not merge incident scopes.
                if interner.ancestor_at_depth(la, 1) != interner.ancestor_at_depth(lb, 1) {
                    continue;
                }
                for pa in interner.ancestors(la) {
                    for pb in interner.ancestors(lb) {
                        if pa != pb && adjacency.insert(pair(pa, pb)) {
                            adjacency_neighbors.entry(pa).or_default().push(pb);
                            adjacency_neighbors.entry(pb).or_default().push(pa);
                        }
                    }
                }
            }
        }
        let main = vec![Node::default(); interner.len()];
        let base_locs = interner.len();
        Locator {
            cfg,
            interner,
            base_locs,
            main,
            active: Vec::new(),
            open: Vec::new(),
            completed: Vec::new(),
            next_check: SimTime::ZERO,
            next_id: 0,
            adjacency,
            adjacency_neighbors,
            active_index: HashMap::new(),
            wheel: BTreeMap::new(),
            region_counts: HashMap::new(),
            dirty: false,
            evictions: None,
        }
    }

    /// Wires the locator's counters (expiry-wheel evictions) into an
    /// observability registry. Eviction counts are content-determined and
    /// tick-aligned, so they are identical at any shard count.
    pub fn with_observability(mut self, obs: &Observability) -> Self {
        self.evictions = Some(obs.registry().counter(
            "skynet_wheel_evictions_total",
            "Main-tree alerts expired via the locator's expiry wheel",
        ));
        self
    }

    /// Algorithm 1: routes an alert into any covering incident tree, and
    /// always into the main tree. Advances the clock to the alert's time
    /// *before* inserting, so pending expiry checks never see alerts from
    /// their future. The alert's location is resolved to a [`LocId`] here,
    /// once; everything downstream runs on ids.
    ///
    /// # Panics
    /// Panics on an alert located at the network root — the ingestion guard
    /// rejects those as off-topology before they can reach the locator.
    pub fn insert(&mut self, alert: &StructuredAlert) {
        self.advance(alert.last_seen);
        let loc = self.interner.intern(&alert.location);
        for incident in &mut self.open {
            if self.interner.contains(incident.root, loc) {
                incident.add(loc, alert);
                break;
            }
        }
        if self.main.len() < self.interner.len() {
            self.main.resize_with(self.interner.len(), Node::default);
        }
        let node = &mut self.main[loc.index()];
        let was_empty = node.alerts.is_empty();
        let new_type = !node.alerts.contains_key(&alert.ty);
        node.add(alert);
        // The alert's effective timestamp after absorption drives its
        // expiry bucket.
        let last_seen = node.alerts[&alert.ty].last_seen;
        if was_empty {
            self.active.push(loc);
        }
        if self.cfg.maintenance == MaintenanceMode::Incremental {
            if was_empty {
                self.active_index.insert(loc, self.active.len() - 1);
            }
            if new_type {
                let region = self.interner.region_of(loc);
                self.region_counts.entry(region).or_default().add(alert.ty);
                // A refreshed (absorbed) alert cannot change what
                // Algorithm 2 produces; a new (location, type) pair can.
                self.dirty = true;
            }
            self.wheel
                .entry(last_seen + self.cfg.node_timeout)
                .or_default()
                .push((loc, alert.ty));
        }
    }

    /// Runs any due Algorithm 2/3 checks up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        // A zero interval (from a hand-written config) must not loop
        // forever; clamp to the finest representable cadence.
        let step = self.cfg.check_interval.max(SimDuration::from_millis(1));
        while self.next_check <= now {
            let at = self.next_check;
            self.check_trees(at);
            self.generate_trees(at);
            self.next_check += step;
        }
    }

    /// Algorithm 3: expire main-tree alerts and finalize idle incidents.
    fn check_trees(&mut self, now: SimTime) {
        match self.cfg.maintenance {
            MaintenanceMode::Incremental => self.expire_wheel(now),
            MaintenanceMode::Rescan => self.expire_rescan(now),
        }

        let idle = self.cfg.incident_timeout;
        let interner = &self.interner;
        let completed = &mut self.completed;
        let mut finalized = false;
        let mut still_open = Vec::new();
        for incident in self.open.drain(..) {
            if now.since(incident.update_time) > idle {
                completed.push(incident.into_incident(interner));
                finalized = true;
            } else {
                still_open.push(incident);
            }
        }
        self.open = still_open;
        if finalized {
            // A finalized incident no longer covers its root, so a later
            // carve at (or under) that root becomes possible again.
            self.dirty = true;
        }
    }

    /// Rescan-mode expiry: full `retain` over every active node's alerts.
    fn expire_rescan(&mut self, now: SimTime) {
        let timeout = self.cfg.node_timeout;
        let main = &mut self.main;
        self.active.retain(|&id| {
            let node = &mut main[id.index()];
            node.alerts.retain(|_, a| now.since(a.last_seen) <= timeout);
            !node.alerts.is_empty()
        });
    }

    /// Incremental-mode expiry: drain wheel buckets strictly before `now`.
    /// An alert is alive iff `now.since(last_seen) <= timeout`, i.e. its
    /// bucket `last_seen + timeout` has not passed — so the exact-timeout
    /// boundary is kept, matching the rescan semantics. Entries whose live
    /// timestamp was refreshed since bucketing are skipped here; their
    /// fresher bucket is still pending. O(evictions), not O(active).
    fn expire_wheel(&mut self, now: SimTime) {
        let timeout = self.cfg.node_timeout;
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() >= now {
                break;
            }
            for (loc, ty) in entry.remove() {
                let node = &mut self.main[loc.index()];
                let Some(alert) = node.alerts.get(&ty) else {
                    continue; // already evicted (stale duplicate entry)
                };
                if now.since(alert.last_seen) <= timeout {
                    continue; // refreshed; a later bucket holds it
                }
                node.alerts.remove(&ty);
                let region = self.interner.region_of(loc);
                if let Some(counts) = self.region_counts.get_mut(&region) {
                    counts.remove(ty);
                    if counts.is_empty() {
                        self.region_counts.remove(&region);
                    }
                }
                if let Some(counter) = &self.evictions {
                    counter.inc();
                }
                self.dirty = true;
                if self.main[loc.index()].alerts.is_empty() {
                    let idx = self
                        .active_index
                        .remove(&loc)
                        .expect("active node is indexed");
                    self.active.swap_remove(idx);
                    if let Some(&moved) = self.active.get(idx) {
                        self.active_index.insert(moved, idx);
                    }
                }
            }
        }
    }

    /// True when two alerting locations belong to the same failure scope:
    /// one contains the other, they are close siblings (devices of one
    /// cluster, clusters of one site, sites of one logic site — they share
    /// local fabric), or the topology has a direct link between them.
    /// Siblings above the site level (cities, regions) are *not*
    /// auto-connected, and neither are cross-branch locations without a
    /// link — Fig. 5c's device-n isolation.
    fn connected(&self, a: LocId, b: LocId) -> bool {
        self.interner.contains(a, b)
            || self.interner.contains(b, a)
            || (self.interner.depth(a) >= LocationLevel::Site.depth()
                && self.interner.parent(a) == self.interner.parent(b))
            || self.adjacency.contains(&pair(a, b))
    }

    /// Counts `(failure_types, all_types)` for a set of nodes under the
    /// configured counting mode.
    fn count_component(&self, locations: &[LocId]) -> (u32, u32) {
        match self.cfg.counting {
            CountingMode::TypeDistinct => {
                let mut types: HashSet<AlertType> = HashSet::new();
                for &loc in locations {
                    types.extend(self.main[loc.index()].alerts.keys().copied());
                }
                let failure = types
                    .iter()
                    .filter(|t| t.class() == AlertClass::Failure)
                    .count() as u32;
                (failure, types.len() as u32)
            }
            CountingMode::TypeAndLocation => {
                let mut failure = 0u32;
                let mut all = 0u32;
                for &loc in locations {
                    let node = &self.main[loc.index()];
                    all += node.alerts.len() as u32;
                    failure += node
                        .alerts
                        .keys()
                        .filter(|t| t.class() == AlertClass::Failure)
                        .count() as u32;
                }
                (failure, all)
            }
        }
    }

    /// Algorithm 2: group alerting nodes into connected components and turn
    /// threshold-crossing components into incident trees.
    fn generate_trees(&mut self, _now: SimTime) {
        match self.cfg.maintenance {
            MaintenanceMode::Incremental => {
                // Nothing structural changed since the last tick: the
                // grouping, counts and quorum roots are all unchanged, and
                // every carveable incident was already carved — a rerun
                // would be a pure no-op.
                if !self.dirty {
                    return;
                }
                self.dirty = false;
                self.generate_trees_incremental();
            }
            MaintenanceMode::Rescan => self.generate_trees_rescan(),
        }
    }

    /// Rescan-mode grouping: the original O(n²) pairwise union-find.
    fn generate_trees_rescan(&mut self) {
        let locations: Vec<LocId> = self.active.clone();
        if locations.is_empty() {
            return;
        }

        // Union-find over alerting nodes.
        let n = locations.len();
        let mut parent: Vec<usize> = (0..n).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.connected(locations[i], locations[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let component_list = collect_components(&mut parent);
        self.carve_components(&locations, component_list);
    }

    /// Incremental-mode grouping: regions whose delta-maintained counts
    /// cannot meet the thresholds are skipped outright (components never
    /// cross regions), and the surviving nodes are grouped with linear
    /// probes — active strict ancestors for containment edges, a
    /// group-by-parent pass for deep-sibling edges, and per-location
    /// neighbor lists for topology adjacency. The edge set is exactly
    /// [`Locator::connected`]'s, so the partition is identical.
    fn generate_trees_incremental(&mut self) {
        let mut locations: Vec<LocId> = Vec::with_capacity(self.active.len());
        for &loc in &self.active {
            let region = self.interner.region_of(loc);
            if self
                .region_counts
                .get(&region)
                .is_some_and(|c| c.could_meet(&self.cfg.thresholds, self.cfg.counting))
            {
                locations.push(loc);
            }
        }
        if locations.is_empty() {
            return;
        }

        let n = locations.len();
        let index: HashMap<LocId, usize> =
            locations.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut parent: Vec<usize> = (0..n).collect();
        let mut union = |parent: &mut Vec<usize>, i: usize, j: usize| {
            let (ri, rj) = (find(parent, i), find(parent, j));
            if ri != rj {
                parent[ri] = rj;
            }
        };
        // Containment: a distinct active pair has a containment edge iff
        // one is a strict ancestor of the other.
        for i in 0..n {
            for anc in self.interner.strict_ancestors(locations[i]) {
                if let Some(&j) = index.get(&anc) {
                    union(&mut parent, i, j);
                }
            }
        }
        // Deep siblings (devices of a cluster, clusters of a site, sites of
        // a logic site): equal parents imply equal depth, so grouping the
        // deep nodes by parent yields exactly the pairwise sibling edges.
        let mut by_parent: HashMap<LocId, usize> = HashMap::new();
        for i in 0..n {
            if self.interner.depth(locations[i]) >= LocationLevel::Site.depth() {
                if let Some(p) = self.interner.parent(locations[i]) {
                    match by_parent.entry(p) {
                        std::collections::hash_map::Entry::Occupied(rep) => {
                            let rep = *rep.get();
                            union(&mut parent, i, rep);
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(i);
                        }
                    }
                }
            }
        }
        // Topology adjacency, via the precomputed neighbor lists.
        for i in 0..n {
            if let Some(neighbors) = self.adjacency_neighbors.get(&locations[i]) {
                for nb in neighbors {
                    if let Some(&j) = index.get(nb) {
                        union(&mut parent, i, j);
                    }
                }
            }
        }
        let component_list = collect_components(&mut parent);
        self.carve_components(&locations, component_list);
    }

    /// Shared carve loop: sorts components deterministically and cuts
    /// threshold-crossing incident trees out of each.
    fn carve_components(&mut self, locations: &[LocId], mut component_list: Vec<Vec<usize>>) {
        // Deterministic order: by each component's first location in path
        // order (id order is interning order, not path order).
        let interner = &self.interner;
        let min_loc = |c: &Vec<usize>| -> LocId {
            c.iter()
                .map(|&i| locations[i])
                .min_by(|&x, &y| interner.cmp(x, y))
                .expect("components are non-empty")
        };
        component_list.sort_by(|a, b| interner.cmp(min_loc(a), min_loc(b)));

        for component in component_list {
            let mut remaining: Vec<LocId> = component.iter().map(|&i| locations[i]).collect();
            // A component may host several incidents once quorum rooting
            // excludes outliers (e.g. two attacked sites bridged by a
            // shared parent): keep carving incidents out of the remainder
            // until the leftovers stop meeting the thresholds.
            loop {
                let (failure, all) = self.count_component(&remaining);
                if remaining.is_empty() || !self.cfg.thresholds.is_met(failure, all) {
                    break;
                }
                let root = self.quorum_root(&remaining);
                // Only nodes under the root join this incident; quorum
                // outliers stay for the next carve (or expire) — Fig. 5c's
                // device-n separation.
                let locs: Vec<LocId> = remaining
                    .iter()
                    .copied()
                    .filter(|&l| self.interner.contains(root, l))
                    .collect();
                let before = remaining.len();
                let interner = &self.interner;
                remaining.retain(|&l| !interner.contains(root, l));
                if remaining.len() == before {
                    break; // no progress; defensive
                }
                // Skip roots already covered by an open incident (their
                // alerts were routed there by Algorithm 1).
                if self
                    .open
                    .iter()
                    .any(|i| self.interner.contains(i.root, root))
                {
                    continue;
                }
                self.create_incident(root, &locs);
            }
        }
    }

    /// Creates one incident tree rooted at `root` over the given alerting
    /// locations, absorbing any open incidents strictly inside the root.
    fn create_incident(&mut self, root: LocId, locs: &[LocId]) {
        // Growth upward: absorb open incidents strictly inside us.
        let mut nodes: HashMap<LocId, Node> = HashMap::new();
        let mut update_time = SimTime::ZERO;
        let mut absorbed_ids = Vec::new();
        let interner = &self.interner;
        self.open.retain_mut(|i| {
            if interner.contains(root, i.root) {
                for (loc, node) in i.nodes.drain() {
                    let target = nodes.entry(loc).or_default();
                    for alert in node.alerts.values() {
                        target.add(alert);
                    }
                }
                update_time = update_time.max_of(i.update_time);
                absorbed_ids.push(i.id);
                false
            } else {
                true
            }
        });
        // Replicate the component's subtree from the main tree
        // ("the subtree beneath the node is replicated").
        for &loc in locs {
            let node = &self.main[loc.index()];
            let target = nodes.entry(loc).or_default();
            for alert in node.alerts.values() {
                target.add(alert);
                update_time = update_time.max_of(alert.last_seen);
            }
        }
        let id = absorbed_ids.into_iter().min().unwrap_or_else(|| {
            let id = IncidentId(self.next_id);
            self.next_id += 1;
            id
        });
        self.open.push(OpenIncident {
            id,
            root,
            nodes,
            update_time,
        });
    }

    /// The deepest prefix covering at least `root_quorum` of the
    /// component's distinct alert types while still meeting the incident
    /// thresholds; the component's deepest common ancestor always
    /// qualifies, so this is total.
    fn quorum_root(&self, locs: &[LocId]) -> LocId {
        match self.cfg.maintenance {
            MaintenanceMode::Incremental => self.quorum_root_rollup(locs),
            MaintenanceMode::Rescan => self.quorum_root_rescan(locs),
        }
    }

    /// Incremental quorum rooting: one pass over the members rolls their
    /// type sets and pair counts up the O(1) ancestor arrays, so each
    /// candidate is then judged by a map lookup instead of a member
    /// re-scan. Candidate set, ordering and verdicts match
    /// [`Locator::quorum_root_rescan`] exactly.
    fn quorum_root_rollup(&self, locs: &[LocId]) -> LocId {
        let (&first, rest) = locs.split_first().expect("quorum_root needs members");
        let mut dca = first;
        for &l in rest {
            // Connectivity is region-scoped, so every component shares a
            // region and the fold can never reach the network root.
            dca = self
                .interner
                .common_ancestor(dca, l)
                .expect("components never span regions");
        }

        #[derive(Default)]
        struct Rollup {
            types: HashSet<AlertType>,
            pair_all: u32,
            pair_failure: u32,
        }
        let mut rollups: HashMap<LocId, Rollup> = HashMap::new();
        let mut total: HashSet<AlertType> = HashSet::new();
        for &l in locs {
            let alerts = &self.main[l.index()].alerts;
            total.extend(alerts.keys().copied());
            let failures = alerts
                .keys()
                .filter(|t| t.class() == AlertClass::Failure)
                .count() as u32;
            // A member contributes to every candidate that contains it —
            // exactly its ancestors (itself included) inside the dca.
            for &anc in self.interner.ancestor_slice(l) {
                if !self.interner.contains(dca, anc) {
                    continue;
                }
                let roll = rollups.entry(anc).or_default();
                roll.types.extend(alerts.keys().copied());
                roll.pair_all += alerts.len() as u32;
                roll.pair_failure += failures;
            }
        }
        let needed = ((total.len() as f64) * self.cfg.root_quorum).ceil() as usize;

        let mut candidates: Vec<LocId> = rollups.keys().copied().collect();
        candidates.sort_by(|&a, &b| {
            self.interner
                .depth(b)
                .cmp(&self.interner.depth(a))
                .then_with(|| self.interner.cmp(a, b))
        });

        for candidate in candidates {
            let roll = &rollups[&candidate];
            if roll.types.len() < needed {
                continue;
            }
            let (failure, all) = match self.cfg.counting {
                CountingMode::TypeDistinct => {
                    let failure = roll
                        .types
                        .iter()
                        .filter(|t| t.class() == AlertClass::Failure)
                        .count() as u32;
                    (failure, roll.types.len() as u32)
                }
                CountingMode::TypeAndLocation => (roll.pair_failure, roll.pair_all),
            };
            if self.cfg.thresholds.is_met(failure, all) {
                return candidate;
            }
        }
        dca
    }

    /// Rescan quorum rooting: per-candidate member scans (the oracle).
    fn quorum_root_rescan(&self, locs: &[LocId]) -> LocId {
        let (&first, rest) = locs.split_first().expect("quorum_root needs members");
        let mut dca = first;
        for &l in rest {
            // Connectivity is region-scoped, so every component shares a
            // region and the fold can never reach the network root.
            dca = self
                .interner
                .common_ancestor(dca, l)
                .expect("components never span regions");
        }
        let type_sets: Vec<(LocId, HashSet<AlertType>)> = locs
            .iter()
            .map(|&l| {
                let types = self.main[l.index()].alerts.keys().copied().collect();
                (l, types)
            })
            .collect();
        let total: HashSet<AlertType> = type_sets
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        let needed = ((total.len() as f64) * self.cfg.root_quorum).ceil() as usize;

        let mut candidates: Vec<LocId> = locs
            .iter()
            .flat_map(|&l| self.interner.ancestors(l))
            .filter(|&c| self.interner.contains(dca, c))
            .collect();
        candidates.sort_by(|&a, &b| {
            self.interner
                .depth(b)
                .cmp(&self.interner.depth(a))
                .then_with(|| self.interner.cmp(a, b))
        });
        candidates.dedup();

        for candidate in candidates {
            let covered: HashSet<AlertType> = type_sets
                .iter()
                .filter(|&&(l, _)| self.interner.contains(candidate, l))
                .flat_map(|(_, t)| t.iter().copied())
                .collect();
            if covered.len() < needed {
                continue;
            }
            let covered_locs: Vec<LocId> = locs
                .iter()
                .copied()
                .filter(|&l| self.interner.contains(candidate, l))
                .collect();
            let (failure, all) = self.count_component(&covered_locs);
            if self.cfg.thresholds.is_met(failure, all) {
                return candidate;
            }
        }
        dca
    }

    /// Flushes everything: finalizes all open incidents (used at end of a
    /// batch run).
    pub fn finish(&mut self) {
        let interner = &self.interner;
        let completed = &mut self.completed;
        for incident in self.open.drain(..) {
            completed.push(incident.into_incident(interner));
        }
        for &id in &self.active {
            self.main[id.index()].alerts.clear();
        }
        self.active.clear();
        self.active_index.clear();
        self.wheel.clear();
        self.region_counts.clear();
        self.dirty = false;
    }

    /// Takes the finished incidents accumulated so far.
    pub fn take_completed(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.completed)
    }

    /// Captures the mid-flood state for a warm restart (see
    /// [`LocatorState`] for exactly what is carried vs. rebuilt).
    pub fn snapshot_state(&self) -> LocatorState {
        let node_state = |loc: LocId, node: &Node| {
            let mut alerts: Vec<StructuredAlert> = node.alerts.values().cloned().collect();
            alerts.sort_by(|a, b| a.ty.cmp(&b.ty));
            NodeState {
                loc: loc.index() as u32,
                alerts,
            }
        };
        LocatorState {
            base_locs: self.base_locs,
            extra_paths: (self.base_locs..self.interner.len())
                .map(|i| self.interner.path(LocId::from_index(i)).clone())
                .collect(),
            active: self.active.iter().map(|l| l.index() as u32).collect(),
            main: self
                .active
                .iter()
                .map(|&l| node_state(l, &self.main[l.index()]))
                .collect(),
            open: self
                .open
                .iter()
                .map(|i| {
                    let mut nodes: Vec<NodeState> =
                        i.nodes.iter().map(|(&l, n)| node_state(l, n)).collect();
                    nodes.sort_by_key(|n| n.loc);
                    OpenIncidentState {
                        id: i.id,
                        root: i.root.index() as u32,
                        nodes,
                        update_time: i.update_time,
                    }
                })
                .collect(),
            completed: self.completed.clone(),
            next_check: self.next_check,
            next_id: self.next_id,
            dirty: self.dirty,
        }
    }

    /// Restores the state captured by [`Locator::snapshot_state`] into a
    /// locator freshly built over the *same* topology and config. The
    /// active index, expiry wheel and region tallies are rebuilt from the
    /// restored alerts; subsequent inserts, ticks and carves behave
    /// exactly as if the process had never stopped.
    ///
    /// # Panics
    /// Panics if this locator's topology base differs from the one the
    /// snapshot was taken over.
    pub fn restore_state(&mut self, state: LocatorState) {
        assert_eq!(
            state.base_locs, self.base_locs,
            "locator restore requires the same topology"
        );
        for path in &state.extra_paths {
            self.interner.intern(path);
        }
        if self.main.len() < self.interner.len() {
            self.main.resize_with(self.interner.len(), Node::default);
        }
        let as_node = |ns: &NodeState| Node {
            alerts: ns.alerts.iter().map(|a| (a.ty, a.clone())).collect(),
        };
        self.active = state
            .active
            .iter()
            .map(|&i| LocId::from_index(i as usize))
            .collect();
        for node in self.main.iter_mut() {
            node.alerts.clear();
        }
        for ns in &state.main {
            self.main[ns.loc as usize] = as_node(ns);
        }
        self.open = state
            .open
            .iter()
            .map(|o| OpenIncident {
                id: o.id,
                root: LocId::from_index(o.root as usize),
                nodes: o
                    .nodes
                    .iter()
                    .map(|ns| (LocId::from_index(ns.loc as usize), as_node(ns)))
                    .collect(),
                update_time: o.update_time,
            })
            .collect();
        self.completed = state.completed;
        self.next_check = state.next_check;
        self.next_id = state.next_id;
        self.dirty = state.dirty;
        self.active_index.clear();
        self.wheel.clear();
        self.region_counts.clear();
        if self.cfg.maintenance == MaintenanceMode::Incremental {
            for (idx, &loc) in self.active.iter().enumerate() {
                self.active_index.insert(loc, idx);
                let region = self.interner.region_of(loc);
                for (&ty, alert) in &self.main[loc.index()].alerts {
                    self.region_counts.entry(region).or_default().add(ty);
                    self.wheel
                        .entry(alert.last_seen + self.cfg.node_timeout)
                        .or_default()
                        .push((loc, ty));
                }
            }
        }
    }

    /// Number of currently open incident trees.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Roots of the currently open incident trees.
    pub fn open_roots(&self) -> Vec<LocationPath> {
        self.open
            .iter()
            .map(|i| self.interner.path(i.root).clone())
            .collect()
    }

    /// Convenience: run a whole time-ordered batch through Algorithms 1–3
    /// and return every incident.
    pub fn process_batch(&mut self, alerts: &[StructuredAlert], horizon: SimTime) -> Vec<Incident> {
        for alert in alerts {
            self.insert(alert);
        }
        self.advance(horizon);
        self.finish();
        let mut incidents = self.take_completed();
        incidents.sort_by_key(|i| (i.first_seen, i.id));
        incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{AlertKind, DataSource, RawAlert};
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn alert(
        source: DataSource,
        kind: AlertKind,
        secs: u64,
        location: &LocationPath,
    ) -> StructuredAlert {
        let raw = RawAlert::known(source, SimTime::from_secs(secs), location.clone(), kind);
        StructuredAlert::from_raw(&raw, kind)
    }

    fn site(t: &Topology) -> LocationPath {
        t.clusters()[0].parent()
    }

    #[test]
    fn two_failure_types_make_an_incident() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(40));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(loc.open_roots()[0], s);
    }

    #[test]
    fn one_failure_type_repeated_does_not_trigger() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        for i in 0..20 {
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, i, &s));
        }
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 0, "same type counts once");
    }

    #[test]
    fn type_and_location_mode_counts_locations_separately() {
        let t = topo();
        let cfg = LocatorConfig {
            counting: CountingMode::TypeAndLocation,
            ..LocatorConfig::default()
        };
        let mut loc = Locator::new(&t, cfg);
        // A buggy probe raises the same single kind on five sibling devices
        // of one cluster (the §4.2 false-alarm anecdote).
        let cluster = t.clusters()[0].clone();
        let devices: Vec<LocationPath> = t
            .agg_group(&cluster)
            .iter()
            .map(|&d| t.device(d).location.clone())
            .chain([cluster.child("probe-1"), cluster.child("probe-2")])
            .take(5)
            .collect();
        assert_eq!(devices.len(), 5);
        for (i, d) in devices.iter().enumerate() {
            loc.insert(&alert(DataSource::Snmp, AlertKind::HighCpu, i as u64, d));
        }
        loc.advance(SimTime::from_secs(60));
        // Five (type, location) pairs cross the any-5 threshold even though
        // it is a single type — the false-positive mode of Fig. 9.
        assert!(loc.open_count() >= 1);

        let mut strict = Locator::new(&t, LocatorConfig::default());
        for (i, d) in devices.iter().enumerate() {
            strict.insert(&alert(DataSource::Snmp, AlertKind::HighCpu, i as u64, d));
        }
        strict.advance(SimTime::from_secs(60));
        assert_eq!(strict.open_count(), 0, "type-distinct counting resists");
    }

    #[test]
    fn disconnected_groups_become_separate_incidents() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        // Group 1 in Region-0, group 2 in Region-1: never connected.
        let s1 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-0")
            .unwrap()
            .clone();
        let s2 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-1")
            .unwrap()
            .clone();
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Ping, *kind, i as u64 * 5, &s1));
            loc.insert(&alert(DataSource::Ping, *kind, i as u64 * 5 + 1, &s2));
        }
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 2, "roots: {:?}", loc.open_roots());
        let roots = loc.open_roots();
        assert!(roots.contains(&s1));
        assert!(roots.contains(&s2));
    }

    #[test]
    fn incident_root_is_deepest_common_ancestor() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        // Alerts at two clusters of the same site plus the site itself.
        let c1 = t.clusters()[0].clone();
        let c2 = t.clusters()[1].clone();
        assert_eq!(c1.parent(), c2.parent(), "test expects same-site clusters");
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 1, &c1));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 2, &c2));
        loc.insert(&alert(
            DataSource::Snmp,
            AlertKind::LinkDown,
            3,
            &c1.parent(),
        ));
        loc.advance(SimTime::from_secs(30));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(loc.open_roots()[0], c1.parent());
    }

    #[test]
    fn incidents_grow_upward_absorbing_contained_ones() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let c1 = t.clusters()[0].clone();
        // First a cluster-level incident.
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 1, &c1));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 2, &c1));
        loc.advance(SimTime::from_secs(20));
        assert_eq!(loc.open_roots(), vec![c1.clone()]);
        // Then the failure spreads: a sibling cluster and the site's
        // aggregation layer start alerting, bridging the component, and the
        // incident re-roots at the site.
        let c2 = t.clusters()[1].clone();
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketBitFlip, 30, &c2));
        loc.insert(&alert(
            DataSource::Snmp,
            AlertKind::LinkDown,
            31,
            &c1.parent(),
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1, "roots: {:?}", loc.open_roots());
        assert_eq!(loc.open_roots()[0], c1.parent());
    }

    #[test]
    fn expired_alerts_leave_the_main_tree() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 0, &s));
        // 6 minutes later (past the 5-minute node timeout) a second failure
        // type arrives; the first has expired, so no incident forms.
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 360, &s));
        loc.advance(SimTime::from_secs(400));
        assert_eq!(loc.open_count(), 0);
    }

    #[test]
    fn idle_incidents_finalize_after_timeout() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        // 15 idle minutes later the incident closes.
        loc.advance(SimTime::from_mins(17));
        assert_eq!(loc.open_count(), 0);
        let done = loc.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, s);
        assert_eq!(done[0].alerts.len(), 2);
    }

    #[test]
    fn new_alerts_keep_incidents_alive_and_inside() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s));
        loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &s));
        loc.advance(SimTime::from_secs(60));
        // Feed one alert every 10 minutes — under the 15-minute timeout.
        for k in 1..5u64 {
            loc.insert(&alert(
                DataSource::Snmp,
                AlertKind::TrafficCongestion,
                60 + k * 600,
                &s,
            ));
        }
        assert_eq!(loc.open_count(), 1, "kept alive by fresh alerts");
        loc.finish();
        let done = loc.take_completed();
        assert_eq!(done.len(), 1);
        // All alerts routed into the single incident.
        assert!(done[0].alerts.len() >= 3);
    }

    #[test]
    fn quorum_rooting_excludes_single_stray_broad_alerts() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let cluster = t.clusters()[0].clone();
        // A rich cluster-scoped incident...
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
            AlertKind::TrafficCongestion,
            AlertKind::HardwareError,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Snmp, *kind, i as u64, &cluster));
        }
        // ...plus one stray abnormal alert at the whole region.
        let region = cluster.truncate_at(skynet_model::LocationLevel::Region);
        loc.insert(&alert(
            DataSource::Ping,
            AlertKind::LatencyJitter,
            6,
            &region,
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(
            loc.open_roots()[0],
            cluster,
            "one stray broad alert must not flatten the root to the region"
        );
    }

    #[test]
    fn dca_rooting_ablation_widens_the_root() {
        let t = topo();
        let cfg = LocatorConfig {
            root_quorum: 1.0,
            ..LocatorConfig::default()
        };
        let mut loc = Locator::new(&t, cfg);
        let cluster = t.clusters()[0].clone();
        for (i, kind) in [
            AlertKind::PacketLossIcmp,
            AlertKind::PacketLossTcp,
            AlertKind::LinkDown,
            AlertKind::TrafficCongestion,
            AlertKind::HardwareError,
        ]
        .iter()
        .enumerate()
        {
            loc.insert(&alert(DataSource::Snmp, *kind, i as u64, &cluster));
        }
        let region = cluster.truncate_at(skynet_model::LocationLevel::Region);
        loc.insert(&alert(
            DataSource::Ping,
            AlertKind::LatencyJitter,
            6,
            &region,
        ));
        loc.advance(SimTime::from_secs(60));
        assert_eq!(loc.open_count(), 1);
        assert_eq!(
            loc.open_roots()[0],
            region,
            "quorum 1.0 reduces to plain deepest-common-ancestor rooting"
        );
    }

    #[test]
    fn process_batch_runs_end_to_end() {
        let t = topo();
        let mut loc = Locator::new(&t, LocatorConfig::default());
        let s = site(&t);
        let alerts = vec![
            alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &s),
            alert(DataSource::Ping, AlertKind::PacketLossTcp, 12, &s),
            alert(DataSource::Syslog, AlertKind::HardwareError, 15, &s),
        ];
        let incidents = loc.process_batch(&alerts, SimTime::from_mins(30));
        assert_eq!(incidents.len(), 1);
        assert!(incidents[0].has_class(AlertClass::Failure));
        assert!(incidents[0].has_class(AlertClass::RootCause));
    }

    fn both_modes() -> [LocatorConfig; 2] {
        [
            LocatorConfig::default(),
            LocatorConfig::default().with_maintenance(MaintenanceMode::Rescan),
        ]
    }

    #[test]
    fn alert_aged_exactly_timeout_survives_the_tick() {
        let t = topo();
        for cfg in both_modes() {
            let mode = cfg.maintenance;
            let mut loc = Locator::new(&t, cfg);
            let s = site(&t);
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 0, &s));
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 299, &s));
            // The 10s check grid lands a tick at exactly t = 300s, where
            // the first alert's age equals the 5-minute timeout — the
            // boundary is inclusive, so the pair still forms an incident.
            loc.advance(SimTime::from_secs(300));
            assert_eq!(loc.open_count(), 1, "mode {mode:?}");
        }
    }

    #[test]
    fn alert_one_tick_past_timeout_expires() {
        let t = topo();
        for cfg in both_modes() {
            let mode = cfg.maintenance;
            let mut loc = Locator::new(&t, cfg);
            let s = site(&t);
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 0, &s));
            loc.advance(SimTime::from_secs(305));
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 305, &s));
            // The next tick (t = 310s) evicts the first alert — age 310s,
            // one grid step past the timeout — before generation runs, so
            // the lone TCP alert cannot form an incident.
            loc.advance(SimTime::from_secs(310));
            assert_eq!(loc.open_count(), 0, "mode {mode:?}");
        }
    }

    #[test]
    fn refreshed_alerts_survive_their_stale_wheel_entry() {
        let t = topo();
        for cfg in both_modes() {
            let mode = cfg.maintenance;
            let mut loc = Locator::new(&t, cfg);
            let s = site(&t);
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 0, &s));
            // Same type again at t = 200s: absorbed, refreshing last_seen.
            // The wheel still holds the stale t = 300s bucket entry; the
            // drain must skip it instead of evicting the refreshed alert.
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 200, &s));
            loc.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 400, &s));
            loc.advance(SimTime::from_secs(450));
            assert_eq!(loc.open_count(), 1, "mode {mode:?}");
        }
    }

    #[test]
    fn locator_state_round_trips_mid_flood() {
        let t = topo();
        for cfg in both_modes() {
            let mode = cfg.maintenance;
            let mut live = Locator::new(&t, cfg.clone());
            let c1 = t.clusters()[0].clone();
            let c2 = t.clusters()[1].clone();
            // Off-topology probe device: grows the interner mid-stream, so
            // the snapshot must carry the extra path.
            let probe = c1.child("probe-x");
            live.insert(&alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, &c1));
            live.insert(&alert(DataSource::Ping, AlertKind::PacketLossTcp, 20, &c1));
            live.insert(&alert(DataSource::Snmp, AlertKind::HighCpu, 25, &probe));
            live.advance(SimTime::from_secs(60));
            assert_eq!(live.open_count(), 1, "mode {mode:?}");

            let state = live.snapshot_state();
            let json = serde_json::to_string(&state).unwrap();
            let mut restored = Locator::new(&t, cfg);
            restored.restore_state(serde_json::from_str(&json).unwrap());
            assert_eq!(restored.open_count(), live.open_count(), "mode {mode:?}");
            assert_eq!(restored.open_roots(), live.open_roots(), "mode {mode:?}");

            // Identical tail: a second incident in a sibling cluster, then
            // idle time past both timeouts so everything finalizes.
            for loc in [&mut live, &mut restored] {
                loc.insert(&alert(DataSource::Ping, AlertKind::PacketBitFlip, 70, &c2));
                loc.insert(&alert(DataSource::Snmp, AlertKind::LinkDown, 72, &c2));
                loc.advance(SimTime::from_mins(40));
                loc.finish();
            }
            let live_done = live.take_completed();
            let restored_done = restored.take_completed();
            assert_eq!(
                serde_json::to_string(&live_done).unwrap(),
                serde_json::to_string(&restored_done).unwrap(),
                "mode {mode:?}"
            );
            assert!(!live_done.is_empty(), "mode {mode:?}");
        }
    }

    #[test]
    fn incidents_finalizing_in_one_tick_complete_in_creation_order() {
        let t = topo();
        let c1 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-0")
            .unwrap()
            .clone();
        let c2 = t
            .clusters()
            .iter()
            .find(|c| c.segments()[0].as_ref() == "Region-1")
            .unwrap()
            .clone();
        for cfg in both_modes() {
            let mode = cfg.maintenance;
            let mut loc = Locator::new(&t, cfg);
            for (i, kind) in [AlertKind::PacketLossIcmp, AlertKind::PacketLossTcp]
                .iter()
                .enumerate()
            {
                loc.insert(&alert(DataSource::Ping, *kind, 10 + i as u64, &c1));
                loc.insert(&alert(DataSource::Ping, *kind, 12 + i as u64, &c2));
            }
            loc.advance(SimTime::from_secs(60));
            assert_eq!(loc.open_count(), 2, "mode {mode:?}");
            // Update times 11s and 13s sit in the same 10s grid cell, so
            // one tick (t = 920s) idles both incidents out together; they
            // must complete in creation order (Region-0 before Region-1,
            // ids ascending).
            loc.advance(SimTime::from_mins(60));
            assert_eq!(loc.open_count(), 0, "mode {mode:?}");
            let done = loc.take_completed();
            assert_eq!(done.len(), 2, "mode {mode:?}");
            assert!(done[0].id < done[1].id, "mode {mode:?}");
            assert_eq!(done[0].root, c1, "mode {mode:?}");
            assert_eq!(done[1].root, c2, "mode {mode:?}");
        }
    }
}
