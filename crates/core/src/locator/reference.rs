//! The pre-interning, path-keyed locator, kept verbatim as a reference.
//!
//! [`PathLocator`] is the implementation the arena [`Locator`](super::Locator)
//! replaced: the main tree is a `HashMap<LocationPath, Node>`, adjacency is a
//! double-inserted `(A,B)`/`(B,A)` path-pair set, and every insert clones and
//! re-hashes the alert's [`LocationPath`]. It exists for two reasons:
//!
//! 1. **Differential oracle** — `tests/locator_equivalence.rs` asserts the
//!    interned locator produces identical incidents (roots, members,
//!    timings) on randomized floods.
//! 2. **Benchmark baseline** — `crates/bench/benches/locator_intern.rs`
//!    measures the before/after ingest throughput on a Fig. 7-scale flood.
//!
//! The only intentional deviations from the historical code are the two
//! deterministic sort points (component order, quorum-root tie-break):
//! they compare paths segment-wise (the [`LocationPath`] `Ord`) instead of
//! via `to_string()`, matching the arena locator exactly even when one
//! segment name is a prefix of another (`"Cluster-1"` vs `"Cluster-10"`).

use super::{CountingMode, Incident, LocatorConfig, Node};
use skynet_model::{
    AlertClass, AlertType, IncidentId, LocationLevel, LocationPath, SimDuration, SimTime,
    StructuredAlert,
};
use skynet_topology::Topology;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct OpenIncident {
    id: IncidentId,
    root: LocationPath,
    nodes: HashMap<LocationPath, Node>,
    update_time: SimTime,
}

impl OpenIncident {
    fn add(&mut self, alert: &StructuredAlert) {
        self.nodes
            .entry(alert.location.clone())
            .or_default()
            .add(alert);
        self.update_time = self.update_time.max_of(alert.last_seen);
    }

    fn into_incident(self) -> Incident {
        let mut alerts: Vec<StructuredAlert> = self
            .nodes
            .into_values()
            .flat_map(|n| n.alerts.into_values())
            .collect();
        alerts.sort_by(|a, b| {
            a.first_seen
                .cmp(&b.first_seen)
                .then_with(|| a.location.cmp(&b.location))
                .then_with(|| a.ty.cmp(&b.ty))
        });
        let first_seen = alerts
            .iter()
            .map(|a| a.first_seen)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last_seen = alerts
            .iter()
            .map(|a| a.last_seen)
            .max()
            .unwrap_or(SimTime::ZERO);
        Incident {
            id: self.id,
            root: self.root,
            first_seen,
            last_seen,
            alerts,
        }
    }
}

/// The path-keyed locator: behaviorally identical to [`super::Locator`] but
/// paying a `LocationPath` clone + string-vector hash per lookup. See the
/// module docs for why it is kept.
pub struct PathLocator {
    cfg: LocatorConfig,
    main: HashMap<LocationPath, Node>,
    open: Vec<OpenIncident>,
    completed: Vec<Incident>,
    next_check: SimTime,
    next_id: u32,
    /// Location-prefix pairs directly connected by a topology link, stored
    /// in both directions (the double insertion the arena locator fixed).
    adjacency: HashSet<(LocationPath, LocationPath)>,
}

impl std::fmt::Debug for PathLocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathLocator")
            .field("main_nodes", &self.main.len())
            .field("open_incidents", &self.open.len())
            .field("completed", &self.completed.len())
            .finish_non_exhaustive()
    }
}

impl PathLocator {
    /// Builds a locator over a topology (used for link-connectivity
    /// grouping).
    pub fn new(topo: &Arc<Topology>, cfg: LocatorConfig) -> Self {
        let mut adjacency = HashSet::new();
        if cfg.use_topology_connectivity {
            for link in topo.links() {
                let (Some(da), Some(db)) = (link.a.device(), link.b.device()) else {
                    continue;
                };
                let la = &topo.device(da).location;
                let lb = &topo.device(db).location;
                if la.segments().first() != lb.segments().first() {
                    continue;
                }
                for pa in la.prefixes() {
                    for pb in lb.prefixes() {
                        if pa != pb {
                            adjacency.insert((pa.clone(), pb.clone()));
                            adjacency.insert((pb, pa.clone()));
                        }
                    }
                }
            }
        }
        PathLocator {
            cfg,
            main: HashMap::new(),
            open: Vec::new(),
            completed: Vec::new(),
            next_check: SimTime::ZERO,
            next_id: 0,
            adjacency,
        }
    }

    /// Algorithm 1 (path-keyed): see [`super::Locator::insert`].
    pub fn insert(&mut self, alert: &StructuredAlert) {
        self.advance(alert.last_seen);
        for incident in &mut self.open {
            if incident.root.contains(&alert.location) {
                incident.add(alert);
                break;
            }
        }
        self.main
            .entry(alert.location.clone())
            .or_default()
            .add(alert);
    }

    /// Runs any due Algorithm 2/3 checks up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let step = self.cfg.check_interval.max(SimDuration::from_millis(1));
        while self.next_check <= now {
            let at = self.next_check;
            self.check_trees(at);
            self.generate_trees(at);
            self.next_check += step;
        }
    }

    fn check_trees(&mut self, now: SimTime) {
        let timeout = self.cfg.node_timeout;
        for node in self.main.values_mut() {
            node.alerts.retain(|_, a| now.since(a.last_seen) <= timeout);
        }
        self.main.retain(|_, node| !node.alerts.is_empty());

        let idle = self.cfg.incident_timeout;
        let mut still_open = Vec::new();
        for incident in self.open.drain(..) {
            if now.since(incident.update_time) > idle {
                self.completed.push(incident.into_incident());
            } else {
                still_open.push(incident);
            }
        }
        self.open = still_open;
    }

    fn connected(&self, a: &LocationPath, b: &LocationPath) -> bool {
        a.contains(b)
            || b.contains(a)
            || (a.depth() >= LocationLevel::Site.depth() && a.parent() == b.parent())
            || self.adjacency.contains(&(a.clone(), b.clone()))
    }

    fn count_component(&self, locations: &[&LocationPath]) -> (u32, u32) {
        match self.cfg.counting {
            CountingMode::TypeDistinct => {
                let mut types: HashSet<AlertType> = HashSet::new();
                for loc in locations {
                    if let Some(node) = self.main.get(*loc) {
                        types.extend(node.alerts.keys().copied());
                    }
                }
                let failure = types
                    .iter()
                    .filter(|t| t.class() == AlertClass::Failure)
                    .count() as u32;
                (failure, types.len() as u32)
            }
            CountingMode::TypeAndLocation => {
                let mut failure = 0u32;
                let mut all = 0u32;
                for loc in locations {
                    if let Some(node) = self.main.get(*loc) {
                        all += node.alerts.len() as u32;
                        failure += node
                            .alerts
                            .keys()
                            .filter(|t| t.class() == AlertClass::Failure)
                            .count() as u32;
                    }
                }
                (failure, all)
            }
        }
    }

    fn generate_trees(&mut self, _now: SimTime) {
        let locations: Vec<LocationPath> = self.main.keys().cloned().collect();
        if locations.is_empty() {
            return;
        }

        let n = locations.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut i = i;
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.connected(&locations[i], &locations[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            components.entry(r).or_default().push(i);
        }

        let mut component_list: Vec<Vec<usize>> = components.into_values().collect();
        // Deterministic order (segment-wise, matching the arena locator).
        component_list.sort_by_key(|c| c.iter().map(|&i| locations[i].clone()).min());

        for component in component_list {
            let mut remaining: Vec<&LocationPath> =
                component.iter().map(|&i| &locations[i]).collect();
            loop {
                let (failure, all) = self.count_component(&remaining);
                if remaining.is_empty() || !self.cfg.thresholds.is_met(failure, all) {
                    break;
                }
                let root = self.quorum_root(&remaining);
                let locs: Vec<&LocationPath> = remaining
                    .iter()
                    .copied()
                    .filter(|l| root.contains(l))
                    .collect();
                let before = remaining.len();
                remaining.retain(|l| !root.contains(l));
                if remaining.len() == before {
                    break; // no progress; defensive
                }
                if self.open.iter().any(|i| i.root.contains(&root)) {
                    continue;
                }
                self.create_incident(root, &locs);
            }
        }
    }

    fn create_incident(&mut self, root: LocationPath, locs: &[&LocationPath]) {
        let mut nodes: HashMap<LocationPath, Node> = HashMap::new();
        let mut update_time = SimTime::ZERO;
        let mut absorbed_ids = Vec::new();
        self.open.retain_mut(|i| {
            if root.contains(&i.root) {
                for (loc, node) in i.nodes.drain() {
                    let target = nodes.entry(loc).or_default();
                    for alert in node.alerts.values() {
                        target.add(alert);
                    }
                }
                update_time = update_time.max_of(i.update_time);
                absorbed_ids.push(i.id);
                false
            } else {
                true
            }
        });
        for loc in locs {
            if let Some(node) = self.main.get(*loc) {
                let target = nodes.entry((*loc).clone()).or_default();
                for alert in node.alerts.values() {
                    target.add(alert);
                    update_time = update_time.max_of(alert.last_seen);
                }
            }
        }
        let id = absorbed_ids.into_iter().min().unwrap_or_else(|| {
            let id = IncidentId(self.next_id);
            self.next_id += 1;
            id
        });
        self.open.push(OpenIncident {
            id,
            root,
            nodes,
            update_time,
        });
    }

    fn quorum_root(&self, locs: &[&LocationPath]) -> LocationPath {
        let Some((first, rest)) = locs.split_first() else {
            return LocationPath::root();
        };
        let mut dca = (*first).clone();
        for l in rest {
            dca = dca.common_ancestor(l);
        }
        let type_sets: Vec<(&LocationPath, HashSet<AlertType>)> = locs
            .iter()
            .map(|&l| {
                let types = self
                    .main
                    .get(l)
                    .map(|n| n.alerts.keys().copied().collect())
                    .unwrap_or_default();
                (l, types)
            })
            .collect();
        let total: HashSet<AlertType> = type_sets
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        let needed = ((total.len() as f64) * self.cfg.root_quorum).ceil() as usize;

        let mut candidates: Vec<LocationPath> = locs
            .iter()
            .flat_map(|l| l.prefixes())
            .filter(|c| dca.contains(c))
            .collect();
        // Depth-first tie-break, segment-wise (matching the arena locator).
        candidates.sort_by(|a, b| b.depth().cmp(&a.depth()).then_with(|| a.cmp(b)));
        candidates.dedup();

        for candidate in candidates {
            let covered: HashSet<AlertType> = type_sets
                .iter()
                .filter(|(l, _)| candidate.contains(l))
                .flat_map(|(_, t)| t.iter().copied())
                .collect();
            if covered.len() < needed {
                continue;
            }
            let covered_locs: Vec<&LocationPath> = locs
                .iter()
                .copied()
                .filter(|l| candidate.contains(l))
                .collect();
            let (failure, all) = self.count_component(&covered_locs);
            if self.cfg.thresholds.is_met(failure, all) {
                return candidate;
            }
        }
        dca
    }

    /// Flushes everything: finalizes all open incidents.
    pub fn finish(&mut self) {
        for incident in self.open.drain(..) {
            self.completed.push(incident.into_incident());
        }
        self.main.clear();
    }

    /// Takes the finished incidents accumulated so far.
    pub fn take_completed(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.completed)
    }

    /// Number of currently open incident trees.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Roots of the currently open incident trees.
    pub fn open_roots(&self) -> Vec<LocationPath> {
        self.open.iter().map(|i| i.root.clone()).collect()
    }

    /// Convenience: run a whole time-ordered batch through Algorithms 1–3
    /// and return every incident.
    pub fn process_batch(&mut self, alerts: &[StructuredAlert], horizon: SimTime) -> Vec<Incident> {
        for alert in alerts {
            self.insert(alert);
        }
        self.advance(horizon);
        self.finish();
        let mut incidents = self.take_completed();
        incidents.sort_by_key(|i| (i.first_seen, i.id));
        incidents
    }
}
