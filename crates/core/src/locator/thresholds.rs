//! Incident-generation thresholds in the paper's `A/B+C/D` notation.
//!
//! "The threshold for incident tree generation is set at either two failure
//! alerts, one failure alert plus two other alerts, or five alerts of any
//! type" (§4.2) — written `2/1+2/5` in Fig. 9's x-axis: `A` failure alerts,
//! or `B` failure alerts and `C` other alerts, or `D` alerts of any type.
//! A component set to 0 disables that clause (Fig. 9's ablations).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The three-clause incident threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Thresholds {
    /// `A`: failure alerts alone (0 disables).
    pub failure: u32,
    /// `B`: failure alerts in the combined clause (0 disables the clause).
    pub failure_with_other: u32,
    /// `C`: other alerts required alongside `B` failures.
    pub other_with_failure: u32,
    /// `D`: alerts of any type (0 disables).
    pub any: u32,
}

impl Thresholds {
    /// The production setting `2/1+2/5` (§6.3).
    pub const PRODUCTION: Thresholds = Thresholds {
        failure: 2,
        failure_with_other: 1,
        other_with_failure: 2,
        any: 5,
    };

    /// True when the given distinct-type counts cross any enabled clause.
    pub fn is_met(&self, failure_types: u32, all_types: u32) -> bool {
        let other_types = all_types.saturating_sub(failure_types);
        (self.failure > 0 && failure_types >= self.failure)
            || (self.failure_with_other > 0
                && failure_types >= self.failure_with_other
                && other_types >= self.other_with_failure)
            || (self.any > 0 && all_types >= self.any)
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::PRODUCTION
    }
}

impl fmt::Display for Thresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}+{}/{}",
            self.failure, self.failure_with_other, self.other_with_failure, self.any
        )
    }
}

/// Error from parsing the `A/B+C/D` notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdParseError(String);

impl fmt::Display for ThresholdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid threshold spec {:?}, expected A/B+C/D", self.0)
    }
}

impl std::error::Error for ThresholdParseError {}

impl FromStr for Thresholds {
    type Err = ThresholdParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ThresholdParseError(s.to_string());
        let mut slash = s.splitn(2, '/');
        let a = slash.next().ok_or_else(err)?;
        let rest = slash.next().ok_or_else(err)?;
        let mut plus = rest.splitn(2, '+');
        let b = plus.next().ok_or_else(err)?;
        let rest = plus.next().ok_or_else(err)?;
        let mut slash2 = rest.splitn(2, '/');
        let c = slash2.next().ok_or_else(err)?;
        let d = slash2.next().ok_or_else(err)?;
        Ok(Thresholds {
            failure: a.parse().map_err(|_| err())?,
            failure_with_other: b.parse().map_err(|_| err())?,
            other_with_failure: c.parse().map_err(|_| err())?,
            any: d.parse().map_err(|_| err())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_values() {
        let t = Thresholds::PRODUCTION;
        assert_eq!(t.to_string(), "2/1+2/5");
        assert_eq!("2/1+2/5".parse::<Thresholds>().unwrap(), t);
    }

    #[test]
    fn paper_clauses() {
        let t = Thresholds::PRODUCTION;
        // Two failure alerts.
        assert!(t.is_met(2, 2));
        // One failure plus two others.
        assert!(t.is_met(1, 3));
        // Five of any type.
        assert!(t.is_met(0, 5));
        // Below everything.
        assert!(!t.is_met(1, 2));
        assert!(!t.is_met(0, 4));
        assert!(!t.is_met(1, 1));
    }

    #[test]
    fn zero_disables_clauses() {
        let no_any = Thresholds {
            any: 0,
            ..Thresholds::PRODUCTION
        };
        assert!(!no_any.is_met(0, 50));
        assert!(no_any.is_met(2, 2));

        let no_failure = Thresholds {
            failure: 0,
            ..Thresholds::PRODUCTION
        };
        assert!(!no_failure.is_met(4, 4), "combined clause needs others");
        assert!(no_failure.is_met(1, 3));

        let only_any = "0/0+0/5".parse::<Thresholds>().unwrap();
        assert!(!only_any.is_met(4, 4));
        assert!(only_any.is_met(0, 5));
    }

    #[test]
    fn figure9_configs_parse() {
        for spec in [
            "0/1+2/5", "2/0+0/5", "2/1+2/0", "1/1+2/5", "2/1+2/4", "2/1+1/5", "2/1+2/5", "2/1+3/5",
            "2/1+2/6",
        ] {
            let t: Thresholds = spec.parse().unwrap();
            assert_eq!(t.to_string(), spec);
        }
    }

    #[test]
    fn garbage_fails_to_parse() {
        for bad in ["", "2", "2/1", "2/1+2", "a/b+c/d", "2/1+2/5/9"] {
            assert!(bad.parse::<Thresholds>().is_err(), "{bad:?} parsed");
        }
    }
}
