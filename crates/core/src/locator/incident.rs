//! Incidents: clusters of alerts attributed to one root cause.

use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertClass, AlertType, IncidentId, LocationPath, SimDuration, SimTime, StructuredAlert,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A finished incident as reported to operators (Fig. 6's right-hand side):
/// a location, a time range and the associated alerts grouped by class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Identifier assigned by the locator.
    pub id: IncidentId,
    /// The incident tree's root location.
    pub root: LocationPath,
    /// Earliest alert in the incident.
    pub first_seen: SimTime,
    /// Latest alert in the incident.
    pub last_seen: SimTime,
    /// Every consolidated alert attributed to this incident.
    pub alerts: Vec<StructuredAlert>,
}

impl Incident {
    /// Incident duration (`ΔT_k` of Table 3).
    pub fn duration(&self) -> SimDuration {
        self.last_seen.since(self.first_seen)
    }

    /// Alerts of one class.
    pub fn alerts_of_class(&self, class: AlertClass) -> impl Iterator<Item = &StructuredAlert> {
        self.alerts.iter().filter(move |a| a.class() == class)
    }

    /// Distinct alert types present, with per-type total counts —
    /// the `(3)`/`(680)` numbers of Fig. 6.
    pub fn type_counts(&self) -> BTreeMap<AlertType, u32> {
        let mut m = BTreeMap::new();
        for a in &self.alerts {
            *m.entry(a.ty).or_insert(0) += a.count;
        }
        m
    }

    /// Number of distinct failure-class types.
    pub fn failure_type_count(&self) -> usize {
        let mut types: Vec<AlertType> = self
            .alerts_of_class(AlertClass::Failure)
            .map(|a| a.ty)
            .collect();
        types.sort_unstable();
        types.dedup();
        types.len()
    }

    /// True when any alert of the class is present (Fig. 5d's correlation
    /// statistic).
    pub fn has_class(&self, class: AlertClass) -> bool {
        self.alerts.iter().any(|a| a.class() == class)
    }

    /// Ground-truth provenance: the injected failures whose alerts landed
    /// in this incident, most-frequent first. Experiment-harness only.
    pub fn causes(&self) -> Vec<skynet_model::FailureId> {
        let mut tally: BTreeMap<skynet_model::FailureId, u32> = BTreeMap::new();
        for a in &self.alerts {
            if let Some(c) = a.cause {
                *tally.entry(c).or_insert(0) += a.count;
            }
        }
        let mut v: Vec<_> = tally.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(id, _)| id).collect()
    }

    /// Renders the operator-facing report of Fig. 6: location, time range,
    /// and the alert tree grouped by class then source.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Incident {}:\n[{}][{} - {}]",
            self.id.index() + 1,
            self.root,
            self.first_seen,
            self.last_seen
        );
        for (class, title) in [
            (AlertClass::Failure, "Failure alerts"),
            (AlertClass::Abnormal, "Abnormal alerts"),
            (AlertClass::RootCause, "Root cause alerts"),
        ] {
            let mut by_type: BTreeMap<AlertType, u32> = BTreeMap::new();
            for a in self.alerts_of_class(class) {
                *by_type.entry(a.ty).or_insert(0) += a.count;
            }
            if by_type.is_empty() {
                continue;
            }
            let _ = writeln!(s, "{title}");
            let mut last_source = None;
            let entries: Vec<_> = by_type.into_iter().collect();
            for (i, (ty, count)) in entries.iter().enumerate() {
                if last_source != Some(ty.source) {
                    let _ = writeln!(s, "{}", ty.source);
                    last_source = Some(ty.source);
                }
                let next_same_source = entries
                    .get(i + 1)
                    .is_some_and(|(t, _)| t.source == ty.source);
                let branch = if next_same_source { "|-" } else { "└-" };
                let _ = writeln!(s, "{branch} {} ({count})", ty.kind);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{AlertKind, DataSource, FailureId, RawAlert};

    fn alert(source: DataSource, kind: AlertKind, secs: u64, count: u32) -> StructuredAlert {
        let raw = RawAlert::known(
            source,
            SimTime::from_secs(secs),
            LocationPath::parse("R|C|L").unwrap(),
            kind,
        );
        let mut s = StructuredAlert::from_raw(&raw, kind);
        s.count = count;
        s
    }

    fn sample() -> Incident {
        Incident {
            id: IncidentId(0),
            root: LocationPath::parse("R|C|L").unwrap(),
            first_seen: SimTime::from_secs(10),
            last_seen: SimTime::from_secs(190),
            alerts: vec![
                alert(DataSource::Ping, AlertKind::PacketLossIcmp, 10, 3),
                alert(
                    DataSource::OutOfBand,
                    AlertKind::DeviceInaccessible,
                    20,
                    680,
                ),
                alert(DataSource::Syslog, AlertKind::BgpPeerDown, 30, 2),
                alert(DataSource::Syslog, AlertKind::HardwareError, 40, 1),
                alert(DataSource::Snmp, AlertKind::TrafficCongestion, 50, 1),
            ],
        }
    }

    #[test]
    fn duration_and_classes() {
        let i = sample();
        assert_eq!(i.duration(), SimDuration::from_secs(180));
        assert!(i.has_class(AlertClass::Failure));
        assert!(i.has_class(AlertClass::Abnormal));
        assert!(i.has_class(AlertClass::RootCause));
        assert_eq!(i.failure_type_count(), 1);
        assert_eq!(i.alerts_of_class(AlertClass::Abnormal).count(), 2);
    }

    #[test]
    fn type_counts_aggregate_consolidated_counts() {
        let i = sample();
        let counts = i.type_counts();
        assert_eq!(
            counts[&AlertType::new(DataSource::OutOfBand, AlertKind::DeviceInaccessible)],
            680
        );
    }

    #[test]
    fn report_has_figure6_shape() {
        let r = sample().report();
        assert!(r.contains("[R|C|L]"));
        assert!(r.contains("Failure alerts"));
        assert!(r.contains("Abnormal alerts"));
        assert!(r.contains("Root cause alerts"));
        assert!(r.contains("inaccessible (680)"));
        assert!(r.contains("└-"));
    }

    #[test]
    fn causes_ranked_by_alert_mass() {
        let mut i = sample();
        i.alerts[0].cause = Some(FailureId(2));
        i.alerts[1].cause = Some(FailureId(1));
        i.alerts[2].cause = Some(FailureId(2));
        // FailureId(1) has 680 alerts worth of mass, FailureId(2) has 5.
        assert_eq!(i.causes(), vec![FailureId(1), FailureId(2)]);
    }
}
