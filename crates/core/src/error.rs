//! Error taxonomy for the SkyNet pipeline.
//!
//! The streaming deployment (§6.2) must survive exactly the conditions it
//! analyzes: malformed probe output, clock-skewed sources, saturated
//! channels, and buggy stage code. Every recoverable condition on a
//! non-test hot path is expressed as a [`SkyNetError`] (or, for a single
//! rejected alert, a [`RejectReason`]) instead of a panic, so one poison
//! event degrades one alert — not the whole deployment.

use serde::{Deserialize, Serialize};
use skynet_model::{AlertClass, SimTime};
use std::fmt;

/// Why the ingestion guard refused a single [`RawAlert`](skynet_model::RawAlert).
///
/// Each variant maps to a per-reason counter in
/// [`IngestStats`](crate::guard::IngestStats) and tags the alert's entry in
/// the dead-letter queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The alert's location (or its peer's) does not lie on the monitored
    /// topology — an unparsable or foreign path that would corrupt the
    /// locator's alert trees.
    OffTopology,
    /// The alert's timestamp is older than the current watermark minus the
    /// skew window: it arrived too late to re-sequence.
    StaleTimestamp,
    /// The alert's timestamp is absurdly far ahead of everything seen so
    /// far — a clock-skewed source that would stall the watermark.
    FutureTimestamp,
    /// Exact duplicate of an alert already accepted inside the duplicate
    /// window (same source, body, location and timestamp) — the signature
    /// of a retransmitting or stuck probe.
    Duplicate,
    /// The alert body is structurally corrupt: non-finite magnitude, empty
    /// syslog text, or control bytes in the syslog payload.
    CorruptBody,
    /// A fault-injection rule intercepted the alert at a stage boundary;
    /// the alert is preserved here instead of being lost.
    FaultInjected,
}

impl RejectReason {
    /// Stable lowercase label for logs and rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::OffTopology => "off-topology",
            RejectReason::StaleTimestamp => "stale-timestamp",
            RejectReason::FutureTimestamp => "future-timestamp",
            RejectReason::Duplicate => "duplicate",
            RejectReason::CorruptBody => "corrupt-body",
            RejectReason::FaultInjected => "fault-injected",
        }
    }

    /// All reasons, in counter order.
    pub const ALL: [RejectReason; 6] = [
        RejectReason::OffTopology,
        RejectReason::StaleTimestamp,
        RejectReason::FutureTimestamp,
        RejectReason::Duplicate,
        RejectReason::CorruptBody,
        RejectReason::FaultInjected,
    ];
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Recoverable failures of the pipeline runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkyNetError {
    /// A single alert was rejected by the ingestion guard.
    Rejected {
        /// Why the guard refused it.
        reason: RejectReason,
        /// The rejected alert's claimed timestamp.
        timestamp: SimTime,
    },
    /// A streaming channel closed because the other side hung up: the
    /// supervisor exhausted its restarts or the consumer dropped the
    /// incident receiver.
    ChannelClosed,
    /// An alert was shed under load instead of enqueued.
    Shed {
        /// The class of the shed alert (never [`AlertClass::Failure`]).
        class: AlertClass,
    },
    /// A pipeline stage panicked; the supervisor caught it and restarted
    /// the worker with fresh stage state.
    WorkerPanicked {
        /// How many restarts the supervisor has performed so far.
        restarts: u32,
    },
    /// The supervisor hit its restart cap and gave up; the stream is dead.
    RestartsExhausted {
        /// The configured restart cap.
        cap: u32,
    },
    /// A fault-injection rule fired at a stage boundary (chaos testing).
    FaultInjected {
        /// The injection site that raised the fault.
        site: crate::faultinject::InjectionSite,
    },
}

impl fmt::Display for SkyNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkyNetError::Rejected { reason, timestamp } => {
                write!(f, "alert at {timestamp} rejected: {reason}")
            }
            SkyNetError::ChannelClosed => write!(f, "pipeline channel closed"),
            SkyNetError::Shed { class } => {
                write!(f, "{class} alert shed under load")
            }
            SkyNetError::WorkerPanicked { restarts } => {
                write!(f, "pipeline worker panicked (restart #{restarts})")
            }
            SkyNetError::RestartsExhausted { cap } => {
                write!(f, "pipeline worker gave up after {cap} restarts")
            }
            SkyNetError::FaultInjected { site } => {
                write!(f, "injected fault at stage boundary {site}")
            }
        }
    }
}

impl std::error::Error for SkyNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = RejectReason::ALL.iter().map(|r| r.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn errors_render_and_round_trip() {
        let e = SkyNetError::Rejected {
            reason: RejectReason::StaleTimestamp,
            timestamp: SimTime::from_secs(7),
        };
        assert!(e.to_string().contains("stale-timestamp"));
        let json = serde_json::to_string(&e).unwrap();
        let back: SkyNetError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert!(SkyNetError::RestartsExhausted { cap: 3 }
            .to_string()
            .contains('3'));
        assert!(SkyNetError::FaultInjected {
            site: crate::faultinject::InjectionSite::GuardOffer
        }
        .to_string()
        .contains("guard-offer"));
    }
}
