//! Region-affine shard routing.
//!
//! The locator's grouping rules never connect locations from different
//! regions: containment and sibling checks require a shared ancestor chain,
//! and the adjacency index deliberately skips inter-region links (a WAN cut
//! shows up as *two* regional incidents, §4.2). Incident trees therefore
//! never span regions, and the pipeline can be partitioned by the
//! region-level ancestor of each structured alert's location with no loss
//! of grouping fidelity.
//!
//! A [`ShardRouter`] precomputes `LocId → shard` for every location the
//! topology interner knows, so routing one alert is a single array probe.
//! Locations the interner cannot resolve (defensive: the ingestion guard
//! already rejects off-topology alerts) route to a deterministic fallback
//! shard so a misrouted alert can never make output depend on shard count.

use skynet_model::{LocId, LocationInterner, LocationPath};
use std::sync::Arc;

/// Shard every unresolvable location routes to.
pub const FALLBACK_SHARD: usize = 0;

/// Maps alert locations to region-affine shards.
///
/// Regions are enumerated in the interner's deterministic seed order and
/// assigned round-robin to `shards` workers; every location inherits its
/// region's shard. The assignment is a pure function of the topology and
/// the shard count, so two routers built from the same inputs agree.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    interner: Arc<LocationInterner>,
    /// `shard_by_loc[id.index()]` = shard of the location's region.
    shard_by_loc: Vec<u32>,
    shards: usize,
}

impl ShardRouter {
    /// Builds a router over a topology interner for `shards` workers
    /// (clamped to at least 1).
    pub fn new(interner: &Arc<LocationInterner>, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut region_ordinals: Vec<LocId> = Vec::new();
        let mut shard_by_loc = Vec::with_capacity(interner.len());
        for id in interner.ids() {
            let region = interner.region_of(id);
            let ordinal = match region_ordinals.iter().position(|&r| r == region) {
                Some(i) => i,
                None => {
                    region_ordinals.push(region);
                    region_ordinals.len() - 1
                }
            };
            shard_by_loc.push((ordinal % shards) as u32);
        }
        ShardRouter {
            interner: Arc::clone(interner),
            shard_by_loc,
            shards,
        }
    }

    /// Number of shards routed to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard for an interned location: one array probe. Ids interned
    /// into the topology interner *after* this router was built (there are
    /// none today — the topology interner is frozen behind an `Arc`) fall
    /// back deterministically.
    pub fn route_id(&self, id: LocId) -> usize {
        self.shard_by_loc
            .get(id.index())
            .map_or(FALLBACK_SHARD, |&s| s as usize)
    }

    /// The shard for a location path; unresolvable (off-topology) paths go
    /// to [`FALLBACK_SHARD`].
    pub fn route(&self, path: &LocationPath) -> usize {
        match self.interner.resolve(path) {
            Some(id) => self.route_id(id),
            None => FALLBACK_SHARD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_topology::{generate, GeneratorConfig};

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    #[test]
    fn every_location_of_a_region_shares_a_shard() {
        let topo = generate(&GeneratorConfig::small());
        let interner = topo.interner();
        for shards in [1, 2, 4, 7] {
            let router = ShardRouter::new(interner, shards);
            for id in interner.ids() {
                let region = interner.region_of(id);
                assert_eq!(
                    router.route_id(id),
                    router.route_id(region),
                    "location must ride its region's shard"
                );
                assert!(router.route_id(id) < shards);
                assert_eq!(router.route(interner.path(id)), router.route_id(id));
            }
        }
    }

    #[test]
    fn regions_spread_round_robin() {
        let topo = generate(&GeneratorConfig::small());
        let interner = topo.interner();
        let router = ShardRouter::new(interner, 2);
        let shards: Vec<usize> = interner.regions().map(|r| router.route_id(r)).collect();
        assert_eq!(shards, vec![0, 1]);
    }

    #[test]
    fn unresolvable_locations_take_the_fallback_shard() {
        let topo = generate(&GeneratorConfig::small());
        let router = ShardRouter::new(topo.interner(), 4);
        assert_eq!(router.route(&p("Atlantis|Lost City")), FALLBACK_SHARD);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let topo = generate(&GeneratorConfig::small());
        let router = ShardRouter::new(topo.interner(), 0);
        assert_eq!(router.shards(), 1);
        for id in topo.interner().ids() {
            assert_eq!(router.route_id(id), 0);
        }
    }
}
