//! Heuristic rules and automatic SOPs for *known* failures (§7.2, §7.3).
//!
//! Before SkyNet, ~1,000 hand-written rules mapped familiar alert patterns
//! to mitigation plans. The paper keeps the rule system for minor/known
//! failures and routes everything else through SkyNet. The canonical rule
//! (§7.2):
//!
//! - a device within a group is losing packets,
//! - no other device of the group alerts,
//! - the group's total traffic is below a threshold,
//!
//! → isolate the device, with a prepared rollback plan.

use crate::locator::Incident;
use serde::{Deserialize, Serialize};
use skynet_model::{AlertClass, AlertKind, LocId, LocationLevel, LocationPath};
use skynet_topology::Topology;
use std::sync::Arc;

/// The mitigation an SOP performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SopAction {
    /// Take a device out of forwarding.
    IsolateDevice(LocationPath),
    /// Block traffic toward a location (DDoS response).
    BlockTraffic(LocationPath),
    /// Drain a congested aggregation layer.
    DrainLocation(LocationPath),
}

/// A matched plan: the rule, the bound action and the rollback recipe the
/// operators can revert with (§7.2: "a rollback plan is prepared").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SopPlan {
    /// Rule that matched.
    pub rule: String,
    /// Concrete action.
    pub action: SopAction,
    /// Manual rollback instructions.
    pub rollback: String,
}

/// What a rule does when it matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SopActionKind {
    /// Isolate the single alerting device.
    IsolateDevice,
    /// Block traffic at the incident location.
    BlockTraffic,
    /// Drain the incident location.
    DrainLocation,
}

/// A declarative heuristic rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SopRule {
    /// Rule name (shown in the plan).
    pub name: String,
    /// Alert kinds that must all be present in the incident.
    pub required_kinds: Vec<AlertKind>,
    /// Alert classes that must all be present.
    pub required_classes: Vec<AlertClass>,
    /// The incident root must be at this level or deeper (known failures
    /// are narrow; a region-wide incident never matches a device rule).
    pub min_depth: LocationLevel,
    /// Require that exactly one device-level location alerts and that no
    /// sibling of its aggregation group appears in the incident (the §7.2
    /// "no other device in this group generates alerts" condition).
    pub require_isolated_device: bool,
    /// The flows riding the alerting device's links must total below this
    /// (Gbps). `f64::INFINITY` disables the check.
    pub max_device_traffic_gbps: f64,
    /// Action template.
    pub action: SopActionKind,
    /// Rollback recipe.
    pub rollback: String,
}

impl SopRule {
    /// The §7.2 device-isolation rule.
    pub fn device_isolation() -> Self {
        SopRule {
            name: "isolate-lossy-device".into(),
            required_kinds: vec![],
            required_classes: vec![AlertClass::Failure],
            min_depth: LocationLevel::Cluster,
            require_isolated_device: true,
            max_device_traffic_gbps: 200.0,
            action: SopActionKind::IsolateDevice,
            rollback: "re-enable forwarding on the isolated device and verify BGP sessions".into(),
        }
    }

    /// A DDoS blocking rule: surge + congestion confined to one cluster.
    pub fn ddos_block() -> Self {
        SopRule {
            name: "block-ddos-target".into(),
            required_kinds: vec![AlertKind::TrafficSurge, AlertKind::TrafficCongestion],
            required_classes: vec![],
            min_depth: LocationLevel::Cluster,
            require_isolated_device: false,
            max_device_traffic_gbps: f64::INFINITY,
            action: SopActionKind::BlockTraffic,
            rollback: "remove the blackhole routes installed for the attack sources".into(),
        }
    }
}

/// The rule engine.
#[derive(Debug, Clone)]
pub struct SopEngine {
    topo: Arc<Topology>,
    rules: Vec<SopRule>,
}

impl SopEngine {
    /// Engine with a custom rule set.
    pub fn new(topo: &Arc<Topology>, rules: Vec<SopRule>) -> Self {
        SopEngine {
            topo: Arc::clone(topo),
            rules,
        }
    }

    /// Engine with the standard rules.
    pub fn standard(topo: &Arc<Topology>) -> Self {
        Self::new(
            topo,
            vec![SopRule::device_isolation(), SopRule::ddos_block()],
        )
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SopRule] {
        &self.rules
    }

    /// Tries every rule in order; the first full match wins ("if any
    /// conditions are unmet, mitigation is not initiated").
    pub fn match_incident(&self, incident: &Incident) -> Option<SopPlan> {
        self.rules
            .iter()
            .find_map(|rule| self.try_rule(rule, incident))
    }

    fn try_rule(&self, rule: &SopRule, incident: &Incident) -> Option<SopPlan> {
        if incident.root.depth() < rule.min_depth.depth() {
            return None;
        }
        for kind in &rule.required_kinds {
            if !incident.alerts.iter().any(|a| a.ty.kind == *kind) {
                return None;
            }
        }
        for class in &rule.required_classes {
            if !incident.has_class(*class) {
                return None;
            }
        }

        let target = if rule.require_isolated_device {
            Some(self.isolated_device(incident)?)
        } else {
            None
        };

        if let Some(device_loc) = &target {
            if rule.max_device_traffic_gbps.is_finite() {
                let device = self
                    .topo
                    .devices_under(device_loc)
                    .next()
                    .expect("isolated_device returns an existing device");
                let traffic: f64 = self
                    .topo
                    .links_of(device.id)
                    .iter()
                    .flat_map(|&l| {
                        self.topo
                            .flows_on_circuit_set(self.topo.link(l).circuit_set.id)
                    })
                    .map(|&fi| self.topo.flows()[fi].rate_gbps)
                    .sum();
                if traffic > rule.max_device_traffic_gbps {
                    return None;
                }
            }
        }

        let action = match rule.action {
            SopActionKind::IsolateDevice => SopAction::IsolateDevice(target?),
            SopActionKind::BlockTraffic => SopAction::BlockTraffic(incident.root.clone()),
            SopActionKind::DrainLocation => SopAction::DrainLocation(incident.root.clone()),
        };
        Some(SopPlan {
            rule: rule.name.clone(),
            action,
            rollback: rule.rollback.clone(),
        })
    }

    /// The single alerting device of the incident, provided no sibling of
    /// its aggregation group also alerts. Device-level alert locations are
    /// required; broader locations (site-wide ping loss) don't disqualify
    /// the device but alerts on *another* device do.
    fn isolated_device(&self, incident: &Incident) -> Option<LocationPath> {
        let mut device_locs: Vec<&LocationPath> = incident
            .alerts
            .iter()
            .map(|a| &a.location)
            .filter(|l| l.level() == Some(LocationLevel::Device))
            .collect();
        device_locs.sort_by_key(|l| l.to_string());
        device_locs.dedup();
        match device_locs.as_slice() {
            [single] => {
                let device = self.topo.devices_under(single).next()?;
                // No sibling of the group may alert at all. Alert locations
                // resolve against the topology interner once; off-topology
                // alerts can never cover a modeled device and drop out.
                let interner = self.topo.interner();
                let group_loc = interner
                    .truncate_at(self.topo.device_loc(device.id), device.role.serves_level());
                let siblings = self.topo.agg_group_at(group_loc);
                let alert_locs: Vec<LocId> = incident
                    .alerts
                    .iter()
                    .filter_map(|a| interner.resolve(&a.location))
                    .collect();
                let clean = siblings.iter().all(|&s| {
                    s == device.id || {
                        let sibling = self.topo.device_loc(s);
                        !alert_locs.iter().any(|&a| interner.contains(a, sibling))
                    }
                });
                clean.then(|| (*single).clone())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{DataSource, IncidentId, RawAlert, SimTime, StructuredAlert};
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn salert(kind: AlertKind, location: LocationPath) -> StructuredAlert {
        let raw =
            RawAlert::known(DataSource::Ping, SimTime::ZERO, location, kind).with_magnitude(0.2);
        StructuredAlert::from_raw(&raw, kind)
    }

    fn incident(root: LocationPath, alerts: Vec<StructuredAlert>) -> Incident {
        Incident {
            id: IncidentId(0),
            root,
            first_seen: SimTime::ZERO,
            last_seen: SimTime::from_secs(60),
            alerts,
        }
    }

    #[test]
    fn lone_lossy_device_is_isolated() {
        let t = topo();
        let engine = SopEngine::standard(&t);
        // A leaf switch: low enough traffic for the isolation rule's
        // threshold (a loaded DCBR would be vetoed).
        let device = t
            .devices()
            .iter()
            .find(|d| d.role == skynet_topology::DeviceRole::Leaf)
            .unwrap()
            .location
            .clone();
        let i = incident(
            device.parent(),
            vec![
                salert(AlertKind::PacketLossIcmp, device.clone()),
                salert(AlertKind::PacketLossTcp, device.clone()),
            ],
        );
        let plan = engine.match_incident(&i).expect("the §7.2 rule matches");
        assert_eq!(plan.rule, "isolate-lossy-device");
        assert_eq!(plan.action, SopAction::IsolateDevice(device));
        assert!(!plan.rollback.is_empty());
    }

    #[test]
    fn sibling_alerts_block_the_isolation_rule() {
        let t = topo();
        let engine = SopEngine::standard(&t);
        // Two leaves of the same cluster both alert: the failure is not
        // confined to one device.
        let cluster = t.clusters()[0].clone();
        let group = t.agg_group(&cluster);
        assert!(group.len() >= 2);
        let d1 = t.device(group[0]).location.clone();
        let d2 = t.device(group[1]).location.clone();
        let i = incident(
            cluster,
            vec![
                salert(AlertKind::PacketLossIcmp, d1),
                salert(AlertKind::PacketLossTcp, d2),
            ],
        );
        assert!(engine.match_incident(&i).is_none());
    }

    #[test]
    fn wide_incidents_never_match_device_rules() {
        let t = topo();
        let engine = SopEngine::standard(&t);
        let region = LocationPath::parse("Region-0").unwrap();
        let i = incident(
            region.clone(),
            vec![
                salert(AlertKind::PacketLossIcmp, region.clone()),
                salert(AlertKind::PacketLossTcp, region),
            ],
        );
        assert!(
            engine.match_incident(&i).is_none(),
            "severe region-wide failures go to SkyNet, not SOPs"
        );
    }

    #[test]
    fn ddos_rule_blocks_traffic_at_the_cluster() {
        let t = topo();
        let engine = SopEngine::standard(&t);
        let cluster = t.clusters()[0].clone();
        let i = incident(
            cluster.clone(),
            vec![
                salert(AlertKind::TrafficSurge, cluster.clone()),
                salert(AlertKind::TrafficCongestion, cluster.clone()),
            ],
        );
        let plan = engine.match_incident(&i).expect("ddos rule matches");
        assert_eq!(plan.action, SopAction::BlockTraffic(cluster));
    }

    #[test]
    fn traffic_threshold_blocks_isolation_of_loaded_devices() {
        let t = topo();
        let mut rule = SopRule::device_isolation();
        rule.max_device_traffic_gbps = 0.0; // nothing is below this
        let engine = SopEngine::new(&t, vec![rule]);
        // A leaf that actually carries flows.
        let device = t
            .devices()
            .iter()
            .find(|d| {
                t.links_of(d.id)
                    .iter()
                    .any(|&l| !t.flows_on_circuit_set(t.link(l).circuit_set.id).is_empty())
            })
            .expect("some device carries traffic")
            .location
            .clone();
        let i = incident(
            device.parent(),
            vec![
                salert(AlertKind::PacketLossIcmp, device.clone()),
                salert(AlertKind::PacketLossTcp, device),
            ],
        );
        assert!(
            engine.match_incident(&i).is_none(),
            "high traffic through the group must veto automatic isolation"
        );
    }
}
