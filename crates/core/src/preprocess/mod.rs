//! The preprocessor (§4.1): uniform format, classification, consolidation.
//!
//! Three consolidation stages shrink the raw flood roughly an order of
//! magnitude (§6.2: ~100 k alerts/hour → <10 k normally, <50 k in
//! extremes):
//!
//! 1. **Identical alerts** — repeats of the same `(type, location)` within
//!    a window update the first alert's timestamp instead of producing new
//!    alerts. Long-lived conditions re-emit a *refresh* of the same group
//!    periodically so downstream trees stay fresh.
//! 2. **Single-source rules** — sporadic observations are ignored until
//!    they persist (`persistence_threshold` sightings within the window),
//!    and correlated same-source alerts (surge ripples on adjacent
//!    interfaces) keep only their first representative per site.
//! 3. **Cross-source rules** — a traffic *drop* alone is expected user
//!    behaviour; it is emitted only when corroborated by a failure-class
//!    or root-cause alert nearby within the corroboration window.
//!
//! Internally every alert location is interned into a dense [`LocId`] on
//! arrival, so consolidation keys are `Copy` `(AlertType, LocId)` pairs and
//! the containment checks behind corroboration and surge suppression are
//! `O(1)` id probes instead of segment-wise path walks.

pub mod classify;

pub use classify::SyslogClassifier;
use skynet_ftree::MatchScratch;

use crate::faultinject::{self, FaultArm};
use crate::obs::{Counter, DropReason, Observability, Stage, StageTracer};
use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertBody, AlertClass, AlertKind, AlertType, LocId, LocationInterner, LocationLevel,
    LocationPath, RawAlert, SimDuration, SimTime, StructuredAlert,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Preprocessor knobs.
///
/// `#[non_exhaustive]`: construct via [`PreprocessorConfig::default`] and
/// the fluent `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PreprocessorConfig {
    /// Identical-alert consolidation window: repeats within this window are
    /// absorbed into the original alert.
    pub dedup_window: SimDuration,
    /// How often a still-active consolidated group re-emits a refresh.
    pub refresh_interval: SimDuration,
    /// Observations required before a persistence-gated kind is emitted
    /// ("sporadic packet loss is ignored, persistent packet loss is
    /// recorded").
    pub persistence_threshold: u32,
    /// Window within which persistence observations must accumulate.
    pub persistence_window: SimDuration,
    /// Window within which a traffic drop must find a corroborating
    /// failure/root-cause alert.
    pub corroboration_window: SimDuration,
}

impl Default for PreprocessorConfig {
    fn default() -> Self {
        PreprocessorConfig {
            dedup_window: SimDuration::from_mins(5),
            refresh_interval: SimDuration::from_secs(120),
            persistence_threshold: 2,
            persistence_window: SimDuration::from_secs(30),
            corroboration_window: SimDuration::from_secs(120),
        }
    }
}

impl PreprocessorConfig {
    /// Sets the identical-alert consolidation window.
    pub fn with_dedup_window(mut self, window: SimDuration) -> Self {
        self.dedup_window = window;
        self
    }

    /// Sets the refresh interval of long-lived consolidated groups.
    pub fn with_refresh_interval(mut self, interval: SimDuration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Sets the persistence-gate threshold.
    pub fn with_persistence_threshold(mut self, threshold: u32) -> Self {
        self.persistence_threshold = threshold;
        self
    }

    /// Sets the persistence-gate window.
    pub fn with_persistence_window(mut self, window: SimDuration) -> Self {
        self.persistence_window = window;
        self
    }

    /// Sets the cross-source corroboration window.
    pub fn with_corroboration_window(mut self, window: SimDuration) -> Self {
        self.corroboration_window = window;
        self
    }
}

/// Alert kinds that must persist before being reported (stage 2).
fn needs_persistence(kind: AlertKind) -> bool {
    matches!(
        kind,
        AlertKind::PacketLossIcmp
            | AlertKind::PacketLossTcp
            | AlertKind::PacketLossSource
            | AlertKind::LatencyJitter
            | AlertKind::HighCpu
            | AlertKind::HighMemory
            | AlertKind::TrafficSurge
    )
}

/// Alert kinds gated on cross-source corroboration (stage 3).
fn needs_corroboration(kind: AlertKind) -> bool {
    matches!(kind, AlertKind::TrafficDrop)
}

/// True when an alert can corroborate a held traffic drop: definite
/// failures or device-visible root causes.
fn corroborates(class: AlertClass) -> bool {
    matches!(class, AlertClass::Failure | AlertClass::RootCause)
}

/// Running counters for the preprocessing experiments (Fig. 8b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Raw alerts pushed in.
    pub raw: u64,
    /// Structured alerts emitted (first occurrences + refreshes).
    pub emitted: u64,
    /// Raw alerts absorbed by identical-alert consolidation.
    pub deduplicated: u64,
    /// Alerts dropped by the persistence gate.
    pub filtered_sporadic: u64,
    /// Traffic drops discarded for lack of corroboration.
    pub filtered_uncorroborated: u64,
    /// `Abnormal`-class alerts shed by the streaming producer under load,
    /// before they ever reached the preprocessor.
    #[serde(default)]
    pub shed_abnormal: u64,
    /// `RootCause`-class alerts shed by the streaming producer under load.
    #[serde(default)]
    pub shed_root_cause: u64,
}

impl PreprocessStats {
    /// Total alerts shed by the streaming producer (never includes
    /// `Failure`-class alerts — those are never shed).
    pub fn shed(&self) -> u64 {
        self.shed_abnormal + self.shed_root_cause
    }

    /// Folds counters from a later stream segment into this one (used by
    /// the supervisor to accumulate totals across worker restarts).
    pub fn merge(&mut self, other: &PreprocessStats) {
        self.raw += other.raw;
        self.emitted += other.emitted;
        self.deduplicated += other.deduplicated;
        self.filtered_sporadic += other.filtered_sporadic;
        self.filtered_uncorroborated += other.filtered_uncorroborated;
        self.shed_abnormal += other.shed_abnormal;
        self.shed_root_cause += other.shed_root_cause;
    }
}

/// The preprocessor's registered metric handles (detached no-ops when the
/// pipeline runs without observability).
#[derive(Debug, Clone, Default)]
struct PreprocessObs {
    raw: Counter,
    emitted: Counter,
    deduplicated: Counter,
    filtered_sporadic: Counter,
    filtered_uncorroborated: Counter,
    classify_hits: Counter,
    classify_misses: Counter,
    tracer: StageTracer,
}

impl PreprocessObs {
    fn registered(obs: &Observability) -> Self {
        let reg = obs.registry();
        PreprocessObs {
            raw: reg.counter(
                "skynet_preprocess_raw_total",
                "raw alerts entering the preprocessor (peer splits count twice)",
            ),
            emitted: reg.counter(
                "skynet_preprocess_emitted_total",
                "structured alerts emitted (first occurrences + refreshes)",
            ),
            deduplicated: reg.counter(
                "skynet_preprocess_deduplicated_total",
                "raw alerts absorbed by identical-alert or surge consolidation",
            ),
            filtered_sporadic: reg.counter(
                "skynet_preprocess_filtered_sporadic_total",
                "alerts dropped by the persistence gate",
            ),
            filtered_uncorroborated: reg.counter(
                "skynet_preprocess_filtered_uncorroborated_total",
                "traffic drops discarded for lack of corroboration",
            ),
            classify_hits: reg.counter(
                "skynet_classify_cache_hits_total",
                "syslog classifications served from this worker's memo",
            ),
            classify_misses: reg.counter(
                "skynet_classify_cache_misses_total",
                "syslog classifications that walked the FT-tree",
            ),
            tracer: obs.tracer(),
        }
    }
}

#[derive(Debug, Clone)]
struct OpenGroup {
    alert: StructuredAlert,
    last_emitted: SimTime,
}

#[derive(Debug, Clone)]
struct PendingPersistence {
    alert: StructuredAlert,
    sightings: u32,
}

/// One open `(type, location)` dedup group in a [`PreprocessorState`].
///
/// Locations travel as full [`LocationPath`]s because the preprocessor's
/// interner starts empty and grows with the stream: a restored process
/// re-interns every path, so the dense ids never need to survive serde.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OpenEntry {
    ty: AlertType,
    location: LocationPath,
    alert: StructuredAlert,
    last_emitted: SimTime,
}

/// One pending persistence gate in a [`PreprocessorState`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PendingEntry {
    ty: AlertType,
    location: LocationPath,
    alert: StructuredAlert,
    sightings: u32,
}

/// Serializable mid-stream consolidation state for warm restarts.
///
/// Captures everything [`Preprocessor::push`] consults — open dedup
/// groups, pending persistence gates, held uncorroborated drops,
/// recent corroborators and surge representatives — plus the running
/// [`PreprocessStats`]. Restoring this state into a preprocessor built
/// with the same config and classifier makes the tail of the stream
/// behave exactly as if the process had never stopped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocessorState {
    open: Vec<OpenEntry>,
    pending: Vec<PendingEntry>,
    held_drops: Vec<(LocationPath, StructuredAlert)>,
    corroborators: Vec<(SimTime, LocationPath)>,
    recent_surges: Vec<(LocationPath, SimTime)>,
    stats: PreprocessStats,
}

/// The streaming preprocessor. Push time-ordered raw alerts, collect
/// structured alerts.
#[derive(Debug)]
pub struct Preprocessor {
    cfg: PreprocessorConfig,
    /// Shared FT-tree classifier: training is expensive and the tree is
    /// read-only at classification time, so shards and worker restarts
    /// share one instance behind an `Arc` instead of deep-cloning it.
    classifier: Option<Arc<SyslogClassifier>>,
    /// Locations seen so far, interned on first sight. The preprocessor has
    /// no topology, so the interner starts empty and grows with the stream.
    interner: LocationInterner,
    open: HashMap<(AlertType, LocId), OpenGroup>,
    pending: HashMap<(AlertType, LocId), PendingPersistence>,
    held_drops: VecDeque<(LocId, StructuredAlert)>,
    /// Recent corroborating alert locations with timestamps.
    corroborators: VecDeque<(SimTime, LocId)>,
    /// Recent surge emissions per site prefix (related-alert suppression).
    recent_surges: HashMap<LocId, SimTime>,
    stats: PreprocessStats,
    obs: PreprocessObs,
    /// Reusable buffers for the classifier's symbol-interned match path:
    /// the preprocessor is single-threaded per worker, so one scratch
    /// serves every line and the steady-state classify path allocates
    /// nothing.
    scratch: MatchScratch,
    /// Fault-injection arms for the classify / consolidate sites.
    classify_fault: Option<FaultArm>,
    consolidate_fault: Option<FaultArm>,
}

impl Preprocessor {
    /// Builds a preprocessor. The classifier handles raw syslog text; pass
    /// `None` to treat all syslog as [`AlertKind::Unclassified`] (used by
    /// ablations).
    pub fn new(cfg: PreprocessorConfig, classifier: Option<Arc<SyslogClassifier>>) -> Self {
        Preprocessor {
            cfg,
            classifier,
            interner: LocationInterner::new(),
            open: HashMap::new(),
            pending: HashMap::new(),
            held_drops: VecDeque::new(),
            corroborators: VecDeque::new(),
            recent_surges: HashMap::new(),
            stats: PreprocessStats::default(),
            obs: PreprocessObs::default(),
            scratch: MatchScratch::new(),
            classify_fault: None,
            consolidate_fault: None,
        }
    }

    /// Attaches the preprocessor to a shared [`Observability`] handle:
    /// consolidation counters and per-alert stage tracing start feeding it.
    pub fn with_observability(mut self, obs: &Observability) -> Self {
        self.obs = PreprocessObs::registered(obs);
        self
    }

    /// Arms the preprocessor's fault-injection sites. A firing classify
    /// fault degrades the alert to [`AlertKind::Unclassified`]; a firing
    /// consolidate fault bypasses consolidation and emits the observation
    /// directly (duplicates leak through instead of alerts being lost).
    pub fn with_faults(
        mut self,
        classify: Option<FaultArm>,
        consolidate: Option<FaultArm>,
    ) -> Self {
        self.classify_fault = classify;
        self.consolidate_fault = consolidate;
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> PreprocessStats {
        self.stats
    }

    /// Captures the mid-stream consolidation state for a warm restart.
    ///
    /// Entries are widened from dense [`LocId`]s to [`LocationPath`]s and
    /// sorted by `(type, location)` so two snapshots of the same state
    /// serialize identically regardless of hash-map iteration order.
    pub fn snapshot_state(&self) -> PreprocessorState {
        let mut open: Vec<OpenEntry> = self
            .open
            .iter()
            .map(|(&(ty, loc), group)| OpenEntry {
                ty,
                location: self.interner.path(loc).clone(),
                alert: group.alert.clone(),
                last_emitted: group.last_emitted,
            })
            .collect();
        open.sort_by(|a, b| (a.ty, &a.location).cmp(&(b.ty, &b.location)));
        let mut pending: Vec<PendingEntry> = self
            .pending
            .iter()
            .map(|(&(ty, loc), gate)| PendingEntry {
                ty,
                location: self.interner.path(loc).clone(),
                alert: gate.alert.clone(),
                sightings: gate.sightings,
            })
            .collect();
        pending.sort_by(|a, b| (a.ty, &a.location).cmp(&(b.ty, &b.location)));
        let mut recent_surges: Vec<(LocationPath, SimTime)> = self
            .recent_surges
            .iter()
            .map(|(&site, &t)| (self.interner.path(site).clone(), t))
            .collect();
        recent_surges.sort_by(|a, b| a.0.cmp(&b.0));
        PreprocessorState {
            open,
            pending,
            held_drops: self
                .held_drops
                .iter()
                .map(|(loc, d)| (self.interner.path(*loc).clone(), d.clone()))
                .collect(),
            corroborators: self
                .corroborators
                .iter()
                .map(|&(t, loc)| (t, self.interner.path(loc).clone()))
                .collect(),
            recent_surges,
            stats: self.stats,
        }
    }

    /// Restores the state captured by [`Preprocessor::snapshot_state`].
    ///
    /// The preprocessor must have been built with the same config and
    /// classifier as the one that was snapshotted; every location is
    /// re-interned, so this works on a fresh (empty) interner.
    pub fn restore_state(&mut self, state: PreprocessorState) {
        let interner = &mut self.interner;
        self.open = state
            .open
            .into_iter()
            .map(|e| {
                (
                    (e.ty, interner.intern(&e.location)),
                    OpenGroup {
                        alert: e.alert,
                        last_emitted: e.last_emitted,
                    },
                )
            })
            .collect();
        self.pending = state
            .pending
            .into_iter()
            .map(|e| {
                (
                    (e.ty, interner.intern(&e.location)),
                    PendingPersistence {
                        alert: e.alert,
                        sightings: e.sightings,
                    },
                )
            })
            .collect();
        self.held_drops = state
            .held_drops
            .into_iter()
            .map(|(path, d)| (interner.intern(&path), d))
            .collect();
        self.corroborators = state
            .corroborators
            .into_iter()
            .map(|(t, path)| (t, interner.intern(&path)))
            .collect();
        self.recent_surges = state
            .recent_surges
            .into_iter()
            .map(|(path, t)| (interner.intern(&path), t))
            .collect();
        self.stats = state.stats;
    }

    /// Processes one raw alert, appending any resulting structured alerts.
    ///
    /// # Panics
    ///
    /// Panics if the alert (or its peer) is located at the hierarchy root;
    /// the [`IngestGuard`](crate::IngestGuard) rejects such alerts upstream.
    pub fn push(&mut self, raw: &RawAlert, out: &mut Vec<StructuredAlert>) {
        self.stats.raw += 1;
        self.obs.raw.inc();
        let now = raw.timestamp;

        // Normalization: resolve the kind. An injected classify fault
        // degrades the alert to Unclassified instead of dropping it.
        let kind = if faultinject::trip(&self.classify_fault, raw.trace, now) {
            AlertKind::Unclassified
        } else {
            match &raw.body {
                AlertBody::Known(k) => *k,
                AlertBody::SyslogText(text) => match self.classifier.as_deref() {
                    Some(classifier) => {
                        let (kind, hit) = classifier.classify_memoized(text, &mut self.scratch);
                        if hit {
                            self.obs.classify_hits.inc();
                        } else {
                            self.obs.classify_misses.inc();
                        }
                        kind
                    }
                    None => AlertKind::Unclassified,
                },
            }
        };

        // An injected consolidate fault bypasses the three consolidation
        // stages: the observation is emitted directly (per endpoint), so
        // downstream sees duplicates rather than losing the alert.
        if faultinject::trip(&self.consolidate_fault, raw.trace, now) {
            self.emit(StructuredAlert::from_raw(raw, kind), out);
            if let Some(peer) = &raw.peer {
                self.stats.raw += 1;
                self.obs.raw.inc();
                let mut mirrored = StructuredAlert::from_raw(raw, kind);
                mirrored.location = peer.clone();
                self.emit(mirrored, out);
            }
            self.expire(now, out);
            return;
        }

        // Location: a link/path alert is split into two alerts, one per
        // endpoint (§4.1).
        self.ingest(raw, kind, raw.location.clone(), now, out);
        if let Some(peer) = &raw.peer {
            self.stats.raw += 1;
            self.obs.raw.inc();
            self.ingest(raw, kind, peer.clone(), now, out);
        }
        self.expire(now, out);
    }

    fn ingest(
        &mut self,
        raw: &RawAlert,
        kind: AlertKind,
        location: LocationPath,
        now: SimTime,
        out: &mut Vec<StructuredAlert>,
    ) {
        let ty = AlertType::new(raw.source, kind);
        let loc = self.interner.intern(&location);
        let key = (ty, loc);
        let mut candidate = StructuredAlert {
            ty,
            first_seen: now,
            last_seen: now,
            location,
            count: 1,
            magnitude: raw.magnitude,
            cause: raw.cause,
            trace: raw.trace,
        };

        // Stage 1: identical-alert consolidation.
        if let Some(group) = self.open.get_mut(&key) {
            if now.since(group.alert.last_seen) <= self.cfg.dedup_window {
                group.alert.absorb(&candidate);
                self.stats.deduplicated += 1;
                self.obs.deduplicated.inc();
                self.obs.tracer.record(
                    raw.trace,
                    now,
                    Stage::PreprocessDropped(DropReason::Consolidated),
                );
                // Periodic refresh keeps downstream trees fresh while the
                // condition lasts.
                let refresh = if now.since(group.last_emitted) >= self.cfg.refresh_interval {
                    group.last_emitted = now;
                    Some(group.alert.clone())
                } else {
                    None
                };
                if let Some(alert) = refresh {
                    self.emit(alert, out);
                }
                return;
            }
            self.open.remove(&key);
        }

        // Stage 2a: persistence gate for sporadic-prone kinds.
        if needs_persistence(kind) {
            let threshold = self.cfg.persistence_threshold;
            let window = self.cfg.persistence_window;
            let pending = self.pending.entry(key).or_insert_with(|| {
                let mut empty = candidate.clone();
                empty.count = 0; // absorbed below
                PendingPersistence {
                    alert: empty,
                    sightings: 0,
                }
            });
            if pending.sightings > 0 && now.since(pending.alert.last_seen) > window {
                // Stale pending state: restart the count.
                let mut empty = candidate.clone();
                empty.count = 0;
                pending.alert = empty;
                pending.sightings = 0;
            }
            pending.sightings += 1;
            pending.alert.absorb(&candidate);
            if pending.sightings < threshold {
                self.stats.filtered_sporadic += 1;
                self.obs.filtered_sporadic.inc();
                self.obs.tracer.record(
                    raw.trace,
                    now,
                    Stage::PreprocessDropped(DropReason::Sporadic),
                );
                return;
            }
            // The entry was inserted above; fall back to the bare candidate
            // rather than panicking if that invariant ever breaks.
            candidate = match self.pending.remove(&key) {
                Some(pending) => pending.alert,
                None => candidate,
            };
            // The aggregate emits under its earliest constituent's trace;
            // this raw's own trace ends here unless it is that earliest.
            if raw.trace != candidate.trace {
                self.obs.tracer.record(
                    raw.trace,
                    now,
                    Stage::PreprocessDropped(DropReason::Consolidated),
                );
            }
        }

        // Stage 2b: related-alert suppression — one surge representative
        // per site within the dedup window.
        if kind == AlertKind::TrafficSurge {
            let site = self.interner.truncate_at(loc, LocationLevel::Site);
            if let Some(&t) = self.recent_surges.get(&site) {
                if now.since(t) <= self.cfg.dedup_window {
                    self.stats.deduplicated += 1;
                    self.obs.deduplicated.inc();
                    self.obs.tracer.record(
                        raw.trace,
                        now,
                        Stage::PreprocessDropped(DropReason::SurgeDuplicate),
                    );
                    return;
                }
            }
            self.recent_surges.insert(site, now);
        }

        // Stage 3: cross-source corroboration for traffic drops.
        if needs_corroboration(kind) {
            if self.is_corroborated(loc, now) {
                self.open.insert(
                    key,
                    OpenGroup {
                        alert: candidate.clone(),
                        last_emitted: now,
                    },
                );
                self.emit(candidate, out);
            } else {
                self.held_drops.push_back((loc, candidate));
            }
            return;
        }

        // Corroborating alerts release held drops near them.
        if corroborates(kind.class()) {
            self.corroborators.push_back((now, loc));
            let interner = &self.interner;
            let window = self.cfg.corroboration_window;
            let mut released = Vec::new();
            self.held_drops.retain(|&(dloc, ref d)| {
                let related = interner.contains(dloc, loc) || interner.contains(loc, dloc);
                let fresh = now.since(d.last_seen) <= window;
                if related && fresh {
                    released.push((dloc, d.clone()));
                    false
                } else {
                    true
                }
            });
            for (dloc, drop) in released {
                let key = (drop.ty, dloc);
                self.open.insert(
                    key,
                    OpenGroup {
                        alert: drop.clone(),
                        last_emitted: now,
                    },
                );
                self.emit(drop, out);
            }
        }

        self.open.insert(
            key,
            OpenGroup {
                alert: candidate.clone(),
                last_emitted: now,
            },
        );
        self.emit(candidate, out);
    }

    fn is_corroborated(&self, loc: LocId, now: SimTime) -> bool {
        self.corroborators.iter().any(|&(t, c)| {
            now.since(t) <= self.cfg.corroboration_window
                && (self.interner.contains(c, loc) || self.interner.contains(loc, c))
        })
    }

    fn emit(&mut self, alert: StructuredAlert, out: &mut Vec<StructuredAlert>) {
        self.stats.emitted += 1;
        self.obs.emitted.inc();
        self.obs
            .tracer
            .record(alert.trace, alert.last_seen, Stage::PreprocessEmitted);
        out.push(alert);
    }

    /// Drops expired held/pending state. Uncorroborated drops die silently
    /// (except for their trace events).
    fn expire(&mut self, now: SimTime, _out: &mut [StructuredAlert]) {
        let window = self.cfg.corroboration_window;
        let before = self.held_drops.len();
        let tracer = &self.obs.tracer;
        self.held_drops.retain(|(_, d)| {
            let fresh = now.since(d.last_seen) <= window;
            if !fresh {
                tracer.record(
                    d.trace,
                    now,
                    Stage::PreprocessDropped(DropReason::Uncorroborated),
                );
            }
            fresh
        });
        let expired = (before - self.held_drops.len()) as u64;
        self.stats.filtered_uncorroborated += expired;
        self.obs.filtered_uncorroborated.add(expired);
        while let Some(&(t, _)) = self.corroborators.front() {
            if now.since(t) > window {
                self.corroborators.pop_front();
            } else {
                break;
            }
        }
    }

    /// Flushes end-of-stream state (held drops are discarded as
    /// uncorroborated).
    pub fn finish(&mut self) {
        self.stats.filtered_uncorroborated += self.held_drops.len() as u64;
        self.obs
            .filtered_uncorroborated
            .add(self.held_drops.len() as u64);
        for (_, d) in self.held_drops.drain(..) {
            self.obs.tracer.record(
                d.trace,
                d.last_seen,
                Stage::PreprocessDropped(DropReason::Uncorroborated),
            );
        }
        self.pending.clear();
        self.open.clear();
    }

    /// Convenience: processes a whole batch and returns the structured
    /// stream.
    pub fn process_batch(&mut self, alerts: &[RawAlert]) -> Vec<StructuredAlert> {
        let mut out = Vec::new();
        for a in alerts {
            self.push(a, &mut out);
        }
        self.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::DataSource;

    fn loc(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    fn pp() -> Preprocessor {
        Preprocessor::new(PreprocessorConfig::default(), None)
    }

    fn known(source: DataSource, kind: AlertKind, secs: u64, location: &str) -> RawAlert {
        RawAlert::known(source, SimTime::from_secs(secs), loc(location), kind)
    }

    #[test]
    fn identical_alerts_are_consolidated() {
        let mut p = pp();
        let mut out = Vec::new();
        for i in 0..10 {
            p.push(
                &known(
                    DataSource::OutOfBand,
                    AlertKind::DeviceInaccessible,
                    i * 2,
                    "R|C|L|S|K|d1",
                ),
                &mut out,
            );
        }
        assert_eq!(out.len(), 1, "repeats within the window emit once");
        assert_eq!(p.stats().deduplicated, 9);
    }

    #[test]
    fn long_lived_groups_refresh_periodically() {
        let mut p = pp();
        let mut out = Vec::new();
        for i in 0..13 {
            p.push(
                &known(
                    DataSource::OutOfBand,
                    AlertKind::DeviceInaccessible,
                    i * 30,
                    "R|C|L|S|K|d1",
                ),
                &mut out,
            );
        }
        // 6 minutes of repeats at 30 s, refresh every 60 s: first emission
        // plus refreshes at 60/120/...; all the same group.
        assert!(out.len() >= 4 && out.len() <= 8, "got {}", out.len());
        let last = out.last().unwrap();
        assert_eq!(last.count, 13);
        assert_eq!(last.first_seen, SimTime::ZERO);
    }

    #[test]
    fn reoccurrence_after_window_is_a_new_alert() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &known(DataSource::Snmp, AlertKind::LinkDown, 0, "R|C|L|S|K|d1"),
            &mut out,
        );
        p.push(
            &known(DataSource::Snmp, AlertKind::LinkDown, 600, "R|C|L|S|K|d1"),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|a| a.count == 1));
    }

    #[test]
    fn sporadic_packet_loss_is_filtered_persistent_is_kept() {
        let mut p = pp();
        let mut out = Vec::new();
        // One isolated blip: filtered.
        p.push(
            &known(DataSource::Ping, AlertKind::PacketLossIcmp, 0, "R|C|L|S"),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.stats().filtered_sporadic, 1);
        // A second sighting within the persistence window: emitted with the
        // full history.
        p.push(
            &known(DataSource::Ping, AlertKind::PacketLossIcmp, 2, "R|C|L|S"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 2);
        assert_eq!(out[0].first_seen, SimTime::ZERO);
    }

    #[test]
    fn stale_persistence_counts_restart() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &known(DataSource::Ping, AlertKind::PacketLossIcmp, 0, "R|C|L|S"),
            &mut out,
        );
        // 10 minutes later — outside the persistence window.
        p.push(
            &known(DataSource::Ping, AlertKind::PacketLossIcmp, 600, "R|C|L|S"),
            &mut out,
        );
        assert!(out.is_empty(), "two blips far apart are both sporadic");
    }

    #[test]
    fn peer_alerts_are_split_into_two_locations() {
        let mut p = pp();
        let mut out = Vec::new();
        let mut raw = known(DataSource::Ping, AlertKind::LinkDown, 0, "R|C|L|S1");
        raw.peer = Some(loc("R|C|L|S2"));
        p.push(&raw, &mut out);
        assert_eq!(out.len(), 2);
        let locs: Vec<String> = out.iter().map(|a| a.location.to_string()).collect();
        assert!(locs.contains(&"R|C|L|S1".to_string()));
        assert!(locs.contains(&"R|C|L|S2".to_string()));
    }

    #[test]
    fn uncorroborated_traffic_drop_is_discarded() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &known(
                DataSource::TrafficStats,
                AlertKind::TrafficDrop,
                0,
                "R|C|L|S",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "a lone drop is expected user behaviour");
        // Push something far away much later to trigger expiry.
        p.push(
            &known(DataSource::Snmp, AlertKind::LinkDown, 500, "Q|C|L|S|K|d9"),
            &mut out,
        );
        p.finish();
        assert!(p.stats().filtered_uncorroborated >= 1);
        assert!(out.iter().all(|a| a.ty.kind != AlertKind::TrafficDrop));
    }

    #[test]
    fn corroborated_traffic_drop_is_released() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &known(
                DataSource::TrafficStats,
                AlertKind::TrafficDrop,
                0,
                "R|C|L|S",
            ),
            &mut out,
        );
        assert!(out.is_empty());
        // A root-cause alert under the same site corroborates it.
        p.push(
            &known(DataSource::Snmp, AlertKind::LinkDown, 30, "R|C|L|S|K|d1"),
            &mut out,
        );
        let kinds: Vec<AlertKind> = out.iter().map(|a| a.ty.kind).collect();
        assert!(kinds.contains(&AlertKind::TrafficDrop));
        assert!(kinds.contains(&AlertKind::LinkDown));
    }

    #[test]
    fn drop_already_corroborated_emits_immediately() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &known(DataSource::Snmp, AlertKind::LinkDown, 0, "R|C|L|S|K|d1"),
            &mut out,
        );
        p.push(
            &known(
                DataSource::TrafficStats,
                AlertKind::TrafficDrop,
                10,
                "R|C|L|S",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn surge_ripples_keep_one_representative_per_site() {
        let mut p = pp();
        let mut out = Vec::new();
        for d in ["d1", "d2", "d3"] {
            // Two sightings each to pass persistence.
            for t in [0, 2] {
                p.push(
                    &known(
                        DataSource::Snmp,
                        AlertKind::TrafficSurge,
                        t,
                        &format!("R|C|L|S|K|{d}"),
                    ),
                    &mut out,
                );
            }
        }
        assert_eq!(out.len(), 1, "adjacent surges are related alerts");
    }

    #[test]
    fn syslog_without_classifier_is_unclassified() {
        let mut p = pp();
        let mut out = Vec::new();
        p.push(
            &RawAlert::syslog(SimTime::ZERO, loc("R|C|L|S|K|d1"), "mystery message"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ty.kind, AlertKind::Unclassified);
        assert_eq!(out[0].ty.source, DataSource::Syslog);
    }

    #[test]
    fn preprocessor_state_round_trips_mid_flood() {
        // Build up every piece of mid-stream state: an open dedup group,
        // a half-armed persistence gate, a held traffic drop, a recent
        // corroborator and a surge representative.
        let mut live = pp();
        let mut live_out = Vec::new();
        let feed_head = |p: &mut Preprocessor, out: &mut Vec<StructuredAlert>| {
            p.push(
                &known(DataSource::Snmp, AlertKind::LinkDown, 0, "R|C|L|S|K|d1"),
                out,
            );
            p.push(
                &known(DataSource::Ping, AlertKind::PacketLossIcmp, 5, "R|C|L|S"),
                out,
            );
            for t in [6, 8] {
                p.push(
                    &known(DataSource::Snmp, AlertKind::TrafficSurge, t, "R|C|L|S|K|d2"),
                    out,
                );
            }
            p.push(
                &known(
                    DataSource::TrafficStats,
                    AlertKind::TrafficDrop,
                    10,
                    "Q|C|L|S",
                ),
                out,
            );
        };
        feed_head(&mut live, &mut live_out);

        let state = live.snapshot_state();
        let json = serde_json::to_string(&state).unwrap();
        let restored_state: PreprocessorState = serde_json::from_str(&json).unwrap();
        let mut restored = pp();
        restored.restore_state(restored_state);
        assert_eq!(restored.stats(), live.stats());

        // The tail exercises each restored structure: a dedup absorb, the
        // second persistence sighting, a suppressed surge ripple, and a
        // corroborator that releases the held drop.
        let tail = [
            known(DataSource::Snmp, AlertKind::LinkDown, 20, "R|C|L|S|K|d1"),
            known(DataSource::Ping, AlertKind::PacketLossIcmp, 21, "R|C|L|S"),
            known(
                DataSource::Snmp,
                AlertKind::TrafficSurge,
                22,
                "R|C|L|S|K|d3",
            ),
            known(DataSource::Snmp, AlertKind::LinkDown, 30, "Q|C|L|S|K|d7"),
        ];
        let live_mark = live_out.len();
        let mut restored_out = Vec::new();
        for raw in &tail {
            live.push(raw, &mut live_out);
            restored.push(raw, &mut restored_out);
        }
        live.finish();
        restored.finish();
        assert_eq!(&live_out[live_mark..], &restored_out[..]);
        assert_eq!(restored.stats(), live.stats());
        let kinds: Vec<AlertKind> = restored_out.iter().map(|a| a.ty.kind).collect();
        assert!(
            kinds.contains(&AlertKind::TrafficDrop),
            "restored corroboration state must release the held drop"
        );
    }

    #[test]
    fn stats_add_up() {
        let mut p = pp();
        let mut out = Vec::new();
        for i in 0..20 {
            p.push(
                &known(DataSource::Snmp, AlertKind::LinkDown, i, "R|C|L|S|K|d1"),
                &mut out,
            );
        }
        let s = p.stats();
        assert_eq!(s.raw, 20);
        assert_eq!(s.emitted as usize, out.len());
        assert_eq!(s.deduplicated, 19);
    }
}
