//! Syslog classification: FT-tree templates mapped to alert kinds.
//!
//! "To process Syslog, templates are employed to automatically convert
//! command-line outputs into alert types. … The classification process
//! starts with manually assigning types to existing alerts." (§4.1)
//!
//! [`SyslogClassifier::train`] takes a *labelled* historical corpus — the
//! stand-in for the paper's months of manual labelling — mines an FT-tree
//! from the raw lines, then assigns each template the majority label of the
//! training lines that match it. At run time a raw line is matched against
//! the tree and inherits its template's kind; unmatched lines become
//! [`AlertKind::Unclassified`].
//!
//! The run-time path is allocation- and contention-lean: matching goes
//! through the tree's symbol-interned [`MatchScratch`] walk (no per-line
//! `String`/`Vec` allocations), and the repeat-line memo is striped across
//! power-of-two lock shards keyed by a 128-bit line fingerprint, so shard
//! workers sharing one classifier behind an `Arc` never serialize on a
//! single lock. Earlier revisions keyed the memo by a bare 64-bit
//! `DefaultHasher` value — two colliding lines silently inherited each
//! other's kind — and one global `Mutex<HashMap>`; both are gone.

use parking_lot::Mutex;
use skynet_ftree::{FtTree, FtTreeBuilder, MatchScratch, TemplateId};
use skynet_model::AlertKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bound on the classification memo (total across stripes). A flood
/// repeats a small set of templates with a modest variable vocabulary, so
/// this covers steady state; on overflow a stripe is cleared rather than
/// evicted piecemeal — cheap, and the hot lines repopulate it within a few
/// alerts.
const CLASSIFY_CACHE_CAPACITY: usize = 4096;

/// Number of memo stripes. Power of two so the stripe index is a mask of
/// the fingerprint's low bits; 8 comfortably exceeds the shard counts the
/// pipeline runs (1/4) while keeping per-stripe maps dense.
const CLASSIFY_STRIPES: usize = 8;

/// 128-bit fingerprint over the raw line bytes: the classify-memo key.
///
/// The memo key must make cross-line collisions practically impossible —
/// a collision silently misclassifies one of the two lines for as long as
/// the memo entry lives. At 64 bits the birthday bound over a 4096-entry
/// memo is small but real across a long-lived streaming process; at 128
/// bits it is negligible.
///
/// The mixer consumes 8-byte words (a byte-at-a-time hash is the single
/// hottest instruction stream on the memo-hit path, where nothing else
/// runs) into two multiply-rotate lanes seeded with the length, then
/// finalizes each lane with a splitmix64-style avalanche. Stable across
/// processes, no dependencies.
pub fn fingerprint128(line: &str) -> u128 {
    const K1: u64 = 0x9e37_79b9_7f4a_7c15;
    const K2: u64 = 0xff51_afd7_ed55_8ccd;
    const K3: u64 = 0xc4ce_b9fe_1a85_ec53;
    fn avalanche(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(K2);
        x ^= x >> 33;
        x = x.wrapping_mul(K3);
        x ^ (x >> 33)
    }
    let bytes = line.as_bytes();
    // Seeding both lanes with the length keeps a short line from colliding
    // with a longer one whose zero-padded tail word matches.
    let mut h1: u64 = K1 ^ (bytes.len() as u64);
    let mut h2: u64 = K2 ^ (bytes.len() as u64).wrapping_mul(K1);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        h1 = (h1 ^ w).wrapping_mul(K2).rotate_left(29);
        h2 = h2.wrapping_add(w).wrapping_mul(K3).rotate_left(31) ^ h1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let w = u64::from_le_bytes(tail);
        h1 = (h1 ^ w).wrapping_mul(K2).rotate_left(29);
        h2 = h2.wrapping_add(w).wrapping_mul(K3).rotate_left(31) ^ h1;
    }
    ((avalanche(h1) as u128) << 64) | avalanche(h2 ^ h1) as u128
}

/// Pass-through hasher for memo keys: the 128-bit fingerprint is already a
/// high-quality hash, so the stripe maps fold it to 64 bits instead of
/// running SipHash over it again on every probe.
#[derive(Clone, Copy, Default)]
struct FingerprintHasher(u64);

impl std::hash::Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("memo keys are u128 fingerprints and hash via write_u128");
    }
    fn write_u128(&mut self, v: u128) {
        // Xor the halves: the low bits also pick the stripe, so folding in
        // the high half keeps bucket indices uniform within a stripe.
        self.0 = (v >> 64) as u64 ^ v as u64;
    }
}

type MemoMap = HashMap<u128, AlertKind, std::hash::BuildHasherDefault<FingerprintHasher>>;

fn new_stripes() -> Box<[Mutex<MemoMap>]> {
    (0..CLASSIFY_STRIPES)
        .map(|_| Mutex::new(MemoMap::default()))
        .collect()
}

thread_local! {
    /// Scratch for the convenience [`SyslogClassifier::classify`] entry
    /// point. Hot callers (the preprocessor) own their scratch and call
    /// [`SyslogClassifier::classify_memoized`] directly.
    static CLASSIFY_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// FT-tree-backed syslog classifier.
///
/// Identical raw lines are classified once: a bounded, lock-striped memo
/// keyed by a 128-bit line fingerprint skips normalization and the tree
/// walk on repeats, which is the common case in a flood (tools retransmit
/// and devices repeat the same message with the same variables). The memo
/// uses interior mutability so classification stays `&self` and one
/// classifier can be shared across shard workers behind an `Arc`.
#[derive(Debug)]
pub struct SyslogClassifier {
    tree: FtTree,
    /// Template kind labels, dense by `TemplateId` (`None` = unlabelled).
    kinds: Vec<Option<AlertKind>>,
    stripes: Box<[Mutex<MemoMap>]>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Forces the String-keyed oracle matcher on memo misses — the
    /// differential baseline for tests and benchmarks.
    string_oracle: bool,
}

impl Clone for SyslogClassifier {
    fn clone(&self) -> Self {
        // Clones start with a *cold* memo and zeroed counters: a per-shard
        // clone must report its own hit rate, not inherit the parent's.
        SyslogClassifier {
            tree: self.tree.clone(),
            kinds: self.kinds.clone(),
            stripes: new_stripes(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            string_oracle: self.string_oracle,
        }
    }
}

impl SyslogClassifier {
    /// Trains on a labelled corpus: mines templates from the raw lines and
    /// assigns each template its matching lines' majority kind.
    pub fn train(corpus: &[(String, AlertKind)], min_support: u32, max_depth: usize) -> Self {
        let mut builder = FtTreeBuilder::new(min_support, max_depth);
        for (line, _) in corpus {
            builder.add_line(line);
        }
        let tree = builder.build();

        let mut votes: HashMap<TemplateId, HashMap<AlertKind, u32>> = HashMap::new();
        for (line, kind) in corpus {
            if let Some(t) = tree.match_message(line) {
                *votes.entry(t).or_default().entry(*kind).or_insert(0) += 1;
            }
        }
        let mut kinds: Vec<Option<AlertKind>> = vec![None; tree.templates().len()];
        for (t, tally) in votes {
            let kind = tally
                .into_iter()
                .max_by_key(|&(k, n)| (n, kind_tiebreak(k)))
                .map(|(k, _)| k)
                .unwrap_or(AlertKind::Unclassified);
            kinds[t.0 as usize] = Some(kind);
        }

        SyslogClassifier {
            tree,
            kinds,
            stripes: new_stripes(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            string_oracle: false,
        }
    }

    /// Switches memo misses to the String-keyed oracle matcher. The
    /// classifications are identical (the symbol matcher is differential-
    /// tested against the oracle); this exists so benchmarks and
    /// byte-identity tests can run the whole pipeline on the baseline
    /// path.
    pub fn with_string_oracle(mut self) -> Self {
        self.string_oracle = true;
        self
    }

    /// Classifies one raw syslog line (convenience wrapper over
    /// [`SyslogClassifier::classify_memoized`] with a thread-local
    /// scratch).
    pub fn classify(&self, line: &str) -> AlertKind {
        CLASSIFY_SCRATCH.with(|scratch| self.classify_memoized(line, &mut scratch.borrow_mut()).0)
    }

    /// Classifies one raw syslog line using caller-owned scratch buffers,
    /// returning the kind and whether the memo served it. The steady-state
    /// path — fingerprint, stripe probe, hit — performs no heap
    /// allocation.
    pub fn classify_memoized(&self, line: &str, scratch: &mut MatchScratch) -> (AlertKind, bool) {
        let key = fingerprint128(line);
        let stripe = &self.stripes[(key as usize) & (CLASSIFY_STRIPES - 1)];
        if let Some(&kind) = stripe.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (kind, true);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let kind = if self.string_oracle {
            self.classify_oracle(line)
        } else {
            self.kind_of(self.tree.match_message_with(line, scratch))
        };
        let mut cache = stripe.lock();
        if cache.len() >= CLASSIFY_CACHE_CAPACITY / CLASSIFY_STRIPES {
            cache.clear();
        }
        cache.insert(key, kind);
        (kind, false)
    }

    /// Classifies via the String-keyed oracle matcher, bypassing the memo:
    /// the differential reference for [`SyslogClassifier::classify`].
    pub fn classify_oracle(&self, line: &str) -> AlertKind {
        self.kind_of(self.tree.match_message(line))
    }

    fn kind_of(&self, template: Option<TemplateId>) -> AlertKind {
        template
            .and_then(|t| self.kinds.get(t.0 as usize).copied().flatten())
            .unwrap_or(AlertKind::Unclassified)
    }

    /// Classification calls served from the memo so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Classification calls that walked the tree (memo misses) so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Number of mined templates.
    pub fn template_count(&self) -> usize {
        self.tree.templates().len()
    }

    /// Number of templates carrying a kind label.
    pub fn labelled_template_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_some()).count()
    }
}

/// Deterministic tie-break for majority voting (prefer the more actionable
/// class, then a stable arbitrary order).
fn kind_tiebreak(kind: AlertKind) -> (u8, std::cmp::Reverse<AlertKind>) {
    let class_rank = match kind.class() {
        skynet_model::AlertClass::RootCause => 2,
        skynet_model::AlertClass::Failure => 1,
        skynet_model::AlertClass::Abnormal => 0,
    };
    (class_rank, std::cmp::Reverse(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use skynet_telemetry::tools::syslog::{render_message, syslog_kinds};

    fn training_corpus(lines_per_kind: usize, seed: u64) -> Vec<(String, AlertKind)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut corpus = Vec::new();
        for kind in syslog_kinds() {
            for _ in 0..lines_per_kind {
                corpus.push((render_message(kind, &mut rng), kind));
            }
        }
        corpus
    }

    #[test]
    fn classifier_recovers_kinds_from_fresh_messages() {
        let classifier = SyslogClassifier::train(&training_corpus(50, 1), 3, 8);
        assert!(classifier.template_count() > 0);
        // Classify messages generated with a *different* seed: same
        // structure, different variables.
        let mut rng = ChaCha8Rng::seed_from_u64(999);
        let mut correct = 0usize;
        let mut total = 0usize;
        for kind in syslog_kinds() {
            for _ in 0..20 {
                let line = render_message(kind, &mut rng);
                total += 1;
                if classifier.classify(&line) == kind {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.9,
            "template classification accuracy {accuracy} below 0.9"
        );
    }

    #[test]
    fn unknown_lines_are_unclassified() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 2), 3, 8);
        assert_eq!(
            classifier.classify("the quick brown fox jumps over the lazy dog"),
            AlertKind::Unclassified
        );
        assert_eq!(classifier.classify(""), AlertKind::Unclassified);
    }

    #[test]
    fn repeated_lines_hit_the_memo() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 4), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let kind = syslog_kinds()[0];
        let line = render_message(kind, &mut rng);
        let mut scratch = MatchScratch::new();
        let (first, hit) = classifier.classify_memoized(&line, &mut scratch);
        assert!(!hit, "first sight is a miss");
        assert_eq!(classifier.cache_hits(), 0);
        assert_eq!(classifier.cache_misses(), 1);
        for _ in 0..5 {
            let (kind, hit) = classifier.classify_memoized(&line, &mut scratch);
            assert_eq!(kind, first);
            assert!(hit);
        }
        assert_eq!(classifier.cache_hits(), 5);
        // Unknown lines are memoized too — garbage retransmits are the
        // worst repeat offenders in a malformed storm.
        let garbage = "the quick brown fox jumps over the lazy dog";
        assert_eq!(classifier.classify(garbage), AlertKind::Unclassified);
        assert_eq!(classifier.classify(garbage), AlertKind::Unclassified);
        assert_eq!(classifier.cache_hits(), 6);
        assert_eq!(classifier.cache_misses(), 2);
    }

    #[test]
    fn memo_never_changes_classifications() {
        let cached = SyslogClassifier::train(&training_corpus(30, 8), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for kind in syslog_kinds() {
            for _ in 0..10 {
                let line = render_message(kind, &mut rng);
                let cold = cached.classify(&line);
                let warm = cached.classify(&line);
                assert_eq!(cold, warm);
            }
        }
        assert!(cached.cache_hits() > 0);
    }

    /// Regression for the 64-bit memo-key collision bug: every
    /// classification must agree with the memo-less oracle over a corpus
    /// far larger than the memo, and the 128-bit fingerprints of all
    /// distinct lines must be distinct. (With the old bare-`DefaultHasher`
    /// key, a collision made one line silently inherit the other's kind.)
    #[test]
    fn memoized_classification_agrees_with_oracle_across_a_large_corpus() {
        let classifier = SyslogClassifier::train(&training_corpus(30, 13), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut scratch = MatchScratch::new();
        let mut fingerprints: HashMap<u128, String> = HashMap::new();
        for kind in syslog_kinds() {
            for _ in 0..200 {
                let line = render_message(kind, &mut rng);
                let (memoized, _) = classifier.classify_memoized(&line, &mut scratch);
                assert_eq!(
                    memoized,
                    classifier.classify_oracle(&line),
                    "memo diverged from oracle on {line:?}"
                );
                if let Some(other) = fingerprints.insert(fingerprint128(&line), line.clone()) {
                    assert_eq!(other, line, "fingerprint collision: {other:?} vs {line:?}");
                }
            }
        }
    }

    #[test]
    fn string_oracle_mode_classifies_identically() {
        let corpus = training_corpus(20, 21);
        let fast = SyslogClassifier::train(&corpus, 3, 8);
        let oracle = SyslogClassifier::train(&corpus, 3, 8).with_string_oracle();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for kind in syslog_kinds() {
            for _ in 0..20 {
                let line = render_message(kind, &mut rng);
                assert_eq!(fast.classify(&line), oracle.classify(&line));
            }
        }
    }

    /// Regression: clones used to copy the memo and the hit counter, so a
    /// per-shard clone reported its parent's statistics.
    #[test]
    fn clones_start_with_cold_memo_and_zeroed_stats() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 17), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let line = render_message(syslog_kinds()[0], &mut rng);
        let warm = classifier.classify(&line);
        assert_eq!(classifier.classify(&line), warm);
        assert!(classifier.cache_hits() > 0);

        let clone = classifier.clone();
        assert_eq!(clone.cache_hits(), 0, "clone inherited hit stats");
        assert_eq!(clone.cache_misses(), 0, "clone inherited miss stats");
        let mut scratch = MatchScratch::new();
        let (kind, hit) = clone.classify_memoized(&line, &mut scratch);
        assert_eq!(kind, warm);
        assert!(!hit, "clone inherited a warm memo");
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = training_corpus(20, 3);
        let a = SyslogClassifier::train(&corpus, 3, 8);
        let b = SyslogClassifier::train(&corpus, 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for kind in syslog_kinds() {
            let line = render_message(kind, &mut rng);
            assert_eq!(a.classify(&line), b.classify(&line));
        }
    }
}
