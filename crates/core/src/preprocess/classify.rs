//! Syslog classification: FT-tree templates mapped to alert kinds.
//!
//! "To process Syslog, templates are employed to automatically convert
//! command-line outputs into alert types. … The classification process
//! starts with manually assigning types to existing alerts." (§4.1)
//!
//! [`SyslogClassifier::train`] takes a *labelled* historical corpus — the
//! stand-in for the paper's months of manual labelling — mines an FT-tree
//! from the raw lines, then assigns each template the majority label of the
//! training lines that match it. At run time a raw line is matched against
//! the tree and inherits its template's kind; unmatched lines become
//! [`AlertKind::Unclassified`].

use skynet_ftree::{FtTree, FtTreeBuilder, TemplateId};
use skynet_model::AlertKind;
use std::collections::HashMap;

/// FT-tree-backed syslog classifier.
#[derive(Debug, Clone)]
pub struct SyslogClassifier {
    tree: FtTree,
    kind_by_template: HashMap<TemplateId, AlertKind>,
}

impl SyslogClassifier {
    /// Trains on a labelled corpus: mines templates from the raw lines and
    /// assigns each template its matching lines' majority kind.
    pub fn train(corpus: &[(String, AlertKind)], min_support: u32, max_depth: usize) -> Self {
        let mut builder = FtTreeBuilder::new(min_support, max_depth);
        for (line, _) in corpus {
            builder.add_line(line);
        }
        let tree = builder.build();

        let mut votes: HashMap<TemplateId, HashMap<AlertKind, u32>> = HashMap::new();
        for (line, kind) in corpus {
            if let Some(t) = tree.match_message(line) {
                *votes.entry(t).or_default().entry(*kind).or_insert(0) += 1;
            }
        }
        let kind_by_template = votes
            .into_iter()
            .map(|(t, tally)| {
                let kind = tally
                    .into_iter()
                    .max_by_key(|&(k, n)| (n, kind_tiebreak(k)))
                    .map(|(k, _)| k)
                    .unwrap_or(AlertKind::Unclassified);
                (t, kind)
            })
            .collect();

        SyslogClassifier {
            tree,
            kind_by_template,
        }
    }

    /// Classifies one raw syslog line.
    pub fn classify(&self, line: &str) -> AlertKind {
        self.tree
            .match_message(line)
            .and_then(|t| self.kind_by_template.get(&t).copied())
            .unwrap_or(AlertKind::Unclassified)
    }

    /// Number of mined templates.
    pub fn template_count(&self) -> usize {
        self.tree.templates().len()
    }

    /// Number of templates carrying a kind label.
    pub fn labelled_template_count(&self) -> usize {
        self.kind_by_template.len()
    }
}

/// Deterministic tie-break for majority voting (prefer the more actionable
/// class, then a stable arbitrary order).
fn kind_tiebreak(kind: AlertKind) -> (u8, std::cmp::Reverse<AlertKind>) {
    let class_rank = match kind.class() {
        skynet_model::AlertClass::RootCause => 2,
        skynet_model::AlertClass::Failure => 1,
        skynet_model::AlertClass::Abnormal => 0,
    };
    (class_rank, std::cmp::Reverse(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use skynet_telemetry::tools::syslog::{render_message, syslog_kinds};

    fn training_corpus(lines_per_kind: usize, seed: u64) -> Vec<(String, AlertKind)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut corpus = Vec::new();
        for kind in syslog_kinds() {
            for _ in 0..lines_per_kind {
                corpus.push((render_message(kind, &mut rng), kind));
            }
        }
        corpus
    }

    #[test]
    fn classifier_recovers_kinds_from_fresh_messages() {
        let classifier = SyslogClassifier::train(&training_corpus(50, 1), 3, 8);
        assert!(classifier.template_count() > 0);
        // Classify messages generated with a *different* seed: same
        // structure, different variables.
        let mut rng = ChaCha8Rng::seed_from_u64(999);
        let mut correct = 0usize;
        let mut total = 0usize;
        for kind in syslog_kinds() {
            for _ in 0..20 {
                let line = render_message(kind, &mut rng);
                total += 1;
                if classifier.classify(&line) == kind {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.9,
            "template classification accuracy {accuracy} below 0.9"
        );
    }

    #[test]
    fn unknown_lines_are_unclassified() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 2), 3, 8);
        assert_eq!(
            classifier.classify("the quick brown fox jumps over the lazy dog"),
            AlertKind::Unclassified
        );
        assert_eq!(classifier.classify(""), AlertKind::Unclassified);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = training_corpus(20, 3);
        let a = SyslogClassifier::train(&corpus, 3, 8);
        let b = SyslogClassifier::train(&corpus, 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for kind in syslog_kinds() {
            let line = render_message(kind, &mut rng);
            assert_eq!(a.classify(&line), b.classify(&line));
        }
    }
}
