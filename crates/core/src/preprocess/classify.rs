//! Syslog classification: FT-tree templates mapped to alert kinds.
//!
//! "To process Syslog, templates are employed to automatically convert
//! command-line outputs into alert types. … The classification process
//! starts with manually assigning types to existing alerts." (§4.1)
//!
//! [`SyslogClassifier::train`] takes a *labelled* historical corpus — the
//! stand-in for the paper's months of manual labelling — mines an FT-tree
//! from the raw lines, then assigns each template the majority label of the
//! training lines that match it. At run time a raw line is matched against
//! the tree and inherits its template's kind; unmatched lines become
//! [`AlertKind::Unclassified`].

use parking_lot::Mutex;
use skynet_ftree::{FtTree, FtTreeBuilder, TemplateId};
use skynet_model::AlertKind;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bound on the classification memo. A flood repeats a small set of
/// templates with a modest variable vocabulary, so this covers steady
/// state; on overflow the memo is cleared rather than evicted piecemeal —
/// cheap, and the hot lines repopulate it within a few alerts.
const CLASSIFY_CACHE_CAPACITY: usize = 4096;

/// FT-tree-backed syslog classifier.
///
/// Identical raw lines are classified once: a bounded memo keyed by the
/// line's hash skips the `constant_words`/`order_words` normalization and
/// tree walk on repeats, which is the common case in a flood (tools
/// retransmit and devices repeat the same message with the same
/// variables). The memo uses interior mutability so `classify` stays `&self`
/// and one classifier can be shared across shard workers behind an `Arc`.
#[derive(Debug)]
pub struct SyslogClassifier {
    tree: FtTree,
    kind_by_template: HashMap<TemplateId, AlertKind>,
    cache: Mutex<HashMap<u64, AlertKind>>,
    cache_hits: AtomicU64,
}

impl Clone for SyslogClassifier {
    fn clone(&self) -> Self {
        SyslogClassifier {
            tree: self.tree.clone(),
            kind_by_template: self.kind_by_template.clone(),
            cache: Mutex::new(self.cache.lock().clone()),
            cache_hits: AtomicU64::new(self.cache_hits.load(Ordering::Relaxed)),
        }
    }
}

impl SyslogClassifier {
    /// Trains on a labelled corpus: mines templates from the raw lines and
    /// assigns each template its matching lines' majority kind.
    pub fn train(corpus: &[(String, AlertKind)], min_support: u32, max_depth: usize) -> Self {
        let mut builder = FtTreeBuilder::new(min_support, max_depth);
        for (line, _) in corpus {
            builder.add_line(line);
        }
        let tree = builder.build();

        let mut votes: HashMap<TemplateId, HashMap<AlertKind, u32>> = HashMap::new();
        for (line, kind) in corpus {
            if let Some(t) = tree.match_message(line) {
                *votes.entry(t).or_default().entry(*kind).or_insert(0) += 1;
            }
        }
        let kind_by_template = votes
            .into_iter()
            .map(|(t, tally)| {
                let kind = tally
                    .into_iter()
                    .max_by_key(|&(k, n)| (n, kind_tiebreak(k)))
                    .map(|(k, _)| k)
                    .unwrap_or(AlertKind::Unclassified);
                (t, kind)
            })
            .collect();

        SyslogClassifier {
            tree,
            kind_by_template,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Classifies one raw syslog line.
    pub fn classify(&self, line: &str) -> AlertKind {
        // SipHash via the std default hasher: deterministic within a
        // process run, which is all the memo key needs.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        line.hash(&mut hasher);
        let key = hasher.finish();
        if let Some(&kind) = self.cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return kind;
        }
        let kind = self
            .tree
            .match_message(line)
            .and_then(|t| self.kind_by_template.get(&t).copied())
            .unwrap_or(AlertKind::Unclassified);
        let mut cache = self.cache.lock();
        if cache.len() >= CLASSIFY_CACHE_CAPACITY {
            cache.clear();
        }
        cache.insert(key, kind);
        kind
    }

    /// Classification calls served from the memo so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of mined templates.
    pub fn template_count(&self) -> usize {
        self.tree.templates().len()
    }

    /// Number of templates carrying a kind label.
    pub fn labelled_template_count(&self) -> usize {
        self.kind_by_template.len()
    }
}

/// Deterministic tie-break for majority voting (prefer the more actionable
/// class, then a stable arbitrary order).
fn kind_tiebreak(kind: AlertKind) -> (u8, std::cmp::Reverse<AlertKind>) {
    let class_rank = match kind.class() {
        skynet_model::AlertClass::RootCause => 2,
        skynet_model::AlertClass::Failure => 1,
        skynet_model::AlertClass::Abnormal => 0,
    };
    (class_rank, std::cmp::Reverse(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use skynet_telemetry::tools::syslog::{render_message, syslog_kinds};

    fn training_corpus(lines_per_kind: usize, seed: u64) -> Vec<(String, AlertKind)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut corpus = Vec::new();
        for kind in syslog_kinds() {
            for _ in 0..lines_per_kind {
                corpus.push((render_message(kind, &mut rng), kind));
            }
        }
        corpus
    }

    #[test]
    fn classifier_recovers_kinds_from_fresh_messages() {
        let classifier = SyslogClassifier::train(&training_corpus(50, 1), 3, 8);
        assert!(classifier.template_count() > 0);
        // Classify messages generated with a *different* seed: same
        // structure, different variables.
        let mut rng = ChaCha8Rng::seed_from_u64(999);
        let mut correct = 0usize;
        let mut total = 0usize;
        for kind in syslog_kinds() {
            for _ in 0..20 {
                let line = render_message(kind, &mut rng);
                total += 1;
                if classifier.classify(&line) == kind {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.9,
            "template classification accuracy {accuracy} below 0.9"
        );
    }

    #[test]
    fn unknown_lines_are_unclassified() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 2), 3, 8);
        assert_eq!(
            classifier.classify("the quick brown fox jumps over the lazy dog"),
            AlertKind::Unclassified
        );
        assert_eq!(classifier.classify(""), AlertKind::Unclassified);
    }

    #[test]
    fn repeated_lines_hit_the_memo() {
        let classifier = SyslogClassifier::train(&training_corpus(20, 4), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let kind = syslog_kinds()[0];
        let line = render_message(kind, &mut rng);
        let first = classifier.classify(&line);
        assert_eq!(classifier.cache_hits(), 0, "first sight is a miss");
        for _ in 0..5 {
            assert_eq!(classifier.classify(&line), first);
        }
        assert_eq!(classifier.cache_hits(), 5);
        // Unknown lines are memoized too — garbage retransmits are the
        // worst repeat offenders in a malformed storm.
        let garbage = "the quick brown fox jumps over the lazy dog";
        assert_eq!(classifier.classify(garbage), AlertKind::Unclassified);
        assert_eq!(classifier.classify(garbage), AlertKind::Unclassified);
        assert_eq!(classifier.cache_hits(), 6);
    }

    #[test]
    fn memo_never_changes_classifications() {
        let cached = SyslogClassifier::train(&training_corpus(30, 8), 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for kind in syslog_kinds() {
            for _ in 0..10 {
                let line = render_message(kind, &mut rng);
                let cold = cached.classify(&line);
                let warm = cached.classify(&line);
                assert_eq!(cold, warm);
            }
        }
        assert!(cached.cache_hits() > 0);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = training_corpus(20, 3);
        let a = SyslogClassifier::train(&corpus, 3, 8);
        let b = SyslogClassifier::train(&corpus, 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for kind in syslog_kinds() {
            let line = render_message(kind, &mut rng);
            assert_eq!(a.classify(&line), b.classify(&line));
        }
    }
}
