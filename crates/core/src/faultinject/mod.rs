//! Deterministic fault injection at every stage boundary.
//!
//! The telemetry chaos engine degrades the *input* feed; this module
//! degrades the *pipeline itself*. A [`FaultConfig`] names injection sites
//! (one per stage boundary — see [`InjectionSite`]) and attaches rules to
//! them: fire with a probability, every N-th passage, exactly once, or on
//! every passage after a warm-up. A firing rule raises a
//! [`SkyNetError`](crate::error::SkyNetError)-style error at the site,
//! panics (to exercise the `catch_unwind` supervisors), or injects latency.
//!
//! Everything is driven by [`ChaCha8Rng`] streams seeded from
//! `(config seed, site, lane)`, so a chaos run is a pure function of the
//! seed and the input feed: the same run replays byte-identically, letting
//! CI assert *exact* supervisor / shed / dead-letter / metrics behaviour
//! under each failure mix instead of "didn't crash". Decision state lives
//! in the shared [`FaultPlane`], not in the per-worker [`FaultArm`] handle,
//! so a restarted worker re-arms mid-stream without rewinding the decision
//! stream (a `once` rule stays one-shot across restarts).
//!
//! When injection is disabled ([`FaultConfig::default`]) no plane is
//! built and every site check is an `Option::None` test the optimizer
//! folds away — the disabled path costs nothing measurable (see the
//! `faultinject` bench).

use crate::obs::{Counter, Observability, Stage, StageTracer};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use skynet_model::{SimTime, TraceId};
use std::collections::HashMap;
use std::sync::Arc;

mod analysis;

pub use analysis::DegradationReport;

/// A named stage boundary where faults can be injected. One site wraps
/// each hand-off in the pipeline, batch and streaming alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InjectionSite {
    /// The ingestion guard's front door: an alert offered for admission.
    GuardOffer,
    /// Structural/topological/temporal validation inside the guard.
    GuardValidate,
    /// Syslog classification in the preprocessor.
    PreprocessClassify,
    /// Duplicate-consolidation in the preprocessor.
    PreprocessConsolidate,
    /// Routing a released alert to its shard.
    ShardRoute,
    /// A per-shard locate worker accepting a structured alert.
    LocateWorker,
    /// Building the reachability matrix for an incident.
    MatrixBuild,
    /// Evaluating (scoring + zooming) a completed incident.
    Evaluate,
    /// Matching a scored incident against the SOP rulebook.
    SopSelect,
    /// Appending an ingested record to the serving layer's write-ahead log.
    WalAppend,
    /// Writing a service snapshot to disk.
    SnapshotWrite,
}

impl InjectionSite {
    /// Every site, in pipeline order.
    pub const ALL: [InjectionSite; 11] = [
        InjectionSite::GuardOffer,
        InjectionSite::GuardValidate,
        InjectionSite::PreprocessClassify,
        InjectionSite::PreprocessConsolidate,
        InjectionSite::ShardRoute,
        InjectionSite::LocateWorker,
        InjectionSite::MatrixBuild,
        InjectionSite::Evaluate,
        InjectionSite::SopSelect,
        InjectionSite::WalAppend,
        InjectionSite::SnapshotWrite,
    ];

    /// Stable metric/display label for the site.
    pub fn label(&self) -> &'static str {
        match self {
            InjectionSite::GuardOffer => "guard-offer",
            InjectionSite::GuardValidate => "guard-validate",
            InjectionSite::PreprocessClassify => "preprocess-classify",
            InjectionSite::PreprocessConsolidate => "preprocess-consolidate",
            InjectionSite::ShardRoute => "shard-route",
            InjectionSite::LocateWorker => "locate-worker",
            InjectionSite::MatrixBuild => "matrix-build",
            InjectionSite::Evaluate => "evaluate",
            InjectionSite::SopSelect => "sop-select",
            InjectionSite::WalAppend => "wal-append",
            InjectionSite::SnapshotWrite => "snapshot-write",
        }
    }

    /// Position in [`InjectionSite::ALL`] (used for stable sort orders).
    pub fn index(&self) -> usize {
        InjectionSite::ALL
            .iter()
            .position(|s| s == self)
            .expect("every site is in ALL")
    }
}

impl std::fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a firing rule does to the stage passage it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Raise the site's error path (reject / skip / degrade — see
    /// [`FaultDisposition`] for the per-site meaning).
    Error,
    /// Panic with a [`FaultPanic`] payload, exercising the supervisor.
    Panic,
    /// Sleep this many milliseconds, then proceed normally.
    Latency(u64),
}

impl FaultAction {
    /// Stable display label for the action.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
            FaultAction::Latency(_) => "latency",
        }
    }
}

/// When a rule fires, relative to the stream of checks its site observes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Fire independently on each check with this probability. Draws are
    /// taken from the site's seeded stream on *every* check — even when an
    /// earlier rule already fired — so rule order never shifts the stream.
    Probability(f64),
    /// Fire on every N-th check (1-based: `Every(3)` fires on checks
    /// 3, 6, 9, …).
    Every(u64),
    /// Fire exactly once, on the N-th check (1-based).
    Once(u64),
    /// Fire on every check after the N-th (`After(5)` fires from check 6).
    After(u64),
}

/// One injection rule: a site, a trigger, an action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Where the rule applies.
    pub site: InjectionSite,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub action: FaultAction,
}

impl FaultRule {
    /// Fires with probability `p` on each check.
    pub fn probability(site: InjectionSite, p: f64, action: FaultAction) -> Self {
        FaultRule {
            site,
            trigger: FaultTrigger::Probability(p),
            action,
        }
    }

    /// Fires on every `n`-th check.
    pub fn every(site: InjectionSite, n: u64, action: FaultAction) -> Self {
        FaultRule {
            site,
            trigger: FaultTrigger::Every(n),
            action,
        }
    }

    /// Fires exactly once, on the `n`-th check.
    pub fn once(site: InjectionSite, n: u64, action: FaultAction) -> Self {
        FaultRule {
            site,
            trigger: FaultTrigger::Once(n),
            action,
        }
    }

    /// Fires on every check after the `n`-th.
    pub fn after(site: InjectionSite, n: u64, action: FaultAction) -> Self {
        FaultRule {
            site,
            trigger: FaultTrigger::After(n),
            action,
        }
    }
}

/// Fault-injection policy: the builder arm that switches the subsystem on.
///
/// Disabled by default; [`FaultConfig::default`] injects nothing and the
/// pipeline skips plane construction entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FaultConfig {
    /// Master switch. `false` (the default) compiles every site check down
    /// to an `Option::None` test.
    pub enabled: bool,
    /// Seed for the per-site decision streams. The same seed, rules and
    /// input feed replay byte-identically.
    pub seed: u64,
    /// The rules. A site with no rules is never armed.
    pub rules: Vec<FaultRule>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            rules: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// An enabled, empty policy with this seed; add rules with
    /// [`FaultConfig::with_rule`].
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            enabled: true,
            seed,
            rules: Vec::new(),
        }
    }

    /// Sets the decision-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends a rule (rules for one site are evaluated in insertion
    /// order; the first that fires wins).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Flips the master switch.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// True when the policy can actually inject something.
    pub fn is_active(&self) -> bool {
        self.enabled && !self.rules.is_empty()
    }
}

/// What became of the stage passage a fault intercepted — the per-site
/// meaning of [`FaultAction::Error`], plus the action-level outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDisposition {
    /// The alert was rejected and preserved in the dead-letter queue.
    DeadLettered,
    /// Classification failed; the alert proceeded as `Unclassified`.
    Unclassified,
    /// Consolidation was bypassed; the observation was emitted directly.
    ConsolidationBypassed,
    /// Routing failed; the alert took the fallback shard.
    Rerouted,
    /// The matrix build was skipped; zoom ran against an empty matrix.
    MatrixSkipped,
    /// Zoom was abandoned; the incident kept its root location unrefined.
    ZoomDegraded,
    /// SOP matching was skipped; the incident shipped without a plan.
    SopSkipped,
    /// The WAL append was rejected; the record was neither persisted nor
    /// acknowledged, so the sender must retry (nothing was half-written).
    WalRejected,
    /// The snapshot write was skipped; the previous snapshot (if any)
    /// remains intact and restore falls back to a longer WAL replay.
    SnapshotSkipped,
    /// The worker panicked and its supervisor took over.
    Panicked,
    /// The passage was delayed, then proceeded normally.
    Delayed,
}

impl FaultDisposition {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultDisposition::DeadLettered => "dead-lettered",
            FaultDisposition::Unclassified => "unclassified",
            FaultDisposition::ConsolidationBypassed => "consolidation-bypassed",
            FaultDisposition::Rerouted => "rerouted",
            FaultDisposition::MatrixSkipped => "matrix-skipped",
            FaultDisposition::ZoomDegraded => "zoom-degraded",
            FaultDisposition::SopSkipped => "sop-skipped",
            FaultDisposition::WalRejected => "wal-rejected",
            FaultDisposition::SnapshotSkipped => "snapshot-skipped",
            FaultDisposition::Panicked => "panicked",
            FaultDisposition::Delayed => "delayed",
        }
    }
}

/// Maps a (site, action) pair onto what the pipeline actually does when
/// the rule fires there.
pub fn disposition(site: InjectionSite, action: FaultAction) -> FaultDisposition {
    match action {
        FaultAction::Panic => FaultDisposition::Panicked,
        FaultAction::Latency(_) => FaultDisposition::Delayed,
        FaultAction::Error => match site {
            InjectionSite::GuardOffer
            | InjectionSite::GuardValidate
            | InjectionSite::LocateWorker => FaultDisposition::DeadLettered,
            InjectionSite::PreprocessClassify => FaultDisposition::Unclassified,
            InjectionSite::PreprocessConsolidate => FaultDisposition::ConsolidationBypassed,
            InjectionSite::ShardRoute => FaultDisposition::Rerouted,
            InjectionSite::MatrixBuild => FaultDisposition::MatrixSkipped,
            InjectionSite::Evaluate => FaultDisposition::ZoomDegraded,
            InjectionSite::SopSelect => FaultDisposition::SopSkipped,
            InjectionSite::WalAppend => FaultDisposition::WalRejected,
            InjectionSite::SnapshotWrite => FaultDisposition::SnapshotSkipped,
        },
    }
}

/// Ledger entry: one fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Where it fired.
    pub site: InjectionSite,
    /// Which lane (shard index for sharded stages, 0 elsewhere).
    pub lane: u32,
    /// The site's check count at the moment of firing (1-based).
    pub ordinal: u64,
    /// What the rule did.
    pub action: FaultAction,
    /// What became of the intercepted passage.
    pub disposition: FaultDisposition,
    /// Trace id of the alert/incident in flight ([`TraceId::NONE`] when
    /// tracing was off or no alert was in scope).
    pub trace: TraceId,
    /// Simulation time at the passage.
    pub at: SimTime,
}

/// Panic payload raised by [`FaultAction::Panic`]; supervisors downcast it
/// to preserve the injection site in the terminal error.
#[derive(Debug, Clone, Copy)]
pub struct FaultPanic(pub InjectionSite);

/// Serialized decision state of one (site, lane) arm — what a service
/// snapshot stores so a restarted process resumes every decision stream
/// without rewinding it (the RNG position is implied by `checks`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmSnapshot {
    /// The site this arm guards.
    pub site: InjectionSite,
    /// The lane (shard index for sharded stages, 0 elsewhere).
    pub lane: u32,
    /// Stage passages observed so far.
    pub checks: u64,
    /// Trace id in flight at the last firing.
    pub last_fired_trace: TraceId,
    /// Simulation time of the last firing.
    pub last_fired_at: SimTime,
}

/// Per-(site, lane) decision stream. Lives in the plane so it survives
/// worker restarts.
#[derive(Debug)]
struct ArmState {
    rng: ChaCha8Rng,
    checks: u64,
    last_fired_trace: TraceId,
    last_fired_at: SimTime,
}

/// SplitMix64 over the seed and site/lane, so each arm gets an
/// independent, stable ChaCha stream.
fn mix(seed: u64, site: InjectionSite, lane: u32) -> u64 {
    let mut z = seed
        ^ (site.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (lane as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shared fault-injection runtime for one pipeline run: canonical
/// decision state per (site, lane), the fired-fault ledger, per-site
/// metrics and the trace hook.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    rules: Vec<FaultRule>,
    arms: Mutex<HashMap<(InjectionSite, u32), Arc<Mutex<ArmState>>>>,
    ledger: Mutex<Vec<InjectedFault>>,
    counters: [Counter; InjectionSite::ALL.len()],
    tracer: StageTracer,
}

impl FaultPlane {
    /// Builds the plane, or `None` when the policy is disabled or empty —
    /// the zero-cost path.
    pub fn from_config(cfg: &FaultConfig, obs: &Observability) -> Option<Arc<FaultPlane>> {
        if !cfg.is_active() {
            return None;
        }
        let counters = InjectionSite::ALL.map(|site| {
            obs.registry().labeled_counter(
                "skynet_faults_injected_total",
                Some(("site", site.label())),
                "Faults injected by the fault plane, by site",
            )
        });
        Some(Arc::new(FaultPlane {
            seed: cfg.seed,
            rules: cfg.rules.clone(),
            arms: Mutex::new(HashMap::new()),
            ledger: Mutex::new(Vec::new()),
            counters,
            tracer: obs.tracer(),
        }))
    }

    /// Arms a site for one lane. Returns `None` when no rule targets the
    /// site, so un-targeted boundaries stay free. Re-arming the same
    /// (site, lane) — e.g. after a worker restart — resumes the existing
    /// decision stream.
    pub fn arm(self: &Arc<Self>, site: InjectionSite, lane: u32) -> Option<FaultArm> {
        if !self.rules.iter().any(|r| r.site == site) {
            return None;
        }
        let state = Arc::clone(self.arms.lock().entry((site, lane)).or_insert_with(|| {
            Arc::new(Mutex::new(ArmState {
                rng: ChaCha8Rng::seed_from_u64(mix(self.seed, site, lane)),
                checks: 0,
                last_fired_trace: TraceId::NONE,
                last_fired_at: SimTime::ZERO,
            }))
        }));
        Some(FaultArm {
            plane: Arc::clone(self),
            site,
            lane,
            state,
        })
    }

    /// Serializes the decision state of every arm ever armed, sorted by
    /// (site, lane). Together with the seed and rules (already in the
    /// [`FaultConfig`]) this is everything a warm restart needs to resume
    /// each decision stream exactly where it stopped.
    pub fn arm_snapshots(&self) -> Vec<ArmSnapshot> {
        let arms = self.arms.lock();
        let mut snaps: Vec<ArmSnapshot> = arms
            .iter()
            .map(|(&(site, lane), state)| {
                let st = state.lock();
                ArmSnapshot {
                    site,
                    lane,
                    checks: st.checks,
                    last_fired_trace: st.last_fired_trace,
                    last_fired_at: st.last_fired_at,
                }
            })
            .collect();
        snaps.sort_by_key(|s| (s.site.index(), s.lane));
        snaps
    }

    /// Restores arm decision state captured by [`FaultPlane::arm_snapshots`]
    /// on a freshly built plane (same seed and rules). Each arm's ChaCha
    /// stream is re-seeded and fast-forwarded: [`FaultArm::check`] draws
    /// one `gen_bool` per probability rule targeting the site on *every*
    /// check, so replaying `checks × probability-rule-count` draws lands
    /// the stream exactly where the snapshot left it.
    pub fn restore_arms(self: &Arc<Self>, snapshots: &[ArmSnapshot]) {
        let mut arms = self.arms.lock();
        for snap in snapshots {
            let prob_rules: Vec<f64> = self
                .rules
                .iter()
                .filter(|r| r.site == snap.site)
                .filter_map(|r| match r.trigger {
                    FaultTrigger::Probability(p) => Some(p.clamp(0.0, 1.0)),
                    _ => None,
                })
                .collect();
            let mut rng = ChaCha8Rng::seed_from_u64(mix(self.seed, snap.site, snap.lane));
            for _ in 0..snap.checks {
                for &p in &prob_rules {
                    let _ = rng.gen_bool(p);
                }
            }
            arms.insert(
                (snap.site, snap.lane),
                Arc::new(Mutex::new(ArmState {
                    rng,
                    checks: snap.checks,
                    last_fired_trace: snap.last_fired_trace,
                    last_fired_at: snap.last_fired_at,
                })),
            );
        }
    }

    /// Replaces the fired-fault ledger with one captured by
    /// [`FaultPlane::ledger`] before a restart, so a warm-restarted
    /// service's reports still account for faults the previous process
    /// incarnation fired. Arm decision state is restored separately via
    /// [`FaultPlane::restore_arms`].
    pub fn restore_ledger(&self, faults: Vec<InjectedFault>) {
        *self.ledger.lock() = faults;
    }

    /// Every fault that fired, sorted by (site, lane, ordinal) so the
    /// ledger is deterministic regardless of worker scheduling.
    pub fn ledger(&self) -> Vec<InjectedFault> {
        let mut faults = self.ledger.lock().clone();
        faults.sort_by_key(|f| (f.site.index(), f.lane, f.ordinal));
        faults
    }

    /// Total faults fired so far.
    pub fn fault_count(&self) -> usize {
        self.ledger.lock().len()
    }

    fn record(&self, fault: InjectedFault) {
        self.counters[fault.site.index()].inc();
        self.tracer
            .record(fault.trace, fault.at, Stage::FaultInjected(fault.site));
        self.ledger.lock().push(fault);
    }
}

/// A site's handle for one lane: workers call [`FaultArm::check`] (or the
/// [`trip`] shorthand) at the stage boundary.
#[derive(Debug, Clone)]
pub struct FaultArm {
    plane: Arc<FaultPlane>,
    site: InjectionSite,
    lane: u32,
    state: Arc<Mutex<ArmState>>,
}

impl FaultArm {
    /// The site this arm guards.
    pub fn site(&self) -> InjectionSite {
        self.site
    }

    /// One stage passage: advances the decision stream and returns the
    /// action of the first rule that fires, recording it in the ledger,
    /// the per-site counter and the trace ring. Probability rules draw on
    /// every check (even after an earlier rule fired) so the stream stays
    /// aligned whatever the rule mix.
    pub fn check(&self, trace: TraceId, at: SimTime) -> Option<FaultAction> {
        let mut st = self.state.lock();
        st.checks += 1;
        let checks = st.checks;
        let mut fired: Option<FaultRule> = None;
        for rule in self.plane.rules.iter().filter(|r| r.site == self.site) {
            let hit = match rule.trigger {
                FaultTrigger::Probability(p) => st.rng.gen_bool(p.clamp(0.0, 1.0)),
                FaultTrigger::Every(n) => n > 0 && checks % n == 0,
                FaultTrigger::Once(n) => checks == n,
                FaultTrigger::After(n) => checks > n,
            };
            if hit && fired.is_none() {
                fired = Some(*rule);
            }
        }
        let rule = fired?;
        st.last_fired_trace = trace;
        st.last_fired_at = at;
        drop(st);
        self.plane.record(InjectedFault {
            site: self.site,
            lane: self.lane,
            ordinal: checks,
            action: rule.action,
            disposition: disposition(self.site, rule.action),
            trace,
            at,
        });
        Some(rule.action)
    }

    /// Convenience wrapper for sites whose error path is a simple early
    /// return: latency sleeps and proceeds (`false`), a panic raises
    /// [`FaultPanic`], an error returns `true`.
    pub fn should_fail(&self, trace: TraceId, at: SimTime) -> bool {
        match self.check(trace, at) {
            None => false,
            Some(FaultAction::Error) => true,
            Some(FaultAction::Latency(ms)) => {
                sleep_ms(ms);
                false
            }
            Some(FaultAction::Panic) => self.panic_now(),
        }
    }

    /// Raises the supervisor-visible panic for this site. Call sites that
    /// must preserve in-flight data (dead-letter first) use
    /// [`FaultArm::check`] and then this.
    pub fn panic_now(&self) -> ! {
        std::panic::panic_any(FaultPanic(self.site))
    }

    /// The trace id in flight when this arm last fired — lets supervisors
    /// attribute a restart to the alert that triggered it.
    pub fn last_fired_trace(&self) -> TraceId {
        self.state.lock().last_fired_trace
    }

    /// The simulation time of the last firing.
    pub fn last_fired_at(&self) -> SimTime {
        self.state.lock().last_fired_at
    }
}

/// Sleeps an injected-latency interval.
pub fn sleep_ms(ms: u64) {
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Checks an optional arm at a boundary whose error path is an early
/// return; a disarmed site costs one `Option` test.
pub fn trip(arm: &Option<FaultArm>, trace: TraceId, at: SimTime) -> bool {
    arm.as_ref().is_some_and(|a| a.should_fail(trace, at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsConfig;

    fn obs() -> Observability {
        Observability::new(&ObsConfig::default())
    }

    fn plane(cfg: FaultConfig) -> Arc<FaultPlane> {
        FaultPlane::from_config(&cfg, &obs()).expect("active policy builds a plane")
    }

    #[test]
    fn disabled_or_empty_policies_build_no_plane() {
        assert!(FaultPlane::from_config(&FaultConfig::default(), &obs()).is_none());
        assert!(FaultPlane::from_config(&FaultConfig::seeded(7), &obs()).is_none());
        let disabled = FaultConfig::seeded(7)
            .with_rule(FaultRule::every(
                InjectionSite::GuardOffer,
                2,
                FaultAction::Error,
            ))
            .with_enabled(false);
        assert!(FaultPlane::from_config(&disabled, &obs()).is_none());
    }

    #[test]
    fn untargeted_sites_are_never_armed() {
        let p = plane(FaultConfig::seeded(1).with_rule(FaultRule::every(
            InjectionSite::Evaluate,
            1,
            FaultAction::Error,
        )));
        assert!(p.arm(InjectionSite::GuardOffer, 0).is_none());
        assert!(p.arm(InjectionSite::Evaluate, 0).is_some());
    }

    #[test]
    fn trigger_semantics_every_once_after() {
        let cfg = FaultConfig::seeded(0)
            .with_rule(FaultRule::every(
                InjectionSite::GuardOffer,
                3,
                FaultAction::Error,
            ))
            .with_rule(FaultRule::once(
                InjectionSite::GuardValidate,
                2,
                FaultAction::Error,
            ))
            .with_rule(FaultRule::after(
                InjectionSite::Evaluate,
                2,
                FaultAction::Error,
            ));
        let p = plane(cfg);
        let every = p.arm(InjectionSite::GuardOffer, 0).unwrap();
        let hits: Vec<bool> = (0..6)
            .map(|_| every.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        assert_eq!(hits, [false, false, true, false, false, true]);

        let once = p.arm(InjectionSite::GuardValidate, 0).unwrap();
        let hits: Vec<bool> = (0..4)
            .map(|_| once.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        assert_eq!(hits, [false, true, false, false]);

        let after = p.arm(InjectionSite::Evaluate, 0).unwrap();
        let hits: Vec<bool> = (0..4)
            .map(|_| after.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        assert_eq!(hits, [false, false, true, true]);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed_and_lane() {
        let cfg = FaultConfig::seeded(42).with_rule(FaultRule::probability(
            InjectionSite::LocateWorker,
            0.3,
            FaultAction::Error,
        ));
        let run = |lane: u32| -> Vec<bool> {
            let arm = plane(cfg.clone())
                .arm(InjectionSite::LocateWorker, lane)
                .unwrap();
            (0..64)
                .map(|_| arm.check(TraceId::NONE, SimTime::ZERO).is_some())
                .collect()
        };
        assert_eq!(run(0), run(0), "same seed + lane replays identically");
        assert_ne!(run(0), run(1), "lanes draw from independent streams");
    }

    #[test]
    fn rearming_resumes_the_decision_stream() {
        let p = plane(FaultConfig::seeded(0).with_rule(FaultRule::once(
            InjectionSite::LocateWorker,
            2,
            FaultAction::Error,
        )));
        let first = p.arm(InjectionSite::LocateWorker, 3).unwrap();
        assert!(first.check(TraceId(9), SimTime::from_secs(5)).is_none());
        assert!(first.check(TraceId(10), SimTime::from_secs(6)).is_some());
        drop(first);
        // A restarted worker re-arms: the once-rule must NOT fire again.
        let second = p.arm(InjectionSite::LocateWorker, 3).unwrap();
        for _ in 0..8 {
            assert!(second.check(TraceId::NONE, SimTime::ZERO).is_none());
        }
        assert_eq!(second.last_fired_trace(), TraceId(10));
        assert_eq!(second.last_fired_at(), SimTime::from_secs(6));
    }

    #[test]
    fn ledger_is_sorted_and_counters_reconcile() {
        let o = obs();
        let cfg = FaultConfig::seeded(0)
            .with_rule(FaultRule::every(
                InjectionSite::Evaluate,
                1,
                FaultAction::Error,
            ))
            .with_rule(FaultRule::every(
                InjectionSite::GuardOffer,
                1,
                FaultAction::Latency(0),
            ));
        let p = FaultPlane::from_config(&cfg, &o).unwrap();
        let eval = p.arm(InjectionSite::Evaluate, 1).unwrap();
        let guard = p.arm(InjectionSite::GuardOffer, 0).unwrap();
        eval.check(TraceId(2), SimTime::from_secs(2));
        guard.check(TraceId(1), SimTime::from_secs(1));
        let ledger = p.ledger();
        assert_eq!(ledger.len(), 2);
        // Sorted by site order, not firing order.
        assert_eq!(ledger[0].site, InjectionSite::GuardOffer);
        assert_eq!(ledger[0].disposition, FaultDisposition::Delayed);
        assert_eq!(ledger[1].site, InjectionSite::Evaluate);
        assert_eq!(ledger[1].disposition, FaultDisposition::ZoomDegraded);
        let snap = o.snapshot();
        assert_eq!(
            snap.counter("skynet_faults_injected_total", Some("guard-offer")),
            1
        );
        assert_eq!(
            snap.counter("skynet_faults_injected_total", Some("evaluate")),
            1
        );
    }

    #[test]
    fn restored_arms_resume_probability_streams_exactly() {
        let cfg = FaultConfig::seeded(99)
            .with_rule(FaultRule::probability(
                InjectionSite::GuardOffer,
                0.4,
                FaultAction::Error,
            ))
            .with_rule(FaultRule::probability(
                InjectionSite::GuardOffer,
                0.1,
                FaultAction::Latency(0),
            ));
        let live = plane(cfg.clone());
        let arm = live.arm(InjectionSite::GuardOffer, 2).unwrap();
        let before: Vec<bool> = (0..23)
            .map(|_| arm.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        let snaps = live.arm_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].checks, 23);
        // Round-trip through serde like a real snapshot file would.
        let json = serde_json::to_string(&snaps).unwrap();
        let snaps: Vec<ArmSnapshot> = serde_json::from_str(&json).unwrap();

        let restored = plane(cfg);
        restored.restore_arms(&snaps);
        let rearmed = restored.arm(InjectionSite::GuardOffer, 2).unwrap();
        let after_restored: Vec<bool> = (0..41)
            .map(|_| rearmed.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        let after_live: Vec<bool> = (0..41)
            .map(|_| arm.check(TraceId::NONE, SimTime::ZERO).is_some())
            .collect();
        assert_eq!(after_restored, after_live, "streams diverged after restore");
        let _ = before;
    }

    #[test]
    fn site_labels_are_stable_and_distinct() {
        let mut labels: Vec<&str> = InjectionSite::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), InjectionSite::ALL.len());
        for (i, site) in InjectionSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }
}
