//! Post-incident analysis: reconstructs what the fault plane did to a run.
//!
//! A [`DegradationReport`] is assembled from the fault ledger, the trace
//! ring (injection / restart / fault-reject / shed events, in recording
//! order) and the restart & shed counters, and renders a human timeline to
//! sit alongside the incident report: which faults fired where, what
//! became of each intercepted alert, whether the supervisors held the line
//! or the pipeline went terminally degraded.

use super::{FaultDisposition, InjectedFault, InjectionSite};
use crate::error::{RejectReason, SkyNetError};
use crate::obs::{Observability, Stage, TraceEvent};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The degradation story of one run, rendered alongside the incident
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Every fault that fired, sorted by (site, lane, ordinal).
    pub faults: Vec<InjectedFault>,
    /// Worker restarts the supervisors performed.
    pub restarts: u64,
    /// True when a supervisor exhausted its restart budget and gave up.
    pub gave_up: bool,
    /// The terminal error when the pipeline went degraded.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub degraded: Option<SkyNetError>,
    /// Abnormal-class alerts shed under backpressure.
    pub shed_abnormal: u64,
    /// RootCause-class alerts shed under backpressure.
    pub shed_root_cause: u64,
    /// Alerts preserved in the dead-letter queue because a fault
    /// intercepted them.
    pub fault_dead_letters: u64,
    /// Injection / restart / fault-reject / shed events still retained by
    /// the trace ring, in canonical (time, trace, stage) order.
    pub timeline: Vec<TraceEvent>,
}

impl DegradationReport {
    /// Builds the report from a run's fault ledger and its observability
    /// surface. `fault_dead_letters` is the dead-letter queue's
    /// fault-injected count; restart/health fields come from the caller
    /// (batch runs pass the restart counter and no terminal state).
    pub fn assemble(
        faults: Vec<InjectedFault>,
        obs: &Observability,
        fault_dead_letters: u64,
        restarts: u64,
        gave_up: bool,
        degraded: Option<SkyNetError>,
    ) -> Self {
        let snap = obs.snapshot();
        let timeline = obs
            .recorder()
            .map(|rec| {
                let mut events = rec.events();
                events.retain(|e| {
                    matches!(
                        e.stage,
                        Stage::FaultInjected(_)
                            | Stage::WorkerRestarted(_)
                            | Stage::GuardRejected(RejectReason::FaultInjected)
                            | Stage::Shed(_)
                    )
                });
                // Canonical order, not recording order: parallel locate
                // lanes interleave their ring writes nondeterministically,
                // and the timeline must replay byte-identically. Sorting
                // by (time, trace, label) restores chronology and puts an
                // injection before the restart it caused (same time and
                // trace; "fault:…" < "worker:…").
                events.sort_by_key(|e| (e.at, e.trace, e.stage.label()));
                events
            })
            .unwrap_or_default();
        DegradationReport {
            faults,
            restarts,
            gave_up,
            degraded,
            shed_abnormal: snap.counter("skynet_shed_total", Some("abnormal")),
            shed_root_cause: snap.counter("skynet_shed_total", Some("root-cause")),
            fault_dead_letters,
            timeline,
        }
    }

    /// True when nothing degraded: no faults, no restarts, no shedding.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
            && self.restarts == 0
            && !self.gave_up
            && self.shed_abnormal == 0
            && self.shed_root_cause == 0
            && self.fault_dead_letters == 0
    }

    /// Faults that fired at one site.
    pub fn faults_at(&self, site: InjectionSite) -> usize {
        self.faults.iter().filter(|f| f.site == site).count()
    }

    /// Faults that ended with one disposition.
    pub fn with_disposition(&self, disposition: FaultDisposition) -> usize {
        self.faults
            .iter()
            .filter(|f| f.disposition == disposition)
            .count()
    }

    /// Renders the degradation report for operators.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Degradation report ===");
        let _ = writeln!(
            out,
            "{} fault(s) injected | {} restart(s) | {} fault dead-letter(s) | shed: {} abnormal / {} root-cause",
            self.faults.len(),
            self.restarts,
            self.fault_dead_letters,
            self.shed_abnormal,
            self.shed_root_cause,
        );
        if !self.faults.is_empty() {
            let _ = writeln!(out, "--- Injected faults ---");
            for f in &self.faults {
                let _ = writeln!(
                    out,
                    "  {} lane {} check #{} [{}] -> {} (trace {:?} @ {})",
                    f.site.label(),
                    f.lane,
                    f.ordinal,
                    f.action.label(),
                    f.disposition.label(),
                    f.trace.0,
                    f.at,
                );
            }
        }
        if !self.timeline.is_empty() {
            let _ = writeln!(out, "--- Timeline (trace ring) ---");
            for e in &self.timeline {
                let _ = writeln!(out, "  trace{} @ {}: {}", e.trace.0, e.at, e.stage.label());
            }
        }
        let verdict = match (&self.degraded, self.gave_up) {
            (Some(err), _) => format!("DEGRADED — supervisor gave up: {err}"),
            (None, true) => "DEGRADED — supervisor gave up".to_string(),
            (None, false) if self.is_clean() => "CLEAN — no degradation observed".to_string(),
            (None, false) => "SURVIVED — pipeline absorbed every fault".to_string(),
        };
        let _ = writeln!(out, "verdict: {verdict}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::{disposition, FaultAction};
    use crate::obs::{ObsConfig, StageTracer, TraceRecorder};
    use skynet_model::{SimTime, TraceId};
    use std::sync::Arc;

    fn fault(site: InjectionSite, action: FaultAction) -> InjectedFault {
        InjectedFault {
            site,
            lane: 0,
            ordinal: 1,
            action,
            disposition: disposition(site, action),
            trace: TraceId(3),
            at: SimTime::from_secs(7),
        }
    }

    #[test]
    fn clean_report_renders_clean() {
        let obs = Observability::new(&ObsConfig::default());
        let report = DegradationReport::assemble(Vec::new(), &obs, 0, 0, false, None);
        assert!(report.is_clean());
        assert!(report.render().contains("CLEAN"));
    }

    #[test]
    fn timeline_keeps_only_degradation_events() {
        let obs = Observability::new(&ObsConfig::default());
        let rec: &Arc<TraceRecorder> = obs.recorder().expect("tracing on by default");
        let tracer = StageTracer::new(Arc::clone(rec));
        tracer.record(TraceId(1), SimTime::ZERO, Stage::GuardAdmitted);
        tracer.record(
            TraceId(1),
            SimTime::from_secs(1),
            Stage::FaultInjected(InjectionSite::LocateWorker),
        );
        tracer.record(TraceId(1), SimTime::from_secs(2), Stage::WorkerRestarted(0));
        tracer.record(TraceId(2), SimTime::from_secs(3), Stage::LocateInserted);
        let faults = vec![fault(InjectionSite::LocateWorker, FaultAction::Panic)];
        let report = DegradationReport::assemble(faults, &obs, 0, 1, false, None);
        assert_eq!(report.timeline.len(), 2);
        assert!(!report.is_clean());
        assert_eq!(report.faults_at(InjectionSite::LocateWorker), 1);
        assert_eq!(report.with_disposition(FaultDisposition::Panicked), 1);
        let rendered = report.render();
        assert!(rendered.contains("fault:injected(locate-worker)"));
        assert!(rendered.contains("worker:restarted(0)"));
        assert!(rendered.contains("SURVIVED"));
    }

    #[test]
    fn terminal_degradation_names_the_cause() {
        let obs = Observability::new(&ObsConfig::default());
        let report = DegradationReport::assemble(
            vec![fault(InjectionSite::LocateWorker, FaultAction::Panic)],
            &obs,
            0,
            4,
            true,
            Some(SkyNetError::FaultInjected {
                site: InjectionSite::LocateWorker,
            }),
        );
        assert!(report.gave_up);
        let rendered = report.render();
        assert!(rendered.contains("DEGRADED"));
        assert!(rendered.contains("locate-worker"));
        let json = serde_json::to_string(&report).unwrap();
        let back: DegradationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
