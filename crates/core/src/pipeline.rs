//! The assembled SkyNet system.
//!
//! [`SkyNet::analyze`] runs the batch pipeline of Fig. 5a — preprocess →
//! locate → evaluate → rank — over a recorded alert flood.
//! [`spawn_streaming`] runs the same stages as a long-lived worker thread
//! fed through a channel, the shape the production deployment uses
//! ("the alert preprocessing occurs through a stream processing
//! mechanism", §6.2).

use crate::evaluator::{Evaluator, EvaluatorConfig, ScoredIncident};
use crate::locator::{Incident, Locator, LocatorConfig};
use crate::preprocess::{PreprocessStats, Preprocessor, PreprocessorConfig, SyslogClassifier};
use crate::sop::{SopEngine, SopPlan};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use skynet_model::{AlertKind, IncidentId, PingLog, PingSample, RawAlert, SimTime};
use skynet_topology::Topology;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of the whole pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PipelineConfig {
    /// Preprocessor knobs (§4.1).
    pub preprocessor: PreprocessorConfig,
    /// Locator knobs (§4.2).
    pub locator: LocatorConfig,
    /// Evaluator knobs (§4.3).
    pub evaluator: EvaluatorConfig,
    /// FT-tree minimum template support.
    pub classifier_min_support: u32,
    /// FT-tree maximum template depth.
    pub classifier_max_depth: usize,
}

impl PipelineConfig {
    /// The paper's production settings.
    pub fn production() -> Self {
        PipelineConfig {
            preprocessor: PreprocessorConfig::default(),
            locator: LocatorConfig::default(),
            evaluator: EvaluatorConfig::default(),
            classifier_min_support: 3,
            classifier_max_depth: 8,
        }
    }
}

/// The final report handed to operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Every incident, ranked by severity (highest first).
    pub incidents: Vec<ScoredIncident>,
    /// Automatic SOP plans for the incidents that matched a known-failure
    /// rule.
    pub sop_plans: Vec<(IncidentId, SopPlan)>,
    /// Preprocessing counters (Fig. 8b's data).
    pub preprocess: PreprocessStats,
    /// The severity threshold in force.
    pub severity_threshold: f64,
}

impl AnalysisReport {
    /// Incidents at or above the severity threshold — what operators are
    /// actually paged for (§6.4).
    pub fn actionable(&self) -> impl Iterator<Item = &ScoredIncident> {
        self.incidents
            .iter()
            .filter(|s| s.score() >= self.severity_threshold)
    }

    /// The SOP plan for an incident, if a known-failure rule matched.
    pub fn sop_for(&self, id: IncidentId) -> Option<&SopPlan> {
        self.sop_plans
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| p)
    }

    /// A truncated, highest-severity-first context block for an LLM
    /// diagnostic assistant (§9: "SkyNet truncates the monitoring results
    /// to maintain compliance with the LLM input length constraints
    /// without sacrificing valuable information"). Whole incidents are
    /// included in rank order until the budget is exhausted; an incident
    /// is never split.
    pub fn llm_context(&self, max_chars: usize) -> String {
        let mut out = String::new();
        for scored in &self.incidents {
            let block = format!(
                "incident at {} (severity {:.1}, zoomed {}):\n{}\n",
                scored.incident.root,
                scored.score(),
                scored.zoom.location,
                scored.incident.report()
            );
            if out.len() + block.len() > max_chars {
                break;
            }
            out.push_str(&block);
        }
        out
    }

    /// Renders the ranked incident list with severities and zooms, Fig. 6
    /// style.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} incidents ({} actionable at threshold {}):",
            self.incidents.len(),
            self.actionable().count(),
            self.severity_threshold
        );
        for scored in &self.incidents {
            let _ = writeln!(
                s,
                "--- score {:.1} (impact {:.1} × time {:.2}), zoom: {} [{:?}]",
                scored.score(),
                scored.severity.impact,
                scored.severity.time_factor,
                scored.zoom.location,
                scored.zoom.method,
            );
            let _ = write!(s, "{}", scored.incident.report());
            if let Some(plan) = self.sop_for(scored.incident.id) {
                let _ = writeln!(s, "SOP: {} -> {:?}", plan.rule, plan.action);
            }
        }
        s
    }
}

/// The assembled system.
#[derive(Debug)]
pub struct SkyNet {
    topo: Arc<Topology>,
    cfg: PipelineConfig,
    classifier: Option<SyslogClassifier>,
}

impl SkyNet {
    /// A pipeline without a syslog classifier (raw syslog becomes
    /// `Unclassified`).
    pub fn new(topo: &Arc<Topology>, cfg: PipelineConfig) -> Self {
        SkyNet {
            topo: Arc::clone(topo),
            cfg,
            classifier: None,
        }
    }

    /// A pipeline whose FT-tree classifier is trained on a labelled
    /// historical corpus.
    pub fn with_training(
        topo: &Arc<Topology>,
        cfg: PipelineConfig,
        corpus: &[(String, AlertKind)],
    ) -> Self {
        let classifier = SyslogClassifier::train(
            corpus,
            cfg.classifier_min_support,
            cfg.classifier_max_depth,
        );
        SkyNet {
            topo: Arc::clone(topo),
            cfg,
            classifier: Some(classifier),
        }
    }

    /// The topology under analysis.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Batch analysis of a recorded flood: preprocess, locate until
    /// `horizon`, evaluate, rank, and match SOPs.
    pub fn analyze(
        &self,
        alerts: &[RawAlert],
        ping: &PingLog,
        horizon: SimTime,
    ) -> AnalysisReport {
        let mut preprocessor =
            Preprocessor::new(self.cfg.preprocessor.clone(), self.classifier.clone());
        let mut locator = Locator::new(&self.topo, self.cfg.locator.clone());
        let mut structured = Vec::new();
        for alert in alerts {
            structured.clear();
            preprocessor.push(alert, &mut structured);
            for s in &structured {
                locator.insert(s);
            }
        }
        preprocessor.finish();
        locator.advance(horizon);
        locator.finish();
        let mut incidents = locator.take_completed();
        incidents.sort_by_key(|i| (i.first_seen, i.id));

        self.finish_report(incidents, ping, preprocessor.stats())
    }

    fn finish_report(
        &self,
        incidents: Vec<Incident>,
        ping: &PingLog,
        preprocess: PreprocessStats,
    ) -> AnalysisReport {
        let evaluator = Evaluator::new(&self.topo, self.cfg.evaluator.clone());
        let sop = SopEngine::standard(&self.topo);
        let mut sop_plans = Vec::new();
        for incident in &incidents {
            if let Some(plan) = sop.match_incident(incident) {
                sop_plans.push((incident.id, plan));
            }
        }
        let scored = evaluator.rank(incidents, ping);
        AnalysisReport {
            incidents: scored,
            sop_plans,
            preprocess,
            severity_threshold: self.cfg.evaluator.severity_threshold,
        }
    }
}

/// Events accepted by the streaming worker.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A raw alert from any monitoring tool.
    Alert(RawAlert),
    /// A lossy ping sample for the reachability matrix.
    Ping(PingSample),
    /// Advance the locator's clock without an alert (drives timeouts
    /// through quiet periods).
    Tick(SimTime),
    /// End of stream: finalize all open incidents and stop.
    Flush,
}

/// Handle to a running streaming pipeline.
#[derive(Debug)]
pub struct StreamingHandle {
    /// Send events here.
    pub events: Sender<StreamEvent>,
    /// Scored incidents arrive here as their trees finalize.
    pub incidents: Receiver<ScoredIncident>,
    /// Live preprocessing counters.
    pub stats: Arc<Mutex<PreprocessStats>>,
    /// Worker thread handle.
    pub worker: JoinHandle<()>,
}

/// Spawns the pipeline as a worker thread fed through a bounded channel —
/// per the tokio guide this workload is CPU-bound stream processing, so it
/// runs on a plain OS thread with crossbeam channels.
pub fn spawn_streaming(skynet: SkyNet) -> StreamingHandle {
    let (event_tx, event_rx) = bounded::<StreamEvent>(4096);
    let (incident_tx, incident_rx) = bounded::<ScoredIncident>(256);
    let stats = Arc::new(Mutex::new(PreprocessStats::default()));
    let stats_handle = Arc::clone(&stats);

    let worker = std::thread::Builder::new()
        .name("skynet-pipeline".into())
        .spawn(move || {
            let mut preprocessor =
                Preprocessor::new(skynet.cfg.preprocessor.clone(), skynet.classifier.clone());
            let mut locator = Locator::new(&skynet.topo, skynet.cfg.locator.clone());
            let evaluator = Evaluator::new(&skynet.topo, skynet.cfg.evaluator.clone());
            let sop = SopEngine::standard(&skynet.topo);
            let mut ping = PingLog::new();
            let mut structured = Vec::new();

            let drain = |locator: &mut Locator, ping: &PingLog| {
                for incident in locator.take_completed() {
                    let _ = sop.match_incident(&incident);
                    let scored = evaluator.evaluate(incident, ping);
                    if incident_tx.send(scored).is_err() {
                        return false; // receiver gone
                    }
                }
                true
            };

            for event in event_rx.iter() {
                match event {
                    StreamEvent::Alert(raw) => {
                        structured.clear();
                        preprocessor.push(&raw, &mut structured);
                        for s in &structured {
                            locator.insert(s);
                        }
                        *stats_handle.lock() = preprocessor.stats();
                    }
                    StreamEvent::Ping(sample) => {
                        ping.record(sample.t, sample.src, sample.dst, sample.loss);
                    }
                    StreamEvent::Tick(now) => {
                        locator.advance(now);
                    }
                    StreamEvent::Flush => break,
                }
                if !drain(&mut locator, &ping) {
                    return;
                }
            }
            preprocessor.finish();
            *stats_handle.lock() = preprocessor.stats();
            locator.finish();
            let _ = drain(&mut locator, &ping);
        })
        .expect("spawning the pipeline worker");

    StreamingHandle {
        events: event_tx,
        incidents: incident_rx,
        stats,
        worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{DataSource, LocationPath};
    use skynet_topology::{generate, GeneratorConfig};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn flood(site: &LocationPath) -> Vec<RawAlert> {
        let mut alerts = Vec::new();
        // Persistent ping loss (two types), link down, congestion.
        for t in 0..30u64 {
            alerts.push(
                RawAlert::known(
                    DataSource::Ping,
                    SimTime::from_secs(t * 2),
                    site.clone(),
                    AlertKind::PacketLossIcmp,
                )
                .with_magnitude(0.3),
            );
        }
        for t in 0..10u64 {
            alerts.push(
                RawAlert::known(
                    DataSource::Ping,
                    SimTime::from_secs(5 + t * 2),
                    site.clone(),
                    AlertKind::PacketLossTcp,
                )
                .with_magnitude(0.2),
            );
        }
        alerts.push(RawAlert::known(
            DataSource::Snmp,
            SimTime::from_secs(11),
            site.clone(),
            AlertKind::LinkDown,
        ));
        alerts.sort_by_key(|a| a.timestamp);
        alerts
    }

    #[test]
    fn batch_analysis_produces_a_ranked_actionable_report() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::new(&t, PipelineConfig::production());
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        assert_eq!(report.incidents.len(), 1);
        let top = &report.incidents[0];
        assert_eq!(top.incident.root, site);
        assert!(top.score() > 0.0);
        assert!(report.preprocess.raw > report.preprocess.emitted);
        let text = report.render();
        assert!(text.contains("score"));
        assert!(text.contains("Failure alerts"));
    }

    #[test]
    fn streaming_matches_batch_incidents() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let alerts = flood(&site);
        let skynet_batch = SkyNet::new(&t, PipelineConfig::production());
        let batch = skynet_batch.analyze(&alerts, &PingLog::new(), SimTime::from_mins(30));

        let skynet_stream = SkyNet::new(&t, PipelineConfig::production());
        let handle = spawn_streaming(skynet_stream);
        for a in &alerts {
            handle.events.send(StreamEvent::Alert(a.clone())).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<ScoredIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();

        assert_eq!(streamed.len(), batch.incidents.len());
        assert_eq!(streamed[0].incident.root, batch.incidents[0].incident.root);
        assert_eq!(
            streamed[0].incident.alerts.len(),
            batch.incidents[0].incident.alerts.len()
        );
        assert!(handle.stats.lock().raw > 0);
    }

    #[test]
    fn llm_context_is_ranked_and_budgeted() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::new(&t, PipelineConfig::production());
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        let full = report.llm_context(100_000);
        assert!(full.contains("incident at"));
        assert!(full.contains("Failure alerts"));
        // A tight budget truncates at whole-incident granularity.
        let tight = report.llm_context(10);
        assert!(tight.is_empty(), "too small for any whole incident");
        let medium = report.llm_context(full.len());
        assert_eq!(medium, full);
        assert!(report.llm_context(2_000).len() <= 2_000);
    }

    #[test]
    fn quiet_stream_produces_nothing() {
        let t = topo();
        let skynet = SkyNet::new(&t, PipelineConfig::production());
        let report = skynet.analyze(&[], &PingLog::new(), SimTime::from_mins(30));
        assert!(report.incidents.is_empty());
        assert_eq!(report.actionable().count(), 0);
    }

    #[test]
    fn tick_drives_incident_finalization_through_quiet_periods() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::new(&t, PipelineConfig::production());
        let handle = spawn_streaming(skynet);
        for a in flood(&site) {
            handle.events.send(StreamEvent::Alert(a)).unwrap();
        }
        // Nothing finalized yet (incident still within its idle window).
        assert!(handle.incidents.try_recv().is_err());
        // A tick 20 minutes later times the incident out without new alerts.
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(21)))
            .unwrap();
        let scored = handle
            .incidents
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("incident finalizes on tick");
        assert_eq!(scored.incident.root, site);
        handle.events.send(StreamEvent::Flush).unwrap();
        handle.worker.join().unwrap();
    }
}
