//! The assembled SkyNet system.
//!
//! [`SkyNet::analyze`] runs the batch pipeline of Fig. 5a — guard →
//! preprocess → locate → evaluate → rank — over a recorded alert flood.
//! [`SkyNet::stream`] runs the same stages as a long-lived, *supervised*
//! worker thread fed through a channel, the shape the production deployment
//! uses ("the alert preprocessing occurs through a stream processing
//! mechanism", §6.2).
//!
//! The streaming runtime is built to survive the conditions it analyzes:
//!
//! - an [`IngestGuard`] validates and re-sequences the feed, quarantining
//!   rejects in a dead-letter queue instead of poisoning the locator;
//! - [`StreamingHandle::send_alert`] applies **class-aware load shedding**
//!   when the event channel saturates — [`AlertClass::Failure`] alerts are
//!   never shed, [`AlertClass::Abnormal`] alerts go first;
//! - a **supervisor** wraps the worker in `catch_unwind` and restarts it
//!   with fresh stage state after a panic (counters survive via shared
//!   snapshots), up to a configurable cap;
//! - [`StreamingHandle::health`] is the liveness probe.

use crate::error::{RejectReason, SkyNetError};
use crate::evaluator::{Evaluator, EvaluatorConfig, MatrixMemo, ScoredIncident};
use crate::faultinject::{
    self, DegradationReport, FaultAction, FaultArm, FaultConfig, FaultPanic, FaultPlane,
    InjectedFault, InjectionSite,
};
use crate::guard::{DeadLetter, DeadLetterQueue, GuardConfig, IngestGuard, IngestStats};
use crate::locator::{Incident, Locator, LocatorConfig};
use crate::obs::{
    Counter, Exporter, Histogram, ObsConfig, Observability, RegistrySnapshot, Stage, StageTracer,
    TraceEvent, LATENCY_BUCKETS,
};
use crate::par::parallel_map;
use crate::preprocess::{PreprocessStats, Preprocessor, PreprocessorConfig, SyslogClassifier};
use crate::shard::{ShardRouter, FALLBACK_SHARD};
use crate::sop::{SopEngine, SopPlan};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use skynet_model::{
    AlertClass, AlertKind, IncidentId, PingLog, PingSample, RawAlert, SimTime, StructuredAlert,
    TraceId,
};
use skynet_topology::Topology;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Knobs for the streaming runtime (channel sizing, ingestion guard,
/// shedding and supervision).
///
/// `#[non_exhaustive]`: construct via [`StreamingConfig::default`] and the
/// fluent `with_*` setters so future knobs (like the `shards` knob this
/// struct gained in PR 3) stop being breaking changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct StreamingConfig {
    /// Bounded event-channel capacity.
    pub event_capacity: usize,
    /// Bounded incident-channel capacity.
    pub incident_capacity: usize,
    /// Ingestion-guard knobs (watermark skew, future tolerance, quarantine
    /// size).
    pub guard: GuardConfig,
    /// Publish shared counter snapshots every this many processed alerts
    /// (ticks and flushes always publish). `0` publishes on every alert.
    pub stats_interval: u64,
    /// Event-channel fill fraction above which `Abnormal` alerts are shed
    /// by [`StreamingHandle::send_alert`].
    pub shed_high_water: f64,
    /// Worker panics tolerated (each costs a restart with fresh stage
    /// state) before the supervisor gives up.
    pub max_restarts: u32,
    /// Region-affine shards for the locate/evaluate stages. `1` (the
    /// default) keeps the single-worker layout; `N > 1` fans structured
    /// alerts out to N workers by the [`ShardRouter`] and merges their
    /// incidents back into the canonical order. Output is byte-identical
    /// at any shard count — see the module docs of [`crate::shard`].
    #[serde(default = "default_shards")]
    pub shards: usize,
}

fn default_shards() -> usize {
    1
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            event_capacity: 4096,
            incident_capacity: 256,
            guard: GuardConfig::default(),
            stats_interval: 64,
            shed_high_water: 0.75,
            max_restarts: 3,
            shards: default_shards(),
        }
    }
}

impl StreamingConfig {
    /// Sets the bounded event-channel capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Sets the bounded incident-channel capacity.
    pub fn with_incident_capacity(mut self, capacity: usize) -> Self {
        self.incident_capacity = capacity;
        self
    }

    /// Sets the ingestion-guard knobs.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the counter-publish interval (alerts between snapshots).
    pub fn with_stats_interval(mut self, interval: u64) -> Self {
        self.stats_interval = interval;
        self
    }

    /// Sets the shedding high-water fraction.
    pub fn with_shed_high_water(mut self, fraction: f64) -> Self {
        self.shed_high_water = fraction;
        self
    }

    /// Sets the supervisor's restart budget.
    pub fn with_max_restarts(mut self, restarts: u32) -> Self {
        self.max_restarts = restarts;
        self
    }

    /// Sets the region-affine shard count for the locate/evaluate stages.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Configuration of the whole pipeline.
///
/// `#[non_exhaustive]`: construct via [`PipelineConfig::default`] /
/// [`PipelineConfig::production`] and the fluent `with_*` setters so
/// future knobs are not breaking changes. Field *access* and mutation stay
/// available.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Preprocessor knobs (§4.1).
    pub preprocessor: PreprocessorConfig,
    /// Locator knobs (§4.2).
    pub locator: LocatorConfig,
    /// Evaluator knobs (§4.3).
    pub evaluator: EvaluatorConfig,
    /// Streaming-runtime knobs (§6.2). Also supplies the ingestion-guard
    /// settings the batch path uses.
    #[serde(default)]
    pub streaming: StreamingConfig,
    /// Observability knobs: stage tracing and the trace-ring capacity.
    #[serde(default)]
    pub obs: ObsConfig,
    /// Fault-injection policy (disabled by default; zero-cost when off).
    #[serde(default)]
    pub faults: FaultConfig,
    /// FT-tree minimum template support.
    pub classifier_min_support: u32,
    /// FT-tree maximum template depth.
    pub classifier_max_depth: usize,
}

impl PipelineConfig {
    /// The paper's production settings.
    pub fn production() -> Self {
        PipelineConfig {
            preprocessor: PreprocessorConfig::default(),
            locator: LocatorConfig::default(),
            evaluator: EvaluatorConfig::default(),
            streaming: StreamingConfig::default(),
            obs: ObsConfig::default(),
            faults: FaultConfig::default(),
            classifier_min_support: 3,
            classifier_max_depth: 8,
        }
    }

    /// Sets the preprocessor knobs.
    pub fn with_preprocessor(mut self, cfg: PreprocessorConfig) -> Self {
        self.preprocessor = cfg;
        self
    }

    /// Sets the locator knobs.
    pub fn with_locator(mut self, cfg: LocatorConfig) -> Self {
        self.locator = cfg;
        self
    }

    /// Sets the evaluator knobs.
    pub fn with_evaluator(mut self, cfg: EvaluatorConfig) -> Self {
        self.evaluator = cfg;
        self
    }

    /// Sets the streaming-runtime knobs.
    pub fn with_streaming(mut self, cfg: StreamingConfig) -> Self {
        self.streaming = cfg;
        self
    }

    /// Sets the observability knobs.
    pub fn with_obs(mut self, cfg: ObsConfig) -> Self {
        self.obs = cfg;
        self
    }

    /// Sets the fault-injection policy (chaos testing; disabled by
    /// default).
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }

    /// Sets the FT-tree minimum template support.
    pub fn with_classifier_min_support(mut self, support: u32) -> Self {
        self.classifier_min_support = support;
        self
    }

    /// Sets the FT-tree maximum template depth.
    pub fn with_classifier_max_depth(mut self, depth: usize) -> Self {
        self.classifier_max_depth = depth;
        self
    }
}

/// The final report handed to operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Every incident, ranked by severity (highest first).
    pub incidents: Vec<ScoredIncident>,
    /// Automatic SOP plans for the incidents that matched a known-failure
    /// rule.
    pub sop_plans: Vec<(IncidentId, SopPlan)>,
    /// Preprocessing counters (Fig. 8b's data).
    pub preprocess: PreprocessStats,
    /// Ingestion-guard counters: rejects per reason, late drops, watermark.
    #[serde(default)]
    pub ingest: IngestStats,
    /// The severity threshold in force.
    pub severity_threshold: f64,
    /// Faults the fault plane injected during this run (empty when
    /// injection is disabled).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<InjectedFault>,
    /// Dead letters quarantined during this run — guard rejects plus
    /// alerts preserved by injected faults (empty when nothing was
    /// rejected).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub dead_letters: Vec<DeadLetter>,
}

impl AnalysisReport {
    /// Incidents at or above the severity threshold — what operators are
    /// actually paged for (§6.4).
    pub fn actionable(&self) -> impl Iterator<Item = &ScoredIncident> {
        self.incidents
            .iter()
            .filter(|s| s.score() >= self.severity_threshold)
    }

    /// The SOP plan for an incident, if a known-failure rule matched.
    pub fn sop_for(&self, id: IncidentId) -> Option<&SopPlan> {
        self.sop_plans
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| p)
    }

    /// A truncated, highest-severity-first context block for an LLM
    /// diagnostic assistant (§9: "SkyNet truncates the monitoring results
    /// to maintain compliance with the LLM input length constraints
    /// without sacrificing valuable information"). Whole incidents are
    /// included in rank order until the budget is exhausted; an incident
    /// is never split. The budget counts `char`s, not bytes, so multi-byte
    /// location names cannot skew the cut-off.
    pub fn llm_context(&self, max_chars: usize) -> String {
        let mut out = String::new();
        let mut used = 0usize;
        for scored in &self.incidents {
            let block = format!(
                "incident at {} (severity {:.1}, zoomed {}):\n{}\n",
                scored.incident.root,
                scored.score(),
                scored.zoom.location,
                scored.incident.report()
            );
            let block_chars = block.chars().count();
            if used.saturating_add(block_chars) > max_chars {
                break;
            }
            used += block_chars;
            out.push_str(&block);
        }
        out
    }

    /// Renders the ranked incident list with severities and zooms, Fig. 6
    /// style.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} incidents ({} actionable at threshold {}):",
            self.incidents.len(),
            self.actionable().count(),
            self.severity_threshold
        );
        for scored in &self.incidents {
            let _ = writeln!(
                s,
                "--- score {:.1} (impact {:.1} × time {:.2}), zoom: {} [{:?}]",
                scored.score(),
                scored.severity.impact,
                scored.severity.time_factor,
                scored.zoom.location,
                scored.zoom.method,
            );
            let _ = write!(s, "{}", scored.incident.report());
            if let Some(plan) = self.sop_for(scored.incident.id) {
                let _ = writeln!(s, "SOP: {} -> {:?}", plan.rule, plan.action);
            }
        }
        s
    }
}

/// Builder for [`SkyNet`] — the one way to assemble the pipeline.
///
/// ```
/// use skynet_core::{PipelineConfig, SkyNet};
/// use skynet_topology::{generate, GeneratorConfig};
/// use std::sync::Arc;
///
/// let topo = Arc::new(generate(&GeneratorConfig::small()));
/// let sky = SkyNet::builder(&topo)
///     .config(PipelineConfig::production())
///     .build();
/// # let _ = sky;
/// ```
#[derive(Debug)]
pub struct SkyNetBuilder {
    topo: Arc<Topology>,
    cfg: PipelineConfig,
    classifier: Option<Arc<SyslogClassifier>>,
    training: Option<Vec<(String, AlertKind)>>,
    observability: Option<Observability>,
}

impl SkyNetBuilder {
    /// Sets the pipeline configuration (defaults to
    /// [`PipelineConfig::default`]).
    pub fn config(mut self, cfg: PipelineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Trains the FT-tree syslog classifier on a labelled historical
    /// corpus at [`SkyNetBuilder::build`] time, using the config's
    /// `classifier_min_support` / `classifier_max_depth`. Without a corpus
    /// (or an explicit [`SkyNetBuilder::classifier`]) raw syslog becomes
    /// `Unclassified`.
    pub fn training(mut self, corpus: &[(String, AlertKind)]) -> Self {
        self.training = Some(corpus.to_vec());
        self
    }

    /// Uses an already-trained classifier (shared, not cloned, by every
    /// analysis run, shard and worker restart). Takes precedence over
    /// [`SkyNetBuilder::training`].
    pub fn classifier(mut self, classifier: Arc<SyslogClassifier>) -> Self {
        self.classifier = Some(classifier);
        self
    }

    /// Plugs in an external observability sink — share one
    /// [`Observability`] between several pipelines (or pre-register your
    /// own metrics next to SkyNet's). By default `build` creates a fresh
    /// one from the config's [`ObsConfig`].
    pub fn observability(mut self, obs: Observability) -> Self {
        self.observability = Some(obs);
        self
    }

    /// Assembles the pipeline.
    pub fn build(self) -> SkyNet {
        let classifier = self.classifier.or_else(|| {
            self.training.as_ref().map(|corpus| {
                Arc::new(SyslogClassifier::train(
                    corpus,
                    self.cfg.classifier_min_support,
                    self.cfg.classifier_max_depth,
                ))
            })
        });
        let obs = self
            .observability
            .unwrap_or_else(|| Observability::new(&self.cfg.obs));
        // Warm the process-wide worker pool here (rather than lazily on the
        // first batch) and expose its size: the first analyze call then
        // pays no thread-spawn cost, and dashboards can see how wide the
        // parallel stages fan out.
        let pool = crate::par::shared_pool();
        obs.registry()
            .gauge(
                "skynet_pool_threads",
                "persistent worker-pool threads shared by all parallel stages",
            )
            .set(pool.threads() as f64);
        SkyNet {
            topo: self.topo,
            cfg: self.cfg,
            classifier,
            obs,
        }
    }

    /// Builds the pipeline and spawns it as the supervised streaming
    /// runtime in one step — the builder-first spelling of
    /// [`SkyNet::stream`].
    pub fn stream(self) -> StreamingHandle {
        self.build().stream()
    }

    /// Builds the pipeline and starts the always-on multi-tenant ingest
    /// service: per-tenant ingest guards behind bounded queues, a
    /// replayable write-ahead log, snapshot/restore warm restarts and an
    /// optional TCP/JSON front door. See [`crate::serve`] for the
    /// architecture and [`ServeConfig`](crate::serve::ServeConfig) for the
    /// knobs.
    pub fn serve(
        self,
        cfg: crate::serve::ServeConfig,
    ) -> Result<crate::serve::ServiceHandle, crate::serve::ServeError> {
        crate::serve::ServiceHandle::start(self.build(), cfg)
    }
}

/// The assembled system.
#[derive(Debug)]
pub struct SkyNet {
    pub(crate) topo: Arc<Topology>,
    pub(crate) cfg: PipelineConfig,
    pub(crate) classifier: Option<Arc<SyslogClassifier>>,
    pub(crate) obs: Observability,
}

impl SkyNet {
    /// Starts assembling a pipeline for `topo`. See [`SkyNetBuilder`].
    pub fn builder(topo: &Arc<Topology>) -> SkyNetBuilder {
        SkyNetBuilder {
            topo: Arc::clone(topo),
            cfg: PipelineConfig::default(),
            classifier: None,
            training: None,
            observability: None,
        }
    }

    /// A pipeline without a syslog classifier (raw syslog becomes
    /// `Unclassified`).
    #[deprecated(
        since = "0.2.0",
        note = "use `SkyNet::builder(topo).config(cfg).build()`"
    )]
    pub fn new(topo: &Arc<Topology>, cfg: PipelineConfig) -> Self {
        SkyNet::builder(topo).config(cfg).build()
    }

    /// A pipeline whose FT-tree classifier is trained on a labelled
    /// historical corpus.
    #[deprecated(
        since = "0.2.0",
        note = "use `SkyNet::builder(topo).config(cfg).training(corpus).build()`"
    )]
    pub fn with_training(
        topo: &Arc<Topology>,
        cfg: PipelineConfig,
        corpus: &[(String, AlertKind)],
    ) -> Self {
        SkyNet::builder(topo).config(cfg).training(corpus).build()
    }

    /// The topology under analysis.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The pipeline's observability handle: metrics snapshots, exporters
    /// and per-alert trace queries. Batch analyses accumulate into it;
    /// [`SkyNet::stream`] hands a clone of it to the
    /// [`StreamingHandle`].
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Spawns this pipeline as a supervised streaming worker fed through a
    /// bounded channel — the paper's production deployment shape (§6.2).
    /// Prefer reaching this through the builder:
    /// `SkyNet::builder(topo).config(cfg).stream()`.
    pub fn stream(self) -> StreamingHandle {
        spawn_streaming_impl(self)
    }

    /// Every retained trace event of one alert — "where did alert X go?".
    pub fn explain(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.obs.explain(trace)
    }

    /// The full stage trace of an incident's constituent alerts, in
    /// recording order.
    pub fn explain_incident(&self, incident: &Incident) -> Vec<TraceEvent> {
        let traces: Vec<TraceId> = incident.alerts.iter().map(|a| a.trace).collect();
        self.obs.explain_all(&traces)
    }

    /// Batch analysis of a recorded flood: guard, preprocess, locate until
    /// `horizon`, evaluate, rank, and match SOPs. Malformed or hopelessly
    /// late alerts are rejected (counted in the report's `ingest` stats)
    /// rather than analyzed.
    ///
    /// Borrowing convenience over [`SkyNet::analyze_owned`]: the recorded
    /// feed is copied once up front. Callers that own their flood should
    /// call `analyze_owned` directly and skip the copy.
    pub fn analyze(&self, alerts: &[RawAlert], ping: &PingLog, horizon: SimTime) -> AnalysisReport {
        self.analyze_owned(alerts.to_vec(), ping, horizon)
    }

    /// [`SkyNet::analyze`], taking ownership of the flood so no alert is
    /// cloned on the hot path.
    ///
    /// With `streaming.shards > 1` the locate stage runs region-sharded:
    /// the guard and preprocessor consume the feed sequentially (the
    /// watermark is global and peered ping alerts split into *both*
    /// endpoint regions, so sharding raw alerts would change admission and
    /// consolidation), then structured alerts fan out by region to one
    /// locator per shard, run in parallel, and the completed incidents
    /// merge back into the canonical order. The report is byte-identical
    /// at any shard count.
    pub fn analyze_owned(
        &self,
        alerts: Vec<RawAlert>,
        ping: &PingLog,
        horizon: SimTime,
    ) -> AnalysisReport {
        let shards = self.cfg.streaming.shards.max(1);
        let plane = FaultPlane::from_config(&self.cfg.faults, &self.obs);
        let arm = |site: InjectionSite| plane.as_ref().and_then(|p| p.arm(site, 0));
        let dead = Arc::new(Mutex::new(DeadLetterQueue::new(
            self.cfg.streaming.guard.dead_letter_capacity,
        )));
        let mut preprocessor =
            Preprocessor::new(self.cfg.preprocessor.clone(), self.classifier.clone())
                .with_observability(&self.obs)
                .with_faults(
                    arm(InjectionSite::PreprocessClassify),
                    arm(InjectionSite::PreprocessConsolidate),
                );
        let mut guard = IngestGuard::with_dead_letters(
            &self.topo,
            self.cfg.streaming.guard.clone(),
            Arc::clone(&dead),
        )
        .with_observability(&self.obs)
        .with_faults(
            arm(InjectionSite::GuardOffer),
            arm(InjectionSite::GuardValidate),
        );
        let route_fault = arm(InjectionSite::ShardRoute);
        let router = ShardRouter::new(self.topo.interner(), shards);
        let tracer = self.obs.tracer();
        let stage_seconds = StageLatency::registered(&self.obs);

        // Guard: admit, re-sequence, reject. Feed-order releases are
        // independent of when downstream stages consume them.
        let started = Instant::now();
        let mut released = Vec::with_capacity(alerts.len());
        guard.offer_batch(alerts, &mut released);
        guard.advance(horizon, &mut released);
        guard.flush(&mut released);
        let guarded = Instant::now();
        stage_seconds
            .guard
            .observe(guarded.duration_since(started).as_secs_f64());

        // Preprocess sequentially, routing each structured alert to its
        // region's shard.
        let mut partitions: Vec<Vec<StructuredAlert>> = vec![Vec::new(); shards];
        let mut structured = Vec::new();
        for raw in &released {
            structured.clear();
            preprocessor.push(raw, &mut structured);
            for alert in structured.drain(..) {
                let shard = if faultinject::trip(&route_fault, alert.trace, alert.last_seen) {
                    FALLBACK_SHARD
                } else {
                    router.route(&alert.location)
                };
                tracer.record(
                    alert.trace,
                    alert.last_seen,
                    Stage::ShardRouted(shard as u16),
                );
                partitions[shard].push(alert);
            }
        }
        preprocessor.finish();
        let preprocessed = Instant::now();
        stage_seconds
            .preprocess
            .observe(preprocessed.duration_since(guarded).as_secs_f64());

        // Locate each shard's sub-stream in parallel. A region-restricted
        // locator fires the same grid checks over the same region-local
        // state as the global one, so per-shard incidents equal the
        // single worker's (see DESIGN.md on the sharding invariants).
        //
        // Each lane runs under its own catch_unwind retry loop so injected
        // locate-worker panics exercise the same restart semantics the
        // streaming supervisor has: a panicked lane restarts with a fresh
        // locator and replays its whole partition (the fault arm's state
        // lives in the plane, so the decision stream does not rewind). A
        // lane that exhausts the restart budget surrenders its partition
        // as dead letters instead of losing it.
        let restart_counter = self.obs.registry().counter(
            "skynet_worker_restarts_total",
            "worker restarts performed by the supervisors",
        );
        let max_restarts = self.cfg.streaming.max_restarts;
        let lanes: Vec<(u32, Vec<StructuredAlert>)> = partitions
            .into_iter()
            .enumerate()
            .map(|(lane, batch)| (lane as u32, batch))
            .collect();
        let locate =
            |(lane, batch): (u32, Vec<StructuredAlert>)| -> (Vec<Incident>, Vec<StructuredAlert>) {
                let fault = plane
                    .as_ref()
                    .and_then(|p| p.arm(InjectionSite::LocateWorker, lane));
                let mut attempts = 0u32;
                loop {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let mut locator = Locator::new(&self.topo, self.cfg.locator.clone())
                            .with_observability(&self.obs);
                        let mut lost = Vec::new();
                        for alert in &batch {
                            if let Some(arm) = &fault {
                                match arm.check(alert.trace, alert.last_seen) {
                                    Some(FaultAction::Error) => {
                                        lost.push(alert.clone());
                                        continue;
                                    }
                                    Some(FaultAction::Panic) => arm.panic_now(),
                                    Some(FaultAction::Latency(ms)) => faultinject::sleep_ms(ms),
                                    None => {}
                                }
                            }
                            tracer.record(alert.trace, alert.last_seen, Stage::LocateInserted);
                            locator.insert(alert);
                        }
                        locator.advance(horizon);
                        locator.finish();
                        (locator.take_completed(), lost)
                    }));
                    match outcome {
                        Ok(result) => return result,
                        Err(_) => {
                            attempts += 1;
                            restart_counter.inc();
                            if let Some(arm) = &fault {
                                tracer.record(
                                    arm.last_fired_trace(),
                                    arm.last_fired_at(),
                                    Stage::WorkerRestarted(lane as u16),
                                );
                            }
                            if attempts > max_restarts {
                                // Budget exhausted: preserve the whole
                                // partition rather than dropping it silently.
                                return (Vec::new(), batch.clone());
                            }
                        }
                    }
                }
            };
        let per_shard = parallel_map(lanes, shards, locate);
        self.obs
            .registry()
            .gauge(
                "skynet_pool_jobs_completed",
                "chunk jobs executed by the shared worker pool (process-wide)",
            )
            .set(crate::par::shared_pool().jobs_completed() as f64);
        let mut incident_parts = Vec::with_capacity(per_shard.len());
        for (completed, lost) in per_shard {
            // Dead-letter fault-intercepted alerts here, sequentially in
            // shard order, so the queue's contents replay identically.
            for alert in &lost {
                push_fault_letter(&dead, alert);
            }
            incident_parts.push(completed);
        }
        let incidents = merge_incidents(incident_parts);
        let located = Instant::now();
        stage_seconds
            .locate
            .observe(located.duration_since(preprocessed).as_secs_f64());
        // Completion events carry the *canonical* (post-merge) incident
        // ids, so explain answers match the report the operator reads.
        for incident in &incidents {
            for alert in &incident.alerts {
                tracer.record(
                    alert.trace,
                    incident.last_seen,
                    Stage::IncidentCompleted(incident.id),
                );
            }
        }

        let dead_letters: Vec<DeadLetter> = dead.lock().letters().cloned().collect();
        let report = self.finish_report(
            incidents,
            ping,
            preprocessor.stats(),
            guard.stats(),
            dead_letters,
            plane,
        );
        stage_seconds
            .evaluate
            .observe(located.elapsed().as_secs_f64());
        report
    }

    /// Post-incident analysis for a batch run: every fault the report's
    /// run injected, the restart/shed counters, and the degradation
    /// timeline from the trace ring. For streaming use
    /// [`StreamingHandle::degradation_report`].
    pub fn degradation_report(&self, report: &AnalysisReport) -> DegradationReport {
        let fault_letters = report
            .dead_letters
            .iter()
            .filter(|l| l.reason == RejectReason::FaultInjected)
            .count() as u64;
        let restarts = self
            .obs
            .snapshot()
            .counter("skynet_worker_restarts_total", None);
        DegradationReport::assemble(
            report.faults.clone(),
            &self.obs,
            fault_letters,
            restarts,
            false,
            None,
        )
    }

    pub(crate) fn finish_report(
        &self,
        incidents: Vec<Incident>,
        ping: &PingLog,
        preprocess: PreprocessStats,
        ingest: IngestStats,
        dead_letters: Vec<DeadLetter>,
        plane: Option<Arc<FaultPlane>>,
    ) -> AnalysisReport {
        let evaluator = Evaluator::new(&self.topo, self.cfg.evaluator.clone()).with_faults(
            plane
                .as_ref()
                .and_then(|p| p.arm(InjectionSite::MatrixBuild, 0)),
            plane
                .as_ref()
                .and_then(|p| p.arm(InjectionSite::Evaluate, 0)),
        );
        let sop_fault = plane
            .as_ref()
            .and_then(|p| p.arm(InjectionSite::SopSelect, 0));
        let sop = SopEngine::standard(&self.topo);
        let mut sop_plans = Vec::new();
        for incident in &incidents {
            let trace = incident
                .alerts
                .first()
                .map(|a| a.trace)
                .unwrap_or(TraceId::NONE);
            if faultinject::trip(&sop_fault, trace, incident.last_seen) {
                continue;
            }
            if let Some(plan) = sop.match_incident(incident) {
                sop_plans.push((incident.id, plan));
            }
        }
        let reg = self.obs.registry();
        reg.counter(
            "skynet_incidents_completed_total",
            "incidents completed by the locator",
        )
        .add(incidents.len() as u64);
        let (scored, memo) = evaluator.rank_memoized(incidents, ping);
        reg.counter(
            "skynet_matrix_builds_total",
            "reachability matrices built by the evaluator's zoom stage",
        )
        .add(memo.builds);
        reg.counter(
            "skynet_matrix_hits_total",
            "reachability-matrix memo hits in the evaluator's zoom stage",
        )
        .add(memo.hits);
        reg.counter(
            "skynet_matrix_delta_updates_total",
            "reachability matrices produced by sliding-window delta updates",
        )
        .add(memo.delta_updates);
        reg.counter(
            "skynet_matrix_rebuilds_total",
            "reachability matrices rebuilt from scratch by the memo",
        )
        .add(memo.rebuilds);
        let tracer = self.obs.tracer();
        if tracer.is_enabled() {
            for s in &scored {
                for alert in &s.incident.alerts {
                    tracer.record(
                        alert.trace,
                        s.incident.last_seen,
                        Stage::Scored(s.incident.id),
                    );
                }
            }
        }
        AnalysisReport {
            incidents: scored,
            sop_plans,
            preprocess,
            ingest,
            severity_threshold: self.cfg.evaluator.severity_threshold,
            faults: plane.as_ref().map(|p| p.ledger()).unwrap_or_default(),
            dead_letters,
        }
    }
}

/// Synthesizes a dead letter for a structured alert a fault intercepted
/// past the guard, so chaos runs never lose evidence silently.
fn push_fault_letter(dead: &Arc<Mutex<DeadLetterQueue>>, alert: &StructuredAlert) {
    let raw = RawAlert::known(
        alert.ty.source,
        alert.last_seen,
        alert.location.clone(),
        alert.ty.kind,
    )
    .with_magnitude(alert.magnitude)
    .with_trace(alert.trace);
    dead.lock().push(raw, RejectReason::FaultInjected);
}

/// Per-phase wall-clock histograms. Latency is observed at *phase*
/// granularity (one observation per stage per analysis, or per streaming
/// tick), never per alert — the hot loops stay free of clock reads.
struct StageLatency {
    guard: Histogram,
    preprocess: Histogram,
    locate: Histogram,
    evaluate: Histogram,
}

impl StageLatency {
    fn registered(obs: &Observability) -> Self {
        let reg = obs.registry();
        let stage = |name: &str| {
            reg.histogram(
                "skynet_stage_seconds",
                Some(("stage", name)),
                &LATENCY_BUCKETS,
                "wall-clock seconds spent per pipeline phase",
            )
        };
        StageLatency {
            guard: stage("guard"),
            preprocess: stage("preprocess"),
            locate: stage("locate"),
            evaluate: stage("evaluate"),
        }
    }
}

/// Merges per-shard completed incidents into the canonical report order
/// and renumbers their ids.
///
/// Each shard's locator assigns ids from its own counter, so raw ids are a
/// function of the sharding layout. The merge erases that: incidents sort
/// by the intrinsic key `(first_seen, root, last_seen)` — total on real
/// data because two incidents with the same root live in the same region,
/// hence the same shard, where the stable sort keeps their locator
/// completion order, itself identical across layouts — and ids are
/// reassigned densely in that order. The 1-shard path goes through the
/// same merge, which is what makes reports byte-comparable across shard
/// counts.
pub(crate) fn merge_incidents(per_shard: Vec<Vec<Incident>>) -> Vec<Incident> {
    let mut all: Vec<Incident> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        (a.first_seen, &a.root, a.last_seen).cmp(&(b.first_seen, &b.root, b.last_seen))
    });
    for (i, incident) in all.iter_mut().enumerate() {
        incident.id = IncidentId::from_index(i);
    }
    all
}

/// Events accepted by the streaming worker.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A raw alert from any monitoring tool.
    Alert(RawAlert),
    /// A lossy ping sample for the reachability matrix.
    Ping(PingSample),
    /// Advance the pipeline's clock without an alert: drives locator
    /// timeouts through quiet periods and arms the ingestion guard's
    /// future-timestamp check.
    Tick(SimTime),
    /// End of stream: finalize all open incidents and stop.
    Flush,
    /// Chaos hook: makes the worker panic when processed, exercising the
    /// supervisor's catch-and-restart path. Costs one restart.
    ChaosPanic,
}

/// An incident emitted by the streaming pipeline: the scored incident plus
/// the SOP plan a known-failure rule matched, mirroring what the batch
/// report records in `sop_plans`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamIncident {
    /// The evaluated incident.
    pub scored: ScoredIncident,
    /// The automatic SOP plan, if a rule matched.
    pub sop: Option<SopPlan>,
}

/// Liveness/health probe result for the streaming pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The supervisor loop is still running.
    pub alive: bool,
    /// Worker panics caught so far (each but possibly the last led to a
    /// restart with fresh stage state).
    pub restarts: u32,
    /// The supervisor exhausted its restart budget and stopped.
    pub gave_up: bool,
    /// The terminal degradation cause when `gave_up` is set: the error
    /// behind the panic that exhausted the budget (an injected fault names
    /// its site; anything else surfaces as
    /// [`SkyNetError::WorkerPanicked`]).
    pub degraded: Option<SkyNetError>,
    /// Events currently queued in the channel.
    pub queued_events: usize,
}

/// A consistent snapshot of every counter the streaming pipeline keeps,
/// taken across worker restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestSnapshot {
    /// Preprocessing counters (including producer-side shed counts).
    pub preprocess: PreprocessStats,
    /// Ingestion-guard counters.
    pub ingest: IngestStats,
    /// Worker panics caught so far.
    pub restarts: u32,
}

/// The shedding policy (graceful degradation under flood, §6.2):
/// [`AlertClass::Failure`] evidence is never shed — losing it costs
/// detection recall; [`AlertClass::Abnormal`] alerts shed once the queue
/// passes the `high_water` fraction of `capacity`; [`AlertClass::RootCause`]
/// alerts shed only when the queue is completely full.
pub fn should_shed(class: AlertClass, queued: usize, capacity: usize, high_water: f64) -> bool {
    match class {
        AlertClass::Failure => false,
        AlertClass::Abnormal => (queued as f64) >= (capacity as f64) * high_water,
        AlertClass::RootCause => queued >= capacity,
    }
}

/// Both counter families, published together under one lock so a reader
/// can never observe a preprocess snapshot from one publish paired with an
/// ingest snapshot from another.
#[derive(Debug, Clone, Copy, Default)]
struct SharedCounters {
    preprocess: PreprocessStats,
    ingest: IngestStats,
}

/// Supervisor lifecycle read and written as one unit: the previous
/// separate `alive`/`gave_up`/`restarts` atomics allowed a
/// [`HealthReport`] to pair a fresh `restarts` with a stale `gave_up`.
#[derive(Debug, Clone, Copy)]
struct SupervisorState {
    alive: bool,
    gave_up: bool,
    restarts: u32,
    /// Why the budget ran out, preserved from the final caught panic.
    degraded: Option<SkyNetError>,
}

#[derive(Debug)]
struct Monitor {
    state: Mutex<SupervisorState>,
    /// Producer-side shed counts stay atomic: they are bumped on the
    /// send_alert hot path and are individually monotonic.
    shed_abnormal: AtomicU64,
    shed_root_cause: AtomicU64,
    restarts_metric: Counter,
    shed_abnormal_metric: Counter,
    shed_root_cause_metric: Counter,
}

impl Monitor {
    fn new(obs: &Observability) -> Self {
        let reg = obs.registry();
        Monitor {
            state: Mutex::new(SupervisorState {
                alive: true,
                gave_up: false,
                restarts: 0,
                degraded: None,
            }),
            shed_abnormal: AtomicU64::new(0),
            shed_root_cause: AtomicU64::new(0),
            restarts_metric: reg.counter(
                "skynet_worker_restarts_total",
                "worker panics caught and restarted by the supervisor",
            ),
            shed_abnormal_metric: reg.labeled_counter(
                "skynet_shed_total",
                Some(("class", "abnormal")),
                "alerts shed by the producer under load, by class",
            ),
            shed_root_cause_metric: reg.labeled_counter(
                "skynet_shed_total",
                Some(("class", "root-cause")),
                "alerts shed by the producer under load, by class",
            ),
        }
    }

    /// Counts one caught panic; returns the new total.
    fn count_restart(&self) -> u32 {
        self.restarts_metric.inc();
        let mut s = self.state.lock();
        s.restarts += 1;
        s.restarts
    }

    /// Marks the terminal `Degraded` state, preserving the error behind
    /// the panic that exhausted the restart budget. The first cause wins:
    /// in sharded mode several supervisors may give up independently and
    /// the first failure is the one worth reporting.
    fn give_up(&self, cause: SkyNetError) {
        let mut s = self.state.lock();
        s.gave_up = true;
        s.degraded.get_or_insert(cause);
    }

    fn mark_dead(&self) {
        self.state.lock().alive = false;
    }

    fn state(&self) -> SupervisorState {
        *self.state.lock()
    }
}

/// Handle to a running streaming pipeline.
#[derive(Debug)]
pub struct StreamingHandle {
    /// Send events here. Prefer [`StreamingHandle::send_alert`] for alerts
    /// so the shedding policy applies.
    pub events: Sender<StreamEvent>,
    /// Scored incidents (with their SOP plans) arrive here as their trees
    /// finalize.
    pub incidents: Receiver<StreamIncident>,
    /// Quarantined rejects with their reasons; survives worker restarts.
    pub dead_letters: Arc<Mutex<DeadLetterQueue>>,
    /// Supervisor thread handle.
    pub worker: JoinHandle<()>,
    counters: Arc<Mutex<SharedCounters>>,
    monitor: Arc<Monitor>,
    obs: Observability,
    plane: Option<Arc<FaultPlane>>,
    shed_high_water: f64,
}

impl StreamingHandle {
    /// Submits one alert with class-aware load shedding. `Failure`-class
    /// alerts always block until queued (they are never shed); `Abnormal`
    /// alerts are shed once the channel passes the high-water mark,
    /// `RootCause` alerts only when it is full. Shed counts surface in
    /// [`PreprocessStats::shed_abnormal`] / [`PreprocessStats::shed_root_cause`].
    ///
    /// Raw syslog text is unclassified at this point and treated as
    /// `Abnormal` for shedding purposes.
    pub fn send_alert(&self, raw: RawAlert) -> Result<(), SkyNetError> {
        let class = raw.known_kind().map_or(AlertClass::Abnormal, |k| k.class());
        if class == AlertClass::Failure {
            return self
                .events
                .send(StreamEvent::Alert(raw))
                .map_err(|_| SkyNetError::ChannelClosed);
        }
        let capacity = self.events.capacity().unwrap_or(usize::MAX);
        if should_shed(class, self.events.len(), capacity, self.shed_high_water) {
            self.note_shed(class, &raw);
            return Err(SkyNetError::Shed { class });
        }
        match self.events.try_send(StreamEvent::Alert(raw)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(raw)) => {
                if let StreamEvent::Alert(raw) = raw {
                    self.note_shed(class, &raw);
                }
                Err(SkyNetError::Shed { class })
            }
            Err(TrySendError::Disconnected(_)) => Err(SkyNetError::ChannelClosed),
        }
    }

    fn note_shed(&self, class: AlertClass, raw: &RawAlert) {
        match class {
            AlertClass::Abnormal => {
                self.monitor.shed_abnormal.fetch_add(1, Ordering::Relaxed);
                self.monitor.shed_abnormal_metric.inc();
            }
            AlertClass::RootCause => {
                self.monitor.shed_root_cause.fetch_add(1, Ordering::Relaxed);
                self.monitor.shed_root_cause_metric.inc();
            }
            AlertClass::Failure => {}
        }
        // Only alerts that already carry a trace id (re-submissions) show
        // up here; the guard has not assigned ids yet for fresh ones.
        self.obs
            .tracer()
            .record(raw.trace, raw.timestamp, Stage::Shed(class));
    }

    /// The liveness probe. All three lifecycle fields come from one lock
    /// acquisition, so `restarts` can never outrun `gave_up`.
    pub fn health(&self) -> HealthReport {
        let s = self.monitor.state();
        HealthReport {
            alive: s.alive,
            restarts: s.restarts,
            gave_up: s.gave_up,
            degraded: s.degraded,
            queued_events: self.events.len(),
        }
    }

    /// Every fault the injection policy fired so far, in canonical
    /// (site, lane, ordinal) order. Empty when injection is disabled.
    pub fn injected_faults(&self) -> Vec<InjectedFault> {
        self.plane.as_ref().map(|p| p.ledger()).unwrap_or_default()
    }

    /// Reconstructs the degradation story of the stream so far: the fault
    /// ledger, restart/shed counters, fault-quarantined dead letters, the
    /// degradation timeline from the trace ring, and — if the supervisor
    /// gave up — the terminal cause.
    pub fn degradation_report(&self) -> DegradationReport {
        let health = self.health();
        let fault_letters = self
            .dead_letters
            .lock()
            .letters()
            .filter(|l| l.reason == RejectReason::FaultInjected)
            .count() as u64;
        DegradationReport::assemble(
            self.injected_faults(),
            &self.obs,
            fault_letters,
            u64::from(health.restarts),
            health.gave_up,
            health.degraded,
        )
    }

    /// True while the supervisor loop is running.
    pub fn is_alive(&self) -> bool {
        self.monitor.state().alive
    }

    /// Live preprocessing counters (refreshed every `stats_interval`
    /// alerts and on every tick/flush; survive worker restarts), with
    /// not-yet-published shed counts merged in.
    pub fn preprocess_stats(&self) -> PreprocessStats {
        let mut pre = self.counters.lock().preprocess;
        pre.shed_abnormal = self.monitor.shed_abnormal.load(Ordering::Relaxed);
        pre.shed_root_cause = self.monitor.shed_root_cause.load(Ordering::Relaxed);
        pre
    }

    /// Live ingestion-guard counters (same cadence as
    /// [`StreamingHandle::preprocess_stats`]).
    pub fn ingest_stats(&self) -> IngestStats {
        self.counters.lock().ingest
    }

    /// A consistent counter snapshot including not-yet-published shed
    /// counts. Both counter families come from one lock acquisition —
    /// they were published together by the same worker pass.
    pub fn snapshot(&self) -> IngestSnapshot {
        let c = *self.counters.lock();
        let mut preprocess = c.preprocess;
        preprocess.shed_abnormal = self.monitor.shed_abnormal.load(Ordering::Relaxed);
        preprocess.shed_root_cause = self.monitor.shed_root_cause.load(Ordering::Relaxed);
        IngestSnapshot {
            preprocess,
            ingest: c.ingest,
            restarts: self.monitor.state().restarts,
        }
    }

    /// The observability handle shared with the workers: registry,
    /// exporters and the trace ring all stay valid across restarts.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// The retained stage trace of one alert, oldest first.
    pub fn explain(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.obs.explain(trace)
    }
}

/// The shared surface of every long-lived pipeline handle — the streaming
/// runtime's [`StreamingHandle`] and the serving layer's
/// [`ServiceHandle`](crate::serve::ServiceHandle) — so operational code
/// (health endpoints, scrape loops, post-incident tooling) is written once
/// against the trait.
///
/// `Handle: Exporter` — every handle also exports the metrics registry in
/// all three formats.
pub trait Handle: Exporter {
    /// The liveness probe a health-check endpoint polls.
    fn health(&self) -> HealthReport;

    /// The degradation story so far: fault ledger, restart/shed counters,
    /// quarantined evidence and the timeline from the trace ring.
    fn degradation_report(&self) -> DegradationReport;

    /// The retained stage trace of one alert, oldest first.
    fn explain(&self, trace: TraceId) -> Vec<TraceEvent>;
}

impl Exporter for SkyNet {
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.obs.snapshot()
    }
}

impl Exporter for StreamingHandle {
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.obs.snapshot()
    }
}

impl Handle for StreamingHandle {
    fn health(&self) -> HealthReport {
        StreamingHandle::health(self)
    }

    fn degradation_report(&self) -> DegradationReport {
        StreamingHandle::degradation_report(self)
    }

    fn explain(&self, trace: TraceId) -> Vec<TraceEvent> {
        StreamingHandle::explain(self, trace)
    }
}

/// Everything the worker shares with the handle (and keeps across
/// restarts).
struct WorkerShared {
    counters: Arc<Mutex<SharedCounters>>,
    dead: Arc<Mutex<DeadLetterQueue>>,
    monitor: Arc<Monitor>,
    obs: Observability,
    /// Fault-injection state. Lives here — not per incarnation — so a
    /// restarted worker *resumes* its decision streams instead of
    /// replaying them.
    plane: Option<Arc<FaultPlane>>,
}

/// Spawns the pipeline as a supervised worker thread fed through a bounded
/// channel.
#[deprecated(
    since = "0.3.0",
    note = "use `SkyNet::builder(topo).config(cfg).stream()` (or \
            `SkyNet::stream`) — the builder is the one front door"
)]
pub fn spawn_streaming(skynet: SkyNet) -> StreamingHandle {
    skynet.stream()
}

/// The streaming runtime behind [`SkyNet::stream`] — per the tokio guide
/// this workload is CPU-bound stream processing, so it runs on a plain OS
/// thread with crossbeam channels.
fn spawn_streaming_impl(skynet: SkyNet) -> StreamingHandle {
    let scfg = skynet.cfg.streaming.clone();
    let (event_tx, event_rx) = bounded::<StreamEvent>(scfg.event_capacity.max(1));
    let (incident_tx, incident_rx) = bounded::<StreamIncident>(scfg.incident_capacity.max(1));
    let counters = Arc::new(Mutex::new(SharedCounters::default()));
    let dead_letters = Arc::new(Mutex::new(DeadLetterQueue::new(
        scfg.guard.dead_letter_capacity,
    )));
    let obs = skynet.obs.clone();
    let monitor = Arc::new(Monitor::new(&obs));
    let plane = FaultPlane::from_config(&skynet.cfg.faults, &obs);
    let shared = WorkerShared {
        counters: Arc::clone(&counters),
        dead: Arc::clone(&dead_letters),
        monitor: Arc::clone(&monitor),
        obs: obs.clone(),
        plane: plane.clone(),
    };
    let shed_high_water = scfg.shed_high_water;

    let worker = std::thread::Builder::new()
        .name("skynet-pipeline".into())
        .spawn(move || {
            if scfg.shards <= 1 {
                supervise(&skynet, &scfg, &event_rx, &incident_tx, &shared);
            } else {
                run_sharded(&skynet, &scfg, &event_rx, incident_tx, &shared);
            }
        })
        .expect("spawning the pipeline worker thread");

    StreamingHandle {
        events: event_tx,
        incidents: incident_rx,
        dead_letters,
        worker,
        counters,
        monitor,
        obs,
        plane,
        shed_high_water,
    }
}

/// The supervisor: runs the worker under `catch_unwind`; a panic costs one
/// restart with fresh stage state (shared counters and the dead-letter
/// queue survive), up to `max_restarts`. Counter deltas not yet published
/// when a panic hits (at most `stats_interval` alerts' worth) are lost with
/// the stage state.
fn supervise(
    skynet: &SkyNet,
    scfg: &StreamingConfig,
    events: &Receiver<StreamEvent>,
    incidents: &Sender<StreamIncident>,
    shared: &WorkerShared,
) {
    loop {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_worker(skynet, scfg, events, incidents, shared)
        }));
        match outcome {
            Ok(()) => break,
            Err(payload) => {
                let caught = shared.monitor.count_restart();
                if caught > scfg.max_restarts {
                    shared.monitor.give_up(panic_cause(&payload, caught));
                    break;
                }
                // The next incarnation's guard restarts trace ids at 1;
                // clearing the ring keeps "explain" unambiguous.
                if let Some(ring) = shared.obs.recorder() {
                    ring.clear();
                }
            }
        }
    }
    shared.monitor.mark_dead();
    // Dropping `events`/`incidents` here unblocks producers (sends fail
    // with `ChannelClosed`) and ends the consumer's iterator.
}

/// Maps a caught panic payload to the terminal degradation cause: an
/// injected-fault panic names its injection site; any other payload is an
/// ordinary worker panic.
fn panic_cause(payload: &(dyn std::any::Any + Send), restarts: u32) -> SkyNetError {
    match payload.downcast_ref::<FaultPanic>() {
        Some(fault) => SkyNetError::FaultInjected { site: fault.0 },
        None => SkyNetError::WorkerPanicked { restarts },
    }
}

/// One worker incarnation: fresh guard/preprocessor/locator state, counters
/// based on whatever earlier incarnations already published.
fn run_worker(
    skynet: &SkyNet,
    scfg: &StreamingConfig,
    events: &Receiver<StreamEvent>,
    incidents: &Sender<StreamIncident>,
    shared: &WorkerShared,
) {
    // Lane 0: the unsharded worker runs every stage on one lane. Arm
    // state lives in the shared plane, so a restarted incarnation resumes
    // the decision streams where the previous one left off.
    let arm = |site: InjectionSite| shared.plane.as_ref().and_then(|p| p.arm(site, 0));
    let mut preprocessor =
        Preprocessor::new(skynet.cfg.preprocessor.clone(), skynet.classifier.clone())
            .with_observability(&shared.obs)
            .with_faults(
                arm(InjectionSite::PreprocessClassify),
                arm(InjectionSite::PreprocessConsolidate),
            );
    let mut locator =
        Locator::new(&skynet.topo, skynet.cfg.locator.clone()).with_observability(&shared.obs);
    let evaluator = Evaluator::new(&skynet.topo, skynet.cfg.evaluator.clone()).with_faults(
        arm(InjectionSite::MatrixBuild),
        arm(InjectionSite::Evaluate),
    );
    let mut memo = MatrixMemo::new().with_observability(&shared.obs);
    let sop = SopEngine::standard(&skynet.topo);
    let locate_fault = arm(InjectionSite::LocateWorker);
    let sop_fault = arm(InjectionSite::SopSelect);
    let mut guard =
        IngestGuard::with_dead_letters(&skynet.topo, scfg.guard.clone(), Arc::clone(&shared.dead))
            .with_observability(&shared.obs)
            .with_faults(
                arm(InjectionSite::GuardOffer),
                arm(InjectionSite::GuardValidate),
            );
    let mut ping = PingLog::new();
    let mut released: Vec<RawAlert> = Vec::new();
    let mut structured: Vec<StructuredAlert> = Vec::new();
    let base = *shared.counters.lock();
    let tracer = shared.obs.tracer();
    let completed = shared.obs.registry().counter(
        "skynet_incidents_completed_total",
        "incidents whose trees finalized",
    );
    let mut since_publish: u64 = 0;

    for event in events.iter() {
        match event {
            StreamEvent::Alert(raw) => {
                released.clear();
                let _ = guard.offer(raw, &mut released);
                feed(
                    &released,
                    &mut structured,
                    &mut preprocessor,
                    &mut locator,
                    &tracer,
                    &locate_fault,
                    &shared.dead,
                );
                since_publish += 1;
                if since_publish >= scfg.stats_interval {
                    publish(shared, base, &preprocessor, &guard);
                    since_publish = 0;
                }
            }
            StreamEvent::Ping(sample) => {
                ping.record(sample.t, sample.src, sample.dst, sample.loss);
            }
            StreamEvent::Tick(now) => {
                released.clear();
                guard.advance(now, &mut released);
                feed(
                    &released,
                    &mut structured,
                    &mut preprocessor,
                    &mut locator,
                    &tracer,
                    &locate_fault,
                    &shared.dead,
                );
                locator.advance(now);
                publish(shared, base, &preprocessor, &guard);
                since_publish = 0;
            }
            StreamEvent::Flush => break,
            StreamEvent::ChaosPanic => panic!("chaos: injected pipeline worker panic"),
        }
        if !drain_completed(
            &mut locator,
            &ping,
            &evaluator,
            &mut memo,
            &sop,
            &sop_fault,
            incidents,
            &tracer,
            &completed,
        ) {
            return; // receiver gone
        }
    }
    // Flush (or all producers hung up): release everything and finalize.
    released.clear();
    guard.flush(&mut released);
    feed(
        &released,
        &mut structured,
        &mut preprocessor,
        &mut locator,
        &tracer,
        &locate_fault,
        &shared.dead,
    );
    preprocessor.finish();
    locator.finish();
    publish(shared, base, &preprocessor, &guard);
    let _ = drain_completed(
        &mut locator,
        &ping,
        &evaluator,
        &mut memo,
        &sop,
        &sop_fault,
        incidents,
        &tracer,
        &completed,
    );
}

/// Internal event stream from the sharded ingest worker to shard workers.
#[derive(Debug, Clone)]
enum ShardEvent {
    /// A structured alert routed to this shard's region(s).
    Alert(StructuredAlert),
    /// A lossy ping sample (broadcast: every shard keeps the full log so
    /// its reachability matrices equal the single worker's).
    Ping(PingSample),
    /// Clock advance (broadcast).
    Tick(SimTime),
    /// Chaos hook (broadcast): panics the shard worker, exercising
    /// per-shard restart.
    ChaosPanic,
}

/// The sharded streaming runtime (`shards > 1`): one supervised ingest
/// worker owns the guard and preprocessor — the watermark is global and
/// peered alerts split into both endpoint regions, so ingestion cannot be
/// sharded without changing admission — and fans structured alerts out to
/// `shards` region-affine workers, each owning its own locator, evaluator,
/// SOP engine and ping log. Every worker restarts independently from its
/// own `max_restarts` budget; `Monitor::restarts` totals panics across all
/// of them. Incident ids are per-shard in streaming mode (the batch path's
/// canonical renumbering needs the full completed set; a live stream never
/// has it).
fn run_sharded(
    skynet: &SkyNet,
    scfg: &StreamingConfig,
    events: &Receiver<StreamEvent>,
    incidents: Sender<StreamIncident>,
    shared: &WorkerShared,
) {
    let router = ShardRouter::new(skynet.topo.interner(), scfg.shards);
    let mut shard_txs = Vec::with_capacity(scfg.shards);
    let mut handles = Vec::with_capacity(scfg.shards);
    for s in 0..scfg.shards {
        let (tx, rx) = bounded::<ShardEvent>(scfg.event_capacity.max(1));
        shard_txs.push(tx);
        let topo = Arc::clone(&skynet.topo);
        let locator_cfg = skynet.cfg.locator.clone();
        let evaluator_cfg = skynet.cfg.evaluator.clone();
        let incident_tx = incidents.clone();
        let monitor = Arc::clone(&shared.monitor);
        let obs = shared.obs.clone();
        let dead = Arc::clone(&shared.dead);
        let plane = shared.plane.clone();
        let max_restarts = scfg.max_restarts;
        let handle = std::thread::Builder::new()
            .name(format!("skynet-shard-{s}"))
            .spawn(move || {
                supervise_shard(
                    &topo,
                    &locator_cfg,
                    &evaluator_cfg,
                    &rx,
                    &incident_tx,
                    &monitor,
                    &obs,
                    &dead,
                    &plane,
                    s as u32,
                    max_restarts,
                );
            })
            .expect("spawning a shard worker thread");
        handles.push(handle);
    }
    // The shard workers hold the only incident senders now, so the
    // consumer's iterator ends exactly when the last shard finishes.
    drop(incidents);

    let mut attempts = 0u32;
    loop {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_sharded_ingest(skynet, scfg, events, &router, &shard_txs, shared);
        }));
        match outcome {
            Ok(()) => break,
            Err(payload) => {
                attempts += 1;
                shared.monitor.count_restart();
                if attempts > scfg.max_restarts {
                    shared.monitor.give_up(panic_cause(&payload, attempts));
                    break;
                }
                // A fresh ingest incarnation restarts trace ids at 1.
                if let Some(ring) = shared.obs.recorder() {
                    ring.clear();
                }
            }
        }
    }
    // Closing the shard channels is the flush signal: each worker
    // finalizes its open incidents and exits.
    drop(shard_txs);
    for handle in handles {
        let _ = handle.join();
    }
    shared.monitor.mark_dead();
}

/// One incarnation of the sharded ingest worker: fresh guard/preprocessor
/// state, counters based on what earlier incarnations published.
fn run_sharded_ingest(
    skynet: &SkyNet,
    scfg: &StreamingConfig,
    events: &Receiver<StreamEvent>,
    router: &ShardRouter,
    shard_txs: &[Sender<ShardEvent>],
    shared: &WorkerShared,
) {
    // The ingest worker owns the ingestion-side sites on lane 0; shard
    // workers own the locate/evaluate sites on their own lanes.
    let arm = |site: InjectionSite| shared.plane.as_ref().and_then(|p| p.arm(site, 0));
    let mut preprocessor =
        Preprocessor::new(skynet.cfg.preprocessor.clone(), skynet.classifier.clone())
            .with_observability(&shared.obs)
            .with_faults(
                arm(InjectionSite::PreprocessClassify),
                arm(InjectionSite::PreprocessConsolidate),
            );
    let mut guard =
        IngestGuard::with_dead_letters(&skynet.topo, scfg.guard.clone(), Arc::clone(&shared.dead))
            .with_observability(&shared.obs)
            .with_faults(
                arm(InjectionSite::GuardOffer),
                arm(InjectionSite::GuardValidate),
            );
    let route_fault = arm(InjectionSite::ShardRoute);
    let mut released: Vec<RawAlert> = Vec::new();
    let mut structured: Vec<StructuredAlert> = Vec::new();
    let base = *shared.counters.lock();
    let tracer = shared.obs.tracer();
    let mut since_publish: u64 = 0;

    for event in events.iter() {
        match event {
            StreamEvent::Alert(raw) => {
                let _ = guard.offer(raw, &mut released);
                route_released(
                    &mut released,
                    &mut structured,
                    &mut preprocessor,
                    router,
                    &route_fault,
                    shard_txs,
                    &tracer,
                );
                since_publish += 1;
                if since_publish >= scfg.stats_interval {
                    publish(shared, base, &preprocessor, &guard);
                    since_publish = 0;
                }
            }
            StreamEvent::Ping(sample) => broadcast(shard_txs, ShardEvent::Ping(sample)),
            StreamEvent::Tick(now) => {
                guard.advance(now, &mut released);
                route_released(
                    &mut released,
                    &mut structured,
                    &mut preprocessor,
                    router,
                    &route_fault,
                    shard_txs,
                    &tracer,
                );
                broadcast(shard_txs, ShardEvent::Tick(now));
                publish(shared, base, &preprocessor, &guard);
                since_publish = 0;
            }
            StreamEvent::Flush => break,
            StreamEvent::ChaosPanic => broadcast(shard_txs, ShardEvent::ChaosPanic),
        }
    }
    // Flush (or all producers hung up): release everything still buffered.
    guard.flush(&mut released);
    route_released(
        &mut released,
        &mut structured,
        &mut preprocessor,
        router,
        &route_fault,
        shard_txs,
        &tracer,
    );
    preprocessor.finish();
    publish(shared, base, &preprocessor, &guard);
}

/// Sends one event to every shard. A send fails only when that shard's
/// supervisor gave up; the remaining shards keep receiving.
fn broadcast(shard_txs: &[Sender<ShardEvent>], event: ShardEvent) {
    for tx in shard_txs {
        let _ = tx.send(event.clone());
    }
}

/// Preprocesses guard-released raw alerts and routes each structured alert
/// to its region's shard.
#[allow(clippy::too_many_arguments)]
fn route_released(
    released: &mut Vec<RawAlert>,
    structured: &mut Vec<StructuredAlert>,
    preprocessor: &mut Preprocessor,
    router: &ShardRouter,
    route_fault: &Option<FaultArm>,
    shard_txs: &[Sender<ShardEvent>],
    tracer: &StageTracer,
) {
    for raw in released.drain(..) {
        structured.clear();
        preprocessor.push(&raw, structured);
        for alert in structured.drain(..) {
            let shard = if faultinject::trip(route_fault, alert.trace, alert.last_seen) {
                // Misroute to the fallback shard: the alert still lands in
                // *a* locator, modeling a routing-table fault.
                FALLBACK_SHARD
            } else {
                router.route(&alert.location)
            };
            tracer.record(
                alert.trace,
                alert.last_seen,
                Stage::ShardRouted(shard as u16),
            );
            let _ = shard_txs[shard].send(ShardEvent::Alert(alert));
        }
    }
}

/// Restarts one shard worker after panics, up to its own budget.
#[allow(clippy::too_many_arguments)]
fn supervise_shard(
    topo: &Arc<Topology>,
    locator_cfg: &LocatorConfig,
    evaluator_cfg: &EvaluatorConfig,
    events: &Receiver<ShardEvent>,
    incidents: &Sender<StreamIncident>,
    monitor: &Monitor,
    obs: &Observability,
    dead: &Arc<Mutex<DeadLetterQueue>>,
    plane: &Option<Arc<FaultPlane>>,
    lane: u32,
    max_restarts: u32,
) {
    let mut attempts = 0u32;
    loop {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_shard_worker(
                topo,
                locator_cfg,
                evaluator_cfg,
                events,
                incidents,
                obs,
                dead,
                plane,
                lane,
            );
        }));
        match outcome {
            Ok(()) => break,
            Err(payload) => {
                attempts += 1;
                monitor.count_restart();
                // Attribute the restart to the alert whose injected fault
                // triggered it (no-op for organic panics: the arm never
                // fired, so the trace id is NONE).
                if let Some(arm) = plane
                    .as_ref()
                    .and_then(|p| p.arm(InjectionSite::LocateWorker, lane))
                {
                    obs.tracer().record(
                        arm.last_fired_trace(),
                        arm.last_fired_at(),
                        Stage::WorkerRestarted(lane as u16),
                    );
                }
                if attempts > max_restarts {
                    monitor.give_up(panic_cause(&payload, attempts));
                    break;
                }
            }
        }
    }
}

/// One incarnation of a shard worker: locate, evaluate and emit incidents
/// for this shard's regions. State is shard-local and rebuilt fresh on
/// restart.
#[allow(clippy::too_many_arguments)]
fn run_shard_worker(
    topo: &Arc<Topology>,
    locator_cfg: &LocatorConfig,
    evaluator_cfg: &EvaluatorConfig,
    events: &Receiver<ShardEvent>,
    incidents: &Sender<StreamIncident>,
    obs: &Observability,
    dead: &Arc<Mutex<DeadLetterQueue>>,
    plane: &Option<Arc<FaultPlane>>,
    lane: u32,
) {
    let arm = |site: InjectionSite| plane.as_ref().and_then(|p| p.arm(site, lane));
    let mut locator = Locator::new(topo, locator_cfg.clone()).with_observability(obs);
    let evaluator = Evaluator::new(topo, evaluator_cfg.clone()).with_faults(
        arm(InjectionSite::MatrixBuild),
        arm(InjectionSite::Evaluate),
    );
    let mut memo = MatrixMemo::new().with_observability(obs);
    let sop = SopEngine::standard(topo);
    let locate_fault = arm(InjectionSite::LocateWorker);
    let sop_fault = arm(InjectionSite::SopSelect);
    let mut ping = PingLog::new();
    let tracer = obs.tracer();
    let completed = obs.registry().counter(
        "skynet_incidents_completed_total",
        "incidents whose trees finalized",
    );
    for event in events.iter() {
        match event {
            ShardEvent::Alert(alert) => {
                if locate_fault_skips(&locate_fault, &alert, dead) {
                    continue;
                }
                tracer.record(alert.trace, alert.last_seen, Stage::LocateInserted);
                locator.insert(&alert);
            }
            ShardEvent::Ping(sample) => {
                ping.record(sample.t, sample.src, sample.dst, sample.loss);
            }
            ShardEvent::Tick(now) => locator.advance(now),
            ShardEvent::ChaosPanic => panic!("chaos: injected shard worker panic"),
        }
        if !drain_completed(
            &mut locator,
            &ping,
            &evaluator,
            &mut memo,
            &sop,
            &sop_fault,
            incidents,
            &tracer,
            &completed,
        ) {
            return; // receiver gone
        }
    }
    // Channel closed (flush, or the ingest worker gave up): finalize.
    locator.finish();
    let _ = drain_completed(
        &mut locator,
        &ping,
        &evaluator,
        &mut memo,
        &sop,
        &sop_fault,
        incidents,
        &tracer,
        &completed,
    );
}

/// Runs released raw alerts through preprocessing into the locator.
#[allow(clippy::too_many_arguments)]
fn feed(
    released: &[RawAlert],
    structured: &mut Vec<StructuredAlert>,
    preprocessor: &mut Preprocessor,
    locator: &mut Locator,
    tracer: &StageTracer,
    locate_fault: &Option<FaultArm>,
    dead: &Arc<Mutex<DeadLetterQueue>>,
) {
    for raw in released {
        structured.clear();
        preprocessor.push(raw, structured);
        for s in structured.iter() {
            if locate_fault_skips(locate_fault, s, dead) {
                continue;
            }
            tracer.record(s.trace, s.last_seen, Stage::LocateInserted);
            locator.insert(s);
        }
    }
}

/// Checks the locate-worker injection arm for one structured alert.
/// Returns `true` when the alert must be skipped (it has been
/// dead-lettered). A `Panic` action also dead-letters first: streaming
/// events are consumed from the channel, so a restarted incarnation can
/// never replay them — quarantining before unwinding is what keeps
/// `Failure`-class evidence from vanishing.
fn locate_fault_skips(
    locate_fault: &Option<FaultArm>,
    alert: &StructuredAlert,
    dead: &Arc<Mutex<DeadLetterQueue>>,
) -> bool {
    let Some(arm) = locate_fault else {
        return false;
    };
    match arm.check(alert.trace, alert.last_seen) {
        Some(FaultAction::Error) => {
            push_fault_letter(dead, alert);
            true
        }
        Some(FaultAction::Panic) => {
            push_fault_letter(dead, alert);
            arm.panic_now()
        }
        Some(FaultAction::Latency(ms)) => {
            faultinject::sleep_ms(ms);
            false
        }
        None => false,
    }
}

/// Publishes counter snapshots: earlier incarnations' base plus this
/// incarnation's counters, with shed counts taken live from the producer
/// side. Both families are written under one lock acquisition so readers
/// always see a pair from the same pass.
fn publish(
    shared: &WorkerShared,
    base: SharedCounters,
    preprocessor: &Preprocessor,
    guard: &IngestGuard,
) {
    let mut next = base;
    next.preprocess.merge(&preprocessor.stats());
    next.preprocess.shed_abnormal = shared.monitor.shed_abnormal.load(Ordering::Relaxed);
    next.preprocess.shed_root_cause = shared.monitor.shed_root_cause.load(Ordering::Relaxed);
    next.ingest.merge(&guard.stats());
    *shared.counters.lock() = next;
}

/// Evaluates and emits every newly-completed incident, with its SOP plan
/// attached. Returns `false` when the consumer dropped the receiver.
#[allow(clippy::too_many_arguments)]
fn drain_completed(
    locator: &mut Locator,
    ping: &PingLog,
    evaluator: &Evaluator,
    memo: &mut MatrixMemo,
    sop: &SopEngine,
    sop_fault: &Option<FaultArm>,
    incidents: &Sender<StreamIncident>,
    tracer: &StageTracer,
    completed: &Counter,
) -> bool {
    for incident in locator.take_completed() {
        completed.inc();
        if tracer.is_enabled() {
            for alert in &incident.alerts {
                tracer.record(
                    alert.trace,
                    incident.last_seen,
                    Stage::IncidentCompleted(incident.id),
                );
            }
        }
        let sop_trace = incident.alerts.first().map_or(TraceId::NONE, |a| a.trace);
        let plan = if faultinject::trip(sop_fault, sop_trace, incident.last_seen) {
            // SOP selection failed: the incident still ships, without its
            // automatic remediation plan.
            None
        } else {
            sop.match_incident(&incident)
        };
        let scored = evaluator.evaluate_memoized(incident, ping, memo);
        if tracer.is_enabled() {
            for alert in &scored.incident.alerts {
                tracer.record(
                    alert.trace,
                    scored.incident.last_seen,
                    Stage::Scored(scored.incident.id),
                );
            }
        }
        if incidents
            .send(StreamIncident { scored, sop: plan })
            .is_err()
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{DataSource, LocationPath};
    use skynet_topology::{generate, DeviceRole, GeneratorConfig, TopologyBuilder};

    fn topo() -> Arc<Topology> {
        Arc::new(generate(&GeneratorConfig::small()))
    }

    fn flood(site: &LocationPath) -> Vec<RawAlert> {
        let mut alerts = Vec::new();
        // Persistent ping loss (two types), link down, congestion.
        for t in 0..30u64 {
            alerts.push(
                RawAlert::known(
                    DataSource::Ping,
                    SimTime::from_secs(t * 2),
                    site.clone(),
                    AlertKind::PacketLossIcmp,
                )
                .with_magnitude(0.3),
            );
        }
        for t in 0..10u64 {
            alerts.push(
                RawAlert::known(
                    DataSource::Ping,
                    SimTime::from_secs(5 + t * 2),
                    site.clone(),
                    AlertKind::PacketLossTcp,
                )
                .with_magnitude(0.2),
            );
        }
        alerts.push(RawAlert::known(
            DataSource::Snmp,
            SimTime::from_secs(11),
            site.clone(),
            AlertKind::LinkDown,
        ));
        alerts.sort_by_key(|a| a.timestamp);
        alerts
    }

    #[test]
    fn batch_analysis_produces_a_ranked_actionable_report() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        assert_eq!(report.incidents.len(), 1);
        let top = &report.incidents[0];
        assert_eq!(top.incident.root, site);
        assert!(top.score() > 0.0);
        assert!(report.preprocess.raw > report.preprocess.emitted);
        assert_eq!(report.ingest.accepted, report.preprocess.raw);
        assert_eq!(report.ingest.rejected(), 0);
        let text = report.render();
        assert!(text.contains("score"));
        assert!(text.contains("Failure alerts"));
    }

    #[test]
    fn batch_analysis_quarantines_malformed_alerts() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let mut alerts = flood(&site);
        alerts.push(
            RawAlert::known(
                DataSource::Ping,
                SimTime::from_secs(20),
                LocationPath::parse("Narnia|Wardrobe").unwrap(),
                AlertKind::PacketLossIcmp,
            )
            .with_magnitude(0.4),
        );
        alerts.push(
            RawAlert::known(
                DataSource::Snmp,
                SimTime::from_secs(21),
                site.clone(),
                AlertKind::TrafficCongestion,
            )
            .with_magnitude(f64::INFINITY),
        );
        alerts.sort_by_key(|a| a.timestamp);
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&alerts, &PingLog::new(), SimTime::from_mins(30));
        assert_eq!(report.ingest.rejected_off_topology, 1);
        assert_eq!(report.ingest.rejected_corrupt, 1);
        // The garbage never reached the preprocessor.
        assert_eq!(report.ingest.accepted, report.preprocess.raw);
        // The clean flood still resolves to its incident.
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].incident.root, site);
    }

    #[test]
    fn streaming_matches_batch_incidents() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let alerts = flood(&site);
        let skynet_batch = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let batch = skynet_batch.analyze(&alerts, &PingLog::new(), SimTime::from_mins(30));

        let skynet_stream = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet_stream.stream();
        for a in &alerts {
            handle.events.send(StreamEvent::Alert(a.clone())).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();

        assert_eq!(streamed.len(), batch.incidents.len());
        assert_eq!(
            streamed[0].scored.incident.root,
            batch.incidents[0].incident.root
        );
        assert_eq!(
            streamed[0].scored.incident.alerts.len(),
            batch.incidents[0].incident.alerts.len()
        );
        // SOP parity: what the batch report records, streaming attaches.
        assert_eq!(
            streamed[0].sop.as_ref(),
            batch.sop_for(batch.incidents[0].incident.id)
        );
        // Counter parity across the two execution modes.
        assert!(handle.preprocess_stats().raw > 0);
        assert_eq!(handle.preprocess_stats(), batch.preprocess);
        assert_eq!(handle.ingest_stats(), batch.ingest);
        assert!(handle.dead_letters.lock().is_empty());
    }

    #[test]
    fn llm_context_is_ranked_and_budgeted() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        let full = report.llm_context(100_000);
        assert!(full.contains("incident at"));
        assert!(full.contains("Failure alerts"));
        // A tight budget truncates at whole-incident granularity.
        let tight = report.llm_context(10);
        assert!(tight.is_empty(), "too small for any whole incident");
        let medium = report.llm_context(full.len());
        assert_eq!(medium, full);
        assert!(report.llm_context(2_000).len() <= 2_000);
    }

    #[test]
    fn llm_context_budget_counts_chars_not_bytes() {
        // A hand-built two-device topology with multi-byte location names.
        let mut b = TopologyBuilder::new();
        let path = |d: &str| {
            LocationPath::parse(&format!("Région-Ω|Müncheñ|Lógica-1|Sítio-ß|Grün-K|{d}")).unwrap()
        };
        let d1 = b.add_device(DeviceRole::Leaf, path("Gerät-1"));
        let d2 = b.add_device(DeviceRole::Leaf, path("Gerät-2"));
        b.add_link(d1, d2, 4, 100.0);
        let t = Arc::new(b.build());
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        assert_eq!(report.incidents.len(), 1);
        let full = report.llm_context(usize::MAX);
        assert!(
            full.len() > full.chars().count(),
            "context must contain multi-byte characters"
        );
        // A budget of exactly the char count keeps the whole incident; a
        // byte-based check would wrongly truncate here.
        assert_eq!(report.llm_context(full.chars().count()), full);
        // One char less and the (single, unsplittable) incident is dropped.
        assert!(report.llm_context(full.chars().count() - 1).is_empty());
    }

    #[test]
    fn quiet_stream_produces_nothing() {
        let t = topo();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&[], &PingLog::new(), SimTime::from_mins(30));
        assert!(report.incidents.is_empty());
        assert_eq!(report.actionable().count(), 0);
        assert_eq!(report.ingest.accepted, 0);
    }

    #[test]
    fn tick_drives_incident_finalization_through_quiet_periods() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet.stream();
        for a in flood(&site) {
            handle.events.send(StreamEvent::Alert(a)).unwrap();
        }
        // Nothing finalized yet (incident still within its idle window).
        assert!(handle.incidents.try_recv().is_err());
        // A tick 20 minutes later times the incident out without new alerts.
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(21)))
            .unwrap();
        let emitted = handle
            .incidents
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("incident finalizes on tick");
        assert_eq!(emitted.scored.incident.root, site);
        handle.events.send(StreamEvent::Flush).unwrap();
        handle.worker.join().unwrap();
    }

    #[test]
    fn supervisor_restarts_worker_after_poison_event() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet.stream();
        assert!(handle.is_alive());
        // Poison first, then the flood: the restarted worker must analyze
        // it with fresh state as if nothing happened.
        handle.events.send(StreamEvent::ChaosPanic).unwrap();
        for a in flood(&site) {
            handle.events.send(StreamEvent::Alert(a)).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].scored.incident.root, site);
        let health = handle.health();
        assert_eq!(health.restarts, 1);
        assert!(!health.gave_up);
        assert!(!health.alive, "worker exited after flush");
        assert_eq!(handle.snapshot().restarts, 1);
    }

    #[test]
    fn supervisor_gives_up_after_restart_cap() {
        let t = topo();
        let mut cfg = PipelineConfig::production();
        cfg.streaming.max_restarts = 1;
        let skynet = SkyNet::builder(&t).config(cfg).build();
        let handle = skynet.stream();
        handle.events.send(StreamEvent::ChaosPanic).unwrap();
        handle.events.send(StreamEvent::ChaosPanic).unwrap();
        handle.worker.join().unwrap();
        let health = handle.health();
        assert!(health.gave_up);
        assert!(!health.alive);
        assert_eq!(health.restarts, 2);
        // The stream is dead: further submissions fail cleanly.
        let site = t.clusters()[0].parent();
        let alert = RawAlert::known(
            DataSource::Snmp,
            SimTime::from_secs(1),
            site,
            AlertKind::LinkDown,
        );
        assert_eq!(handle.send_alert(alert), Err(SkyNetError::ChannelClosed));
    }

    /// A flood hitting one site in each of `small()`'s two regions — the
    /// smallest input that actually exercises cross-shard routing.
    fn two_region_flood(t: &Arc<Topology>) -> Vec<RawAlert> {
        let site = |region: &str| {
            t.clusters()
                .iter()
                .find(|c| c.segments()[0].as_ref() == region)
                .unwrap()
                .parent()
        };
        let mut alerts = flood(&site("Region-0"));
        alerts.extend(flood(&site("Region-1")));
        alerts.sort_by_key(|a| a.timestamp);
        alerts
    }

    #[test]
    fn sharded_batch_report_is_byte_identical() {
        let t = topo();
        let alerts = two_region_flood(&t);
        let mut ping = PingLog::new();
        ping.record(
            SimTime::from_secs(10),
            t.clusters()[0].clone(),
            t.clusters()[1].clone(),
            0.2,
        );
        let run = |shards: usize| {
            let mut cfg = PipelineConfig::production();
            cfg.streaming.shards = shards;
            SkyNet::builder(&t)
                .config(cfg)
                .build()
                .analyze(&alerts, &ping, SimTime::from_mins(30))
        };
        let baseline = run(1);
        assert_eq!(baseline.incidents.len(), 2, "one incident per region");
        // More shards than regions leaves some workers idle, never wrong.
        for shards in [2, 4, 7] {
            assert_eq!(run(shards), baseline, "shards = {shards}");
        }
    }

    /// The symbol-interned classify hot path must not change analysis
    /// output: a syslog-heavy flood analyzed with the production
    /// classifier and with the String-oracle classifier produces
    /// byte-identical report JSON at 1 and 4 shards.
    #[test]
    fn classifier_fast_path_report_is_byte_identical_to_oracle() {
        use rand::SeedableRng;
        use skynet_telemetry::tools::syslog::{labeled_corpus, render_message, syslog_kinds};

        let t = topo();
        let corpus = labeled_corpus(40, 77);
        let mut alerts = two_region_flood(&t);
        // Sprinkle raw syslog over a flooded site so classification sits on
        // the analyzed path.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        let kinds = syslog_kinds();
        let site = t.clusters()[0].parent();
        for i in 0..200u64 {
            let kind = kinds[(i as usize) % kinds.len()];
            alerts.push(RawAlert::syslog(
                SimTime::from_secs(i % 60),
                site.clone(),
                render_message(kind, &mut rng),
            ));
        }
        alerts.sort_by_key(|a| a.timestamp);
        let ping = PingLog::new();
        let run = |shards: usize, oracle: bool| {
            let classifier = SyslogClassifier::train(&corpus, 3, 8);
            let classifier = if oracle {
                classifier.with_string_oracle()
            } else {
                classifier
            };
            let mut cfg = PipelineConfig::production();
            cfg.streaming.shards = shards;
            let report = SkyNet::builder(&t)
                .config(cfg)
                .classifier(Arc::new(classifier))
                .build()
                .analyze(&alerts, &ping, SimTime::from_mins(30));
            serde_json::to_string(&report).expect("report serializes")
        };
        for shards in [1usize, 4] {
            assert_eq!(run(shards, false), run(shards, true), "shards = {shards}");
        }
    }

    #[test]
    fn sharded_streaming_produces_batch_incidents() {
        let t = topo();
        let alerts = two_region_flood(&t);
        let batch = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build()
            .analyze(&alerts, &PingLog::new(), SimTime::from_mins(30));

        let mut cfg = PipelineConfig::production();
        cfg.streaming.shards = 4;
        let handle = SkyNet::builder(&t).config(cfg).stream();
        for a in &alerts {
            handle.events.send(StreamEvent::Alert(a.clone())).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();

        // Shards emit in completion order, not ranked order; compare as
        // sets keyed by what the locator decided.
        let mut streamed_keys: Vec<_> = streamed
            .iter()
            .map(|s| {
                (
                    s.scored.incident.root.clone(),
                    s.scored.incident.alerts.len(),
                )
            })
            .collect();
        let mut batch_keys: Vec<_> = batch
            .incidents
            .iter()
            .map(|s| (s.incident.root.clone(), s.incident.alerts.len()))
            .collect();
        streamed_keys.sort();
        batch_keys.sort();
        assert_eq!(streamed_keys, batch_keys);
        // Ingestion stays sequential in front of the fan-out, so counter
        // parity with the batch run survives sharding.
        assert_eq!(handle.preprocess_stats(), batch.preprocess);
        assert_eq!(handle.ingest_stats(), batch.ingest);
    }

    #[test]
    fn shard_workers_restart_independently() {
        let t = topo();
        let alerts = two_region_flood(&t);
        let mut cfg = PipelineConfig::production();
        cfg.streaming.shards = 2;
        let handle = SkyNet::builder(&t).config(cfg).stream();
        // One chaos event is broadcast to every shard; each catches its own
        // panic and restarts with fresh shard-local state while the ingest
        // worker keeps running.
        handle.events.send(StreamEvent::ChaosPanic).unwrap();
        for a in &alerts {
            handle.events.send(StreamEvent::Alert(a.clone())).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();

        assert_eq!(streamed.len(), 2, "both regions still produce incidents");
        let health = handle.health();
        assert_eq!(health.restarts, 2, "one restart per shard, none for ingest");
        assert!(!health.gave_up);
        assert!(!health.alive, "runtime exited after flush");
    }

    #[test]
    fn shedding_policy_never_touches_failure_evidence() {
        // Failure-class evidence survives even a full queue.
        assert!(!should_shed(AlertClass::Failure, 4096, 4096, 0.75));
        // Abnormal alerts go first, at the high-water mark.
        assert!(should_shed(AlertClass::Abnormal, 3072, 4096, 0.75));
        assert!(!should_shed(AlertClass::Abnormal, 3071, 4096, 0.75));
        // Root-cause evidence sheds only when completely full.
        assert!(!should_shed(AlertClass::RootCause, 4095, 4096, 0.75));
        assert!(should_shed(AlertClass::RootCause, 4096, 4096, 0.75));
    }

    #[test]
    fn send_alert_queues_and_classifies() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet.stream();
        // A near-empty channel never sheds anything.
        for a in flood(&site) {
            handle.send_alert(a).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();
        assert_eq!(streamed.len(), 1);
        let snap = handle.snapshot();
        assert_eq!(snap.preprocess.shed(), 0);
        assert_eq!(snap.ingest.accepted, 41);
    }

    #[test]
    fn batch_analysis_feeds_the_metrics_registry() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let report = skynet.analyze(&flood(&site), &PingLog::new(), SimTime::from_mins(30));
        let snap = skynet.observability().snapshot();
        assert_eq!(
            snap.counter("skynet_ingest_accepted_total", None),
            report.ingest.accepted
        );
        assert_eq!(
            snap.counter("skynet_preprocess_raw_total", None),
            report.preprocess.raw
        );
        assert_eq!(
            snap.counter("skynet_incidents_completed_total", None),
            report.incidents.len() as u64
        );
        let prom = skynet.prometheus();
        assert!(prom.contains("skynet_stage_seconds_bucket"));
        assert!(skynet.json().contains("skynet_ingest_accepted_total"));
        // Explain reconstructs the winning incident's constituent traces.
        let top = &report.incidents[0];
        let events = skynet.explain_incident(&top.incident);
        assert!(events
            .iter()
            .any(|e| matches!(e.stage, Stage::GuardAdmitted)));
        assert!(events
            .iter()
            .any(|e| matches!(e.stage, Stage::Scored(id) if id == top.incident.id)));
    }

    #[test]
    fn streaming_observability_exports_and_explains() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet.stream();
        for a in flood(&site) {
            handle.send_alert(a).unwrap();
        }
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(30)))
            .unwrap();
        handle.events.send(StreamEvent::Flush).unwrap();
        let streamed: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();
        assert_eq!(streamed.len(), 1);
        let prom = handle.prometheus();
        assert!(prom.contains("skynet_ingest_accepted_total 41"));
        assert!(prom.contains("skynet_incidents_completed_total 1"));
        assert!(handle.json().contains("skynet_preprocess_emitted_total"));
        assert!(handle.table().contains("skynet_ingest_accepted_total"));
        // Every constituent alert's trace runs guard → locate → score.
        for alert in &streamed[0].scored.incident.alerts {
            let events = handle.explain(alert.trace);
            assert!(events
                .iter()
                .any(|e| matches!(e.stage, Stage::GuardAdmitted)));
            assert!(events
                .iter()
                .any(|e| matches!(e.stage, Stage::LocateInserted)));
            assert!(events.iter().any(|e| matches!(e.stage, Stage::Scored(_))));
        }
    }

    #[test]
    fn restart_counters_never_regress() {
        let t = topo();
        let site = t.clusters()[0].parent();
        let skynet = SkyNet::builder(&t)
            .config(PipelineConfig::production())
            .build();
        let handle = skynet.stream();
        for a in flood(&site) {
            handle.events.send(StreamEvent::Alert(a)).unwrap();
        }
        // The tick publishes a counter snapshot before the poison arrives.
        handle
            .events
            .send(StreamEvent::Tick(SimTime::from_mins(21)))
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while handle.snapshot().ingest.accepted < 41 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let before = handle.snapshot();
        assert_eq!(before.ingest.accepted, 41);
        handle.events.send(StreamEvent::ChaosPanic).unwrap();
        // The restarted incarnation keeps accumulating on top of what was
        // already published — never backwards.
        for a in flood(&site) {
            handle.events.send(StreamEvent::Alert(a)).unwrap();
        }
        handle.events.send(StreamEvent::Flush).unwrap();
        let _: Vec<StreamIncident> = handle.incidents.iter().collect();
        handle.worker.join().unwrap();
        let after = handle.snapshot();
        assert_eq!(after.restarts, 1);
        assert!(after.ingest.accepted >= before.ingest.accepted);
        assert!(after.preprocess.raw >= before.preprocess.raw);
        assert_eq!(after.ingest.accepted, 82);
        assert_eq!(
            handle
                .observability()
                .snapshot()
                .counter("skynet_worker_restarts_total", None),
            1
        );
    }
}
