//! Location zoom-in (§4.3, Fig. 7).
//!
//! Three behaviour-monitoring signals refine an incident's location:
//!
//! 1. **Reachability matrix** — end-to-end ping samples are aggregated into
//!    a src × dst loss matrix; a label whose row *and* column are both dark
//!    is the focal point (Fig. 7's Cluster ii).
//! 2. **sFlow trace-back** — if every sFlow loss alert in the incident
//!    traces to one node strictly inside the incident tree, zoom there.
//! 3. **INT** — same for in-band telemetry rate-mismatch alerts.
//!
//! When nothing refines the location, "emergency procedures revert to the
//! general location of the incident".

use crate::locator::Incident;
use crate::obs::{Counter, Observability};
use serde::{Deserialize, Serialize};
use skynet_model::PingLog;
use skynet_model::{
    AlertKind, LocId, LocationInterner, LocationLevel, LocationPath, PingSample, SimTime,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A dense src × dst loss matrix at one location granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachabilityMatrix {
    /// Row/column labels (sorted location paths).
    pub labels: Vec<LocationPath>,
    /// `data[src][dst]` = mean observed loss (0 where no loss was seen).
    pub data: Vec<Vec<f64>>,
}

impl ReachabilityMatrix {
    /// The empty matrix: no samples, no focal points. Used as the degraded
    /// stand-in when a matrix-build fault is injected — zoom then falls
    /// through to the sFlow/INT signals.
    pub fn empty() -> Self {
        ReachabilityMatrix {
            labels: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Builds the matrix from lossy ping samples in `[from, to)`,
    /// truncating endpoints to `level`.
    ///
    /// Endpoints are interned into a matrix-local [`LocationInterner`] so
    /// the aggregation loop keys cells by `Copy` id pairs and truncates in
    /// id space; paths are only materialized once per label at the end.
    ///
    /// # Panics
    ///
    /// Panics if a ping sample endpoint is the bare hierarchy root.
    pub fn build(log: &PingLog, from: SimTime, to: SimTime, level: LocationLevel) -> Self {
        let mut interner = LocationInterner::new();
        let mut sums: HashMap<(LocId, LocId), (f64, u32)> = HashMap::new();
        for s in log.window(from, to) {
            let src = interner.intern(&s.src);
            let src = interner.truncate_at(src, level);
            let dst = interner.intern(&s.dst);
            let dst = interner.truncate_at(dst, level);
            let e = sums.entry((src, dst)).or_insert((0.0, 0));
            e.0 += s.loss;
            e.1 += 1;
        }
        // Only ids seen as endpoints become labels (the interner also holds
        // their ancestors); keep the historical string sort order.
        let mut ids: Vec<LocId> = sums.keys().flat_map(|&(src, dst)| [src, dst]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.sort_by_cached_key(|&id| interner.path(id).to_string());
        let index: HashMap<LocId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len();
        let mut data = vec![vec![0.0; n]; n];
        for (&(src, dst), &(sum, count)) in &sums {
            data[index[&src]][index[&dst]] = sum / f64::from(count);
        }
        let labels = ids.iter().map(|&id| interner.path(id).clone()).collect();
        ReachabilityMatrix { labels, data }
    }

    /// Mean of a row excluding the diagonal.
    fn row_mean(&self, i: usize) -> f64 {
        let n = self.labels.len();
        if n <= 1 {
            return 0.0;
        }
        let sum: f64 = (0..n).filter(|&j| j != i).map(|j| self.data[i][j]).sum();
        sum / (n - 1) as f64
    }

    /// Mean of a column excluding the diagonal.
    fn col_mean(&self, j: usize) -> f64 {
        let n = self.labels.len();
        if n <= 1 {
            return 0.0;
        }
        let sum: f64 = (0..n).filter(|&i| i != j).map(|i| self.data[i][j]).sum();
        sum / (n - 1) as f64
    }

    /// Focal points: labels whose row *and* column means both dominate the
    /// overall mean by `factor` (and exceed `min_loss` absolutely). Fig. 7:
    /// the dark row+column pinpoints the incident.
    ///
    /// Loss matrices are sparse (a healthy pair never logs a sample, so
    /// most cells are exactly `0.0`), so the means are accumulated from
    /// packed `u64` presence rows — one bit per nonzero cell — iterating
    /// set bits in ascending order. Since the zero cells contribute exactly
    /// `+0.0` to a left-to-right fold, the sums (and therefore the focal
    /// verdicts) are bit-identical to the dense scan, which survives as
    /// [`ReachabilityMatrix::focal_points_dense`], the differential oracle.
    pub fn focal_points(&self, factor: f64, min_loss: f64) -> Vec<LocationPath> {
        let n = self.labels.len();
        if n <= 1 {
            return Vec::new();
        }
        // Pack the off-diagonal nonzero cells of each row into bit words.
        let words = n.div_ceil(64);
        let mut rows: Vec<u64> = vec![0; n * words];
        for i in 0..n {
            let row = &self.data[i];
            let bits = &mut rows[i * words..(i + 1) * words];
            for (j, &cell) in row.iter().enumerate() {
                if j != i && cell != 0.0 {
                    bits[j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        // One pass over set bits accumulates row sums (ascending j within
        // each row), column sums (ascending i per column) and the overall
        // sum (lexicographic (i, j)) — the dense fold orders exactly.
        let mut row_sums = vec![0.0f64; n];
        let mut col_sums = vec![0.0f64; n];
        let mut total = 0.0f64;
        for i in 0..n {
            let bits = &rows[i * words..(i + 1) * words];
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let j = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let cell = self.data[i][j];
                    row_sums[i] += cell;
                    col_sums[j] += cell;
                    total += cell;
                }
            }
        }
        let overall = total / (n * (n - 1)) as f64;
        let mut out = Vec::new();
        for i in 0..n {
            let r = row_sums[i] / (n - 1) as f64;
            let c = col_sums[i] / (n - 1) as f64;
            if r >= min_loss && c >= min_loss && r >= overall * factor && c >= overall * factor {
                out.push(self.labels[i].clone());
            }
        }
        out
    }

    /// The original dense focal-point scan — kept as the differential
    /// oracle for the bitset path. Not part of the stable API.
    #[doc(hidden)]
    pub fn focal_points_dense(&self, factor: f64, min_loss: f64) -> Vec<LocationPath> {
        let n = self.labels.len();
        if n <= 1 {
            return Vec::new();
        }
        let overall: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| self.data[i][j])
            .sum::<f64>()
            / (n * (n - 1)) as f64;
        let mut out = Vec::new();
        for i in 0..n {
            let r = self.row_mean(i);
            let c = self.col_mean(i);
            if r >= min_loss && c >= min_loss && r >= overall * factor && c >= overall * factor {
                out.push(self.labels[i].clone());
            }
        }
        out
    }

    /// Renders the matrix as an ASCII table (loss percentages), Fig. 7
    /// style.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let names: Vec<String> = self
            .labels
            .iter()
            .map(|l| l.leaf().unwrap_or("<root>").to_string())
            .collect();
        let width = names.iter().map(String::len).max().unwrap_or(4).max(6);
        let _ = write!(s, "{:width$}", "");
        for n in &names {
            let _ = write!(s, " {n:>width$}");
        }
        let _ = writeln!(s);
        for (i, n) in names.iter().enumerate() {
            let _ = write!(s, "{n:width$}");
            for j in 0..names.len() {
                let _ = write!(s, " {:>width$.2}", self.data[i][j] * 100.0);
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// Hit/build counters of a [`MatrixMemo`], exposed so callers can assert
/// the per-incident `PingLog` rescan is actually gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MatrixMemoStats {
    /// Matrices built for a cache miss (delta updates and full scans).
    pub builds: u64,
    /// Lookups served from an already-built matrix.
    pub hits: u64,
    /// Of the builds, how many were incremental slides of an existing
    /// window accumulator rather than full `PingLog` scans.
    #[serde(default)]
    pub delta_updates: u64,
    /// Of the builds, how many were full `PingLog` window scans.
    #[serde(default)]
    pub rebuilds: u64,
}

impl MatrixMemoStats {
    /// Fraction of lookups served without a log scan (1.0 when every
    /// lookup after the first of each window hit).
    pub fn hit_rate(&self) -> f64 {
        let total = self.builds + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cell of a [`SlidingMatrix`]: the window's sample indexes for a
/// truncated (src, dst) pair, plus their cached loss sum.
#[derive(Debug, Default)]
struct SlidingCell {
    /// Log indexes of the cell's in-window samples, ascending.
    idxs: VecDeque<usize>,
    /// Cached sum of the samples' losses (valid when `!dirty`).
    sum: f64,
    /// Set when `idxs` changed since `sum` was folded.
    dirty: bool,
}

/// A per-level reachability-matrix accumulator over a sliding time window.
///
/// The streaming runtime asks for matrices over windows that mostly move
/// forward (incidents complete in time order). Instead of rescanning the
/// whole [`PingLog`] per window, this keeps the current window's samples
/// bucketed per truncated (src, dst) cell; a forward slide pops expired
/// front indexes and appends the new tail — O(samples entering + leaving).
///
/// Snapshots are **bit-identical** to [`ReachabilityMatrix::build`]: dirty
/// cells re-fold their sums over ascending log indexes (build's exact scan
/// order), labels sort by path string (build's exact label order), and the
/// mean divides the same operands. Non-forward windows and logs without the
/// time-ordered watermark fall back to a full scan.
#[derive(Debug)]
struct SlidingMatrix {
    level: LocationLevel,
    /// Persistent endpoint interner (ids are stable across slides; labels
    /// are materialized per snapshot, ordered by path string).
    interner: LocationInterner,
    cells: HashMap<(LocId, LocId), SlidingCell>,
    from: SimTime,
    to: SimTime,
    /// Log index range [lo, hi) currently folded into `cells`.
    lo: usize,
    hi: usize,
    /// Timestamp of sample `hi - 1` when the window was last folded — a
    /// cheap guard against the log prefix shifting under us (e.g. via a
    /// re-sorting merge); a mismatch forces a full rebuild.
    edge_t: Option<SimTime>,
    /// [`PingLog::mutation_epoch`] when the window was last folded. A
    /// re-sorting merge can reorder samples *between* equal boundary
    /// timestamps, which `edge_t` alone cannot see; an epoch change
    /// forces a full rebuild.
    log_epoch: u64,
    initialized: bool,
}

impl SlidingMatrix {
    fn new(level: LocationLevel) -> Self {
        SlidingMatrix {
            level,
            interner: LocationInterner::new(),
            cells: HashMap::new(),
            from: SimTime::ZERO,
            to: SimTime::ZERO,
            lo: 0,
            hi: 0,
            edge_t: None,
            log_epoch: 0,
            initialized: false,
        }
    }

    /// Produces the matrix for `[from, to)`, sliding incrementally when the
    /// window moved forward over an append-only time-ordered log. Returns
    /// `(matrix, used_delta)`.
    fn advance(&mut self, log: &PingLog, from: SimTime, to: SimTime) -> (ReachabilityMatrix, bool) {
        if !log.is_time_ordered() {
            // No binary-searchable structure; positional bookkeeping may no
            // longer describe this log either.
            self.cells.clear();
            self.initialized = false;
            return (ReachabilityMatrix::build(log, from, to, self.level), false);
        }
        let samples = log.samples();
        let lo = samples.partition_point(|s| s.t < from);
        let hi = samples.partition_point(|s| s.t < to);
        let prefix_intact = samples.len() >= self.hi
            && log.mutation_epoch() == self.log_epoch
            && (self.hi == 0 || Some(samples[self.hi - 1].t) == self.edge_t);
        let forward = self.initialized && from >= self.from && to >= self.to && prefix_intact;
        let delta = if forward {
            // Samples leaving at the front (only those actually folded).
            for idx in self.lo..lo.min(self.hi) {
                self.remove_sample(&samples[idx], idx);
            }
            // Samples entering at the tail.
            for idx in self.hi.max(lo)..hi {
                self.add_sample(&samples[idx], idx);
            }
            true
        } else {
            self.cells.clear();
            for idx in lo..hi {
                self.add_sample(&samples[idx], idx);
            }
            false
        };
        self.from = from;
        self.to = to;
        self.lo = lo;
        self.hi = hi;
        self.edge_t = hi.checked_sub(1).map(|i| samples[i].t);
        self.log_epoch = log.mutation_epoch();
        self.initialized = true;
        (self.snapshot(samples), delta)
    }

    fn cell_key(&mut self, s: &PingSample) -> (LocId, LocId) {
        let src = self.interner.intern(&s.src);
        let src = self.interner.truncate_at(src, self.level);
        let dst = self.interner.intern(&s.dst);
        let dst = self.interner.truncate_at(dst, self.level);
        (src, dst)
    }

    fn add_sample(&mut self, s: &PingSample, idx: usize) {
        let key = self.cell_key(s);
        let cell = self.cells.entry(key).or_default();
        cell.idxs.push_back(idx);
        cell.dirty = true;
    }

    fn remove_sample(&mut self, s: &PingSample, idx: usize) {
        let key = self.cell_key(s);
        let cell = self.cells.get_mut(&key).expect("removing a folded sample");
        let front = cell.idxs.pop_front();
        debug_assert_eq!(front, Some(idx), "window slides evict in index order");
        cell.dirty = true;
        if cell.idxs.is_empty() {
            self.cells.remove(&key);
        }
    }

    fn snapshot(&mut self, samples: &[PingSample]) -> ReachabilityMatrix {
        // Re-fold dirty cells over ascending indexes — the same operand
        // sequence as build()'s single scan, so sums are bit-identical.
        for cell in self.cells.values_mut() {
            if cell.dirty {
                cell.sum = cell.idxs.iter().map(|&i| samples[i].loss).sum();
                cell.dirty = false;
            }
        }
        let mut ids: Vec<LocId> = self
            .cells
            .keys()
            .flat_map(|&(src, dst)| [src, dst])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.sort_by_cached_key(|&id| self.interner.path(id).to_string());
        let index: HashMap<LocId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len();
        let mut data = vec![vec![0.0; n]; n];
        for (&(src, dst), cell) in &self.cells {
            data[index[&src]][index[&dst]] = cell.sum / f64::from(cell.idxs.len() as u32);
        }
        let labels = ids
            .iter()
            .map(|&id| self.interner.path(id).clone())
            .collect();
        ReachabilityMatrix { labels, data }
    }
}

/// Memo of reachability matrices keyed by `(window, level)`.
///
/// Incidents born of one flood overwhelmingly share their evaluation
/// windows (a grid check completes siblings with identical time bounds),
/// so the evaluator builds each distinct matrix **once** and shares it
/// across incidents behind an [`Arc`] instead of rescanning the
/// [`PingLog`] per incident.
///
/// Cache entries remember the log length they were built at: a streaming
/// worker's log grows between drains, so a same-window lookup over a grown
/// log is a *miss* (the cached matrix may be missing fresh samples) and
/// rebuilds via the per-level [`SlidingMatrix`] — usually an O(delta)
/// slide rather than a full scan.
#[derive(Debug, Default)]
pub struct MatrixMemo {
    map: HashMap<(SimTime, SimTime, LocationLevel), (Arc<ReachabilityMatrix>, usize)>,
    sliders: HashMap<LocationLevel, SlidingMatrix>,
    /// Keys preloaded by the batch evaluator's parallel prebuild that have
    /// not yet been claimed by an incident (claim accounting keeps the
    /// builds/hits stats identical to the sequential prebuild).
    preloaded: HashSet<(SimTime, SimTime, LocationLevel)>,
    stats: MatrixMemoStats,
    delta_counter: Option<Counter>,
    rebuild_counter: Option<Counter>,
}

impl MatrixMemo {
    /// An empty memo.
    pub fn new() -> Self {
        MatrixMemo::default()
    }

    /// Wires the memo's delta-update/rebuild counters into an
    /// observability registry.
    pub fn with_observability(mut self, obs: &Observability) -> Self {
        self.delta_counter = Some(obs.registry().counter(
            "skynet_matrix_delta_updates_total",
            "Reachability matrices produced by sliding-window delta updates",
        ));
        self.rebuild_counter = Some(obs.registry().counter(
            "skynet_matrix_rebuilds_total",
            "Reachability matrices produced by full ping-log window scans",
        ));
        self
    }

    /// The matrix for `[from, to)` at `level`, building (and caching) it on
    /// first request — and re-building if the log has grown since the
    /// cached entry was folded.
    pub fn get_or_build(
        &mut self,
        log: &PingLog,
        from: SimTime,
        to: SimTime,
        level: LocationLevel,
    ) -> Arc<ReachabilityMatrix> {
        let log_len = log.samples().len();
        if let Some((matrix, cached_len)) = self.map.get(&(from, to, level)) {
            if *cached_len == log_len {
                self.stats.hits += 1;
                return Arc::clone(matrix);
            }
        }
        self.stats.builds += 1;
        let slider = self
            .sliders
            .entry(level)
            .or_insert_with(|| SlidingMatrix::new(level));
        let (matrix, delta) = slider.advance(log, from, to);
        if delta {
            self.stats.delta_updates += 1;
            if let Some(c) = &self.delta_counter {
                c.inc();
            }
        } else {
            self.stats.rebuilds += 1;
            if let Some(c) = &self.rebuild_counter {
                c.inc();
            }
        }
        let matrix = Arc::new(matrix);
        self.map
            .insert((from, to, level), (Arc::clone(&matrix), log_len));
        matrix
    }

    /// Installs a matrix built elsewhere (the batch evaluator's parallel
    /// prebuild) without touching the stats; the first [`MatrixMemo::claim`]
    /// of the key then counts as its build.
    pub(crate) fn preload(
        &mut self,
        key: (SimTime, SimTime, LocationLevel),
        matrix: Arc<ReachabilityMatrix>,
        log_len: usize,
    ) {
        self.map.insert(key, (matrix, log_len));
        self.preloaded.insert(key);
    }

    /// Fetches a preloaded matrix, counting the first claim of each key as
    /// a (full-scan) build and every further claim as a hit — exactly the
    /// accounting a sequential build loop would produce.
    pub(crate) fn claim(
        &mut self,
        key: (SimTime, SimTime, LocationLevel),
    ) -> Arc<ReachabilityMatrix> {
        let (matrix, _) = self.map.get(&key).expect("claimed key was preloaded");
        let matrix = Arc::clone(matrix);
        if self.preloaded.remove(&key) {
            self.stats.builds += 1;
            self.stats.rebuilds += 1;
            if let Some(c) = &self.rebuild_counter {
                c.inc();
            }
        } else {
            self.stats.hits += 1;
        }
        matrix
    }

    /// Counters so far.
    pub fn stats(&self) -> MatrixMemoStats {
        self.stats
    }
}

/// How a zoomed location was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZoomMethod {
    /// Focal point of the ping reachability matrix.
    ReachabilityMatrix,
    /// All sFlow loss alerts traced back to one node.
    SflowTraceback,
    /// All INT rate-mismatch alerts pointed at one node.
    InbandTelemetry,
    /// No refinement possible; the incident's general location stands.
    None,
}

/// Result of the zoom-in: a (possibly refined) location and how it was
/// found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoomResult {
    /// The refined location (equals the incident root when `method` is
    /// [`ZoomMethod::None`]).
    pub location: LocationPath,
    /// Which signal produced the refinement.
    pub method: ZoomMethod,
}

/// Deepest common ancestor of all alerts of a kind inside the incident,
/// if there is at least one such alert.
fn alert_dca(incident: &Incident, kinds: &[AlertKind]) -> Option<LocationPath> {
    let mut it = incident
        .alerts
        .iter()
        .filter(|a| kinds.contains(&a.ty.kind))
        .map(|a| &a.location);
    let first = it.next()?.clone();
    Some(it.fold(first, |acc, l| acc.common_ancestor(l)))
}

/// The reachability-matrix window for an incident: its time span plus one
/// second so the final samples are inside the half-open bound, at cluster
/// granularity (Fig. 7 zooms to Cluster ii).
pub fn matrix_window(incident: &Incident) -> (SimTime, SimTime, LocationLevel) {
    (
        incident.first_seen,
        incident.last_seen + skynet_model::SimDuration::from_secs(1),
        LocationLevel::Cluster,
    )
}

/// Runs the three zoom-in signals in order and returns the deepest
/// refinement strictly inside the incident root.
pub fn zoom(
    incident: &Incident,
    ping: &PingLog,
    matrix_factor: f64,
    matrix_min_loss: f64,
) -> ZoomResult {
    let (from, to, level) = matrix_window(incident);
    let matrix = ReachabilityMatrix::build(ping, from, to, level);
    zoom_with(incident, &matrix, matrix_factor, matrix_min_loss)
}

/// [`zoom`] with a prebuilt reachability matrix for the incident's
/// [`matrix_window`] — the shape the memoized batch evaluator uses so the
/// `PingLog` is scanned once per distinct window, not once per incident.
pub fn zoom_with(
    incident: &Incident,
    matrix: &ReachabilityMatrix,
    matrix_factor: f64,
    matrix_min_loss: f64,
) -> ZoomResult {
    let mut best: Option<(LocationPath, ZoomMethod)> = None;
    let mut consider = |loc: LocationPath, method: ZoomMethod| {
        if !incident.root.is_strict_ancestor_of(&loc) {
            return;
        }
        match &best {
            Some((b, _)) if b.depth() >= loc.depth() => {}
            _ => best = Some((loc, method)),
        }
    };

    // 1. Reachability matrix focal point at cluster granularity.
    for focal in matrix.focal_points(matrix_factor, matrix_min_loss) {
        consider(focal, ZoomMethod::ReachabilityMatrix);
    }

    // 2. sFlow trace-back.
    if let Some(loc) = alert_dca(incident, &[AlertKind::SflowPacketLoss]) {
        consider(loc, ZoomMethod::SflowTraceback);
    }

    // 3. INT.
    if let Some(loc) = alert_dca(incident, &[AlertKind::IntPacketLoss]) {
        consider(loc, ZoomMethod::InbandTelemetry);
    }

    match best {
        Some((location, method)) => ZoomResult { location, method },
        None => ZoomResult {
            location: incident.root.clone(),
            method: ZoomMethod::None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_model::{DataSource, IncidentId, RawAlert, StructuredAlert};

    fn p(s: &str) -> LocationPath {
        LocationPath::parse(s).unwrap()
    }

    fn cluster(k: &str) -> LocationPath {
        p(&format!("R|C|L|S|{k}"))
    }

    /// A log reproducing Fig. 7: Cluster-ii is lossy to and from everyone.
    fn figure7_log() -> PingLog {
        let mut log = PingLog::new();
        let names = ["K-o", "K-i", "K-ii", "K-iii", "K-iv"];
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                if i == j {
                    continue;
                }
                let loss = if *a == "K-ii" || *b == "K-ii" {
                    0.08
                } else {
                    0.0
                };
                log.record(SimTime::from_secs(10), cluster(a), cluster(b), loss);
            }
        }
        log
    }

    #[test]
    fn focal_point_matches_figure7() {
        let log = figure7_log();
        let m = ReachabilityMatrix::build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Cluster,
        );
        let focal = m.focal_points(1.5, 0.01);
        assert_eq!(focal, vec![cluster("K-ii")]);
    }

    #[test]
    fn healthy_matrix_has_no_focal_point() {
        let mut log = PingLog::new();
        log.record(SimTime::ZERO, cluster("K-o"), cluster("K-i"), 0.001);
        let m = ReachabilityMatrix::build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Cluster,
        );
        assert!(m.focal_points(1.5, 0.01).is_empty());
    }

    #[test]
    fn render_contains_labels_and_rates() {
        let m = ReachabilityMatrix::build(
            &figure7_log(),
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Cluster,
        );
        let text = m.render();
        assert!(text.contains("K-ii"));
        assert!(text.contains("8.00"));
    }

    fn incident_with(alerts: Vec<StructuredAlert>) -> Incident {
        Incident {
            id: IncidentId(0),
            root: p("R|C|L|S"),
            first_seen: SimTime::ZERO,
            last_seen: SimTime::from_secs(60),
            alerts,
        }
    }

    fn salert(kind: AlertKind, location: &LocationPath) -> StructuredAlert {
        let raw = RawAlert::known(
            DataSource::TrafficStats,
            SimTime::ZERO,
            location.clone(),
            kind,
        );
        StructuredAlert::from_raw(&raw, kind)
    }

    #[test]
    fn matrix_zoom_refines_to_the_focal_cluster() {
        let incident = incident_with(vec![salert(AlertKind::PacketLossIcmp, &p("R|C|L|S"))]);
        let z = zoom(&incident, &figure7_log(), 1.5, 0.01);
        assert_eq!(z.method, ZoomMethod::ReachabilityMatrix);
        assert_eq!(z.location, cluster("K-ii"));
    }

    #[test]
    fn sflow_traceback_zooms_when_alerts_converge() {
        let incident = incident_with(vec![
            salert(AlertKind::SflowPacketLoss, &cluster("K-i")),
            salert(AlertKind::SflowPacketLoss, &cluster("K-i")),
        ]);
        let z = zoom(&incident, &PingLog::new(), 1.5, 0.01);
        assert_eq!(z.method, ZoomMethod::SflowTraceback);
        assert_eq!(z.location, cluster("K-i"));
    }

    #[test]
    fn divergent_evidence_keeps_the_general_location() {
        // sFlow alerts spread across two clusters: their DCA is the site
        // itself — not strictly inside, so no refinement.
        let incident = incident_with(vec![
            salert(AlertKind::SflowPacketLoss, &cluster("K-i")),
            salert(AlertKind::SflowPacketLoss, &cluster("K-ii")),
        ]);
        let z = zoom(&incident, &PingLog::new(), 1.5, 0.01);
        assert_eq!(z.method, ZoomMethod::None);
        assert_eq!(z.location, p("R|C|L|S"));
    }

    #[test]
    fn memo_builds_each_window_once() {
        let log = figure7_log();
        let mut memo = MatrixMemo::new();
        let a = memo.get_or_build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Cluster,
        );
        let b = memo.get_or_build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Cluster,
        );
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the first build");
        // A different window or level is a genuinely different matrix.
        let _ = memo.get_or_build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(50),
            LocationLevel::Cluster,
        );
        let _ = memo.get_or_build(
            &log,
            SimTime::ZERO,
            SimTime::from_secs(100),
            LocationLevel::Site,
        );
        let stats = memo.stats();
        assert_eq!(stats.builds, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zoom_with_matches_zoom_on_the_incident_window() {
        let log = figure7_log();
        let incident = incident_with(vec![salert(AlertKind::PacketLossIcmp, &p("R|C|L|S"))]);
        let (from, to, level) = matrix_window(&incident);
        let matrix = ReachabilityMatrix::build(&log, from, to, level);
        assert_eq!(
            zoom_with(&incident, &matrix, 1.5, 0.01),
            zoom(&incident, &log, 1.5, 0.01)
        );
    }

    #[test]
    fn bitset_focal_points_match_dense_oracle() {
        // Figure 7's sparse matrix plus a denser synthetic one.
        let mut lossy = figure7_log();
        for (i, a) in ["K-o", "K-i", "K-iii"].iter().enumerate() {
            for b in ["K-iv", "K-ii"] {
                lossy.record(
                    SimTime::from_secs(20 + i as u64),
                    cluster(a),
                    cluster(b),
                    0.01 + i as f64 * 0.03,
                );
            }
        }
        for log in [figure7_log(), lossy, PingLog::new()] {
            let m = ReachabilityMatrix::build(
                &log,
                SimTime::ZERO,
                SimTime::from_secs(100),
                LocationLevel::Cluster,
            );
            for (factor, min_loss) in [(1.5, 0.01), (1.0, 0.0), (0.5, 0.001)] {
                assert_eq!(
                    m.focal_points(factor, min_loss),
                    m.focal_points_dense(factor, min_loss),
                    "factor {factor}, min_loss {min_loss}"
                );
            }
        }
    }

    #[test]
    fn sliding_matrix_matches_build_across_forward_slides() {
        let mut log = PingLog::new();
        let names = ["K-o", "K-i", "K-ii", "K-iii"];
        for t in 0..200u64 {
            let a = names[(t % 4) as usize];
            let b = names[((t / 4) % 4) as usize];
            if a != b {
                log.record(
                    SimTime::from_secs(t),
                    cluster(a),
                    cluster(b),
                    0.02 + (t % 7) as f64 * 0.01,
                );
            }
        }
        let mut slider = SlidingMatrix::new(LocationLevel::Cluster);
        let windows = [
            (0u64, 50u64),
            (10, 60),  // forward slide
            (10, 90),  // grow right edge only
            (40, 90),  // advance left edge only
            (80, 120), // disjoint forward jump
            (30, 100), // non-forward: left edge moved back => full rebuild
            (30, 100), // identical window, delta with zero ops
        ];
        for (i, (from, to)) in windows.into_iter().enumerate() {
            let (from, to) = (SimTime::from_secs(from), SimTime::from_secs(to));
            let (slid, delta) = slider.advance(&log, from, to);
            let built = ReachabilityMatrix::build(&log, from, to, LocationLevel::Cluster);
            assert_eq!(slid, built, "window {i}");
            assert_eq!(delta, ![0, 5].contains(&i), "window {i} slide mode");
        }
    }

    #[test]
    fn sliding_matrix_rescans_unsorted_logs() {
        let mut log = PingLog::new();
        log.record(SimTime::from_secs(50), cluster("K-o"), cluster("K-i"), 0.2);
        log.record(SimTime::from_secs(10), cluster("K-i"), cluster("K-o"), 0.1);
        assert!(!log.is_time_ordered());
        let mut slider = SlidingMatrix::new(LocationLevel::Cluster);
        let (from, to) = (SimTime::ZERO, SimTime::from_secs(100));
        let (slid, delta) = slider.advance(&log, from, to);
        assert!(!delta, "unsorted logs cannot slide");
        assert_eq!(
            slid,
            ReachabilityMatrix::build(&log, from, to, LocationLevel::Cluster)
        );
    }

    #[test]
    fn memo_rebuilds_when_the_log_grows_inside_a_cached_window() {
        let mut log = figure7_log();
        let mut memo = MatrixMemo::new();
        let (from, to) = (SimTime::ZERO, SimTime::from_secs(100));
        let a = memo.get_or_build(&log, from, to, LocationLevel::Cluster);
        // The log grows *inside* the cached window — the streaming shape:
        // pings keep arriving between drains.
        log.record(SimTime::from_secs(60), cluster("K-o"), cluster("K-i"), 0.5);
        let b = memo.get_or_build(&log, from, to, LocationLevel::Cluster);
        assert!(!Arc::ptr_eq(&a, &b), "a grown log must not hit the cache");
        assert_eq!(
            *b,
            ReachabilityMatrix::build(&log, from, to, LocationLevel::Cluster)
        );
        let stats = memo.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.builds, stats.delta_updates + stats.rebuilds);
        // Unchanged log, same window: a genuine hit.
        let c = memo.get_or_build(&log, from, to, LocationLevel::Cluster);
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn deepest_refinement_wins() {
        // INT points at a device, sFlow only at a cluster.
        let device = p("R|C|L|S|K-i|dev-3");
        let incident = incident_with(vec![
            salert(AlertKind::SflowPacketLoss, &cluster("K-i")),
            salert(AlertKind::IntPacketLoss, &device),
        ]);
        let z = zoom(&incident, &PingLog::new(), 1.5, 0.01);
        assert_eq!(z.method, ZoomMethod::InbandTelemetry);
        assert_eq!(z.location, device);
    }
}
